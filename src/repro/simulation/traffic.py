"""Time-varying traffic demand driven by the economics layer.

:class:`repro.economics.timeseries.DiurnalTrafficModel` generates a
whole billing period at once; the simulation needs the same seasonality
as a *function of virtual time* so that metering events can sample
demand at arbitrary instants.  :class:`TimeVaryingDemand` reuses the
identical shape (diurnal cosine, weekend dip, log-normal burst noise)
evaluated pointwise, plus optional :class:`FlashCrowd` modifiers that
multiply demand during a time window — the flash-crowd scenario uses
one to blow a demand spike through an active agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.simulation.events import SimulationError

#: Hours per day / days per week, fixing the interpretation of virtual time.
HOURS_PER_DAY = 24.0
DAYS_PER_WEEK = 7


@dataclass(frozen=True)
class FlashCrowd:
    """A demand spike: multiply demand by ``multiplier`` during a window."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise SimulationError("a flash crowd needs a positive duration")
        if self.multiplier < 0.0:
            raise SimulationError("the demand multiplier must be non-negative")

    def factor_at(self, time: float) -> float:
        """Demand multiplier at a point in virtual time."""
        if self.start <= time < self.start + self.duration:
            return self.multiplier
        return 1.0


@dataclass
class TimeVaryingDemand:
    """Seasonal demand with seeded burst noise, sampled in virtual time.

    The deterministic shape matches
    :class:`~repro.economics.timeseries.DiurnalTrafficModel`: a diurnal
    cosine peaking at ``peak_hour``, a weekend dip, and multiplicative
    log-normal noise whose expectation is 1 (so the long-run mean is
    ``mean_volume`` — before flash crowds).
    """

    mean_volume: float
    diurnal_amplitude: float = 0.5
    weekend_dip: float = 0.3
    burstiness: float = 0.2
    peak_hour: float = 20.0
    seed: int | tuple[int, ...] = 0
    flash_crowds: tuple[FlashCrowd, ...] = ()
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_volume < 0.0:
            raise SimulationError("the mean volume must be non-negative")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise SimulationError("the diurnal amplitude must be in [0, 1]")
        if not 0.0 <= self.weekend_dip <= 1.0:
            raise SimulationError("the weekend dip must be in [0, 1]")
        if self.burstiness < 0.0:
            raise SimulationError("burstiness must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def shape_at(self, time: float) -> float:
        """The deterministic seasonal factor at a point in virtual time.

        Normalized so its mean over a whole week is 1 (the analytic
        counterpart of the empirical renormalization in
        :class:`~repro.economics.timeseries.DiurnalTrafficModel`): the
        diurnal cosine integrates to 1 over a day, and the weekend dip
        is divided out as ``1 − 2·dip/7``.
        """
        hour_of_day = time % HOURS_PER_DAY
        day_index = int(time // HOURS_PER_DAY)
        diurnal = 1.0 + self.diurnal_amplitude * math.cos(
            (hour_of_day - self.peak_hour) / HOURS_PER_DAY * 2.0 * math.pi
        )
        weekday = 1.0 - self.weekend_dip if (day_index % DAYS_PER_WEEK) >= 5 else 1.0
        weekly_mean = 1.0 - 2.0 * self.weekend_dip / DAYS_PER_WEEK
        return diurnal * weekday / weekly_mean

    def sample(self, time: float) -> float:
        """One demand sample at a point in virtual time.

        Samples consume the seeded generator in call order, so a process
        that meters at deterministic times reads a deterministic series.
        """
        if self.mean_volume == 0.0:
            return 0.0
        if self.burstiness > 0.0:
            sigma = self.burstiness
            noise = float(
                self._rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)
            )
        else:
            noise = 1.0
        factor = 1.0
        for crowd in self.flash_crowds:
            factor *= crowd.factor_at(time)
        return self.mean_volume * self.shape_at(time) * noise * factor
