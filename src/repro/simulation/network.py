"""A dynamic view of the AS topology: links fail and recover over time.

The static layers of the library (:class:`repro.topology.graph.ASGraph`,
beaconing, BGP) all operate on an immutable snapshot.  The simulation
wraps the base topology in a :class:`DynamicNetwork` that tracks the
set of currently failed links, hands out consistent *active* snapshots
(the base graph minus failed links), and notifies subscribed processes
whenever the topology changes so they can react (BGP reconvergence,
beacon re-discovery, …).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core import CompiledTopology, PathEngine, compile_topology
from repro.topology.graph import ASGraph, TopologyError

#: A topology-change listener: ``(time, change, (left, right))``.
ChangeListener = Callable[[float, str, tuple[int, int]], None]


class DynamicNetwork:
    """The base topology plus the set of currently failed links.

    Besides the plain :meth:`active_graph` snapshots, the network keeps
    a compiled view of the active topology (:meth:`compiled_active`) and
    a batched GRC path engine (:meth:`path_engine`) that are recompiled
    lazily on churn.  Recompilation is *dirty-region aware*: an AS's
    length-3 paths depend only on its 2-hop neighborhood, so a churned
    link ``a – b`` invalidates the memoized results of
    ``{a, b} ∪ N(a) ∪ N(b)`` (neighborhoods read from the base graph, a
    superset of any active state) and every other source's results are
    carried over.
    """

    def __init__(self, graph: ASGraph) -> None:
        self.base_graph = graph
        self._failed: set[frozenset[int]] = set()
        self._listeners: list[ChangeListener] = []
        self._active_cache: ASGraph | None = None
        self.version = 0
        self._compiled: CompiledTopology | None = None
        self._compiled_version = -1
        self._engine: PathEngine | None = None
        self._dirty_sources: set[int] = set()
        self.recompiles = 0

    # ------------------------------------------------------------------
    # Change subscription
    # ------------------------------------------------------------------
    def subscribe(self, listener: ChangeListener) -> None:
        """Register a callback fired on every link failure/recovery."""
        self._listeners.append(listener)

    def _notify(self, time: float, change: str, link: tuple[int, int]) -> None:
        self.version += 1
        self._active_cache = None
        left, right = link
        self._dirty_sources.update((left, right))
        self._dirty_sources.update(self.base_graph.neighbors(left))
        self._dirty_sources.update(self.base_graph.neighbors(right))
        for listener in self._listeners:
            listener(time, change, link)

    # ------------------------------------------------------------------
    # Failure state
    # ------------------------------------------------------------------
    def fail_link(self, left: int, right: int, *, time: float = 0.0) -> bool:
        """Mark a link as failed; returns False when already down."""
        key = frozenset((left, right))
        if not self.base_graph.has_link(left, right):
            raise TopologyError(f"no link between {left} and {right} to fail")
        if key in self._failed:
            return False
        self._failed.add(key)
        self._notify(time, "link_down", (min(left, right), max(left, right)))
        return True

    def restore_link(self, left: int, right: int, *, time: float = 0.0) -> bool:
        """Restore a failed link; returns False when it was not down."""
        key = frozenset((left, right))
        if key not in self._failed:
            return False
        self._failed.discard(key)
        self._notify(time, "link_up", (min(left, right), max(left, right)))
        return True

    def is_link_up(self, left: int, right: int) -> bool:
        """Whether the link exists in the base graph and is not failed."""
        return (
            self.base_graph.has_link(left, right)
            and frozenset((left, right)) not in self._failed
        )

    @property
    def failed_links(self) -> tuple[tuple[int, int], ...]:
        """Currently failed links as sorted endpoint pairs (sorted)."""
        return tuple(
            sorted((min(key), max(key)) for key in (tuple(k) for k in self._failed))
        )

    def num_failed_links(self) -> int:
        """Number of currently failed links."""
        return len(self._failed)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def active_graph(self) -> ASGraph:
        """Snapshot of the topology with failed links removed.

        All ASes stay in the graph even when isolated, so per-AS policy
        tables built against the base graph remain valid.  The snapshot
        is cached until the next change.
        """
        if self._active_cache is None:
            active = self.base_graph.copy()
            for key in self._failed:
                left, right = tuple(key)
                active.remove_link(left, right)
            self._active_cache = active
        return self._active_cache

    def compiled_active(self) -> CompiledTopology:
        """Compiled view of the active topology, rebuilt lazily on churn."""
        if self._compiled is None or self._compiled_version != self.version:
            self._compiled = compile_topology(self.active_graph())
            self._compiled_version = self.version
            self.recompiles += 1
        return self._compiled

    def path_engine(self) -> PathEngine:
        """Batched GRC path engine over the active topology.

        On the first call after churn the engine is refreshed onto a
        freshly compiled active topology; memoized per-source results
        survive for every AS outside the dirty region of the churned
        links (see the class docstring for the region definition).
        """
        if self._engine is None:
            self._engine = PathEngine(self.compiled_active())
            self._dirty_sources.clear()
        elif self._engine.topology is not self.compiled_active():
            self._engine.refresh(
                self.compiled_active(), dirty_sources=self._dirty_sources
            )
            self._dirty_sources.clear()
        return self._engine

    def path_is_intact(self, path: tuple[int, ...]) -> bool:
        """Whether every link of an AS-level path is currently up."""
        if len(path) < 2:
            return False
        return all(self.is_link_up(path[i], path[i + 1]) for i in range(len(path) - 1))

    def __repr__(self) -> str:
        return (
            f"DynamicNetwork(base={self.base_graph!r}, "
            f"failed_links={self.num_failed_links()})"
        )
