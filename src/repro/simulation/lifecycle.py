"""Agreement lifecycles: negotiate → activate → meter → bill → renegotiate.

The static layers already know how to *evaluate* an agreement (utility
of an :class:`~repro.agreements.scenario.AgreementScenario`), how to
*negotiate* one (the BOSCO mechanism of §V), and how to *bill* traffic
(pricing functions and billing rules of §III-A).  This process strings
those one-shot computations into a lifecycle over virtual time:

1. **Negotiate** — build the maximal mutuality-based agreement for a
   peering pair, evaluate both parties' utilities from their demand
   levels via Eq. 7, normalize into the BOSCO utility scale, and run the
   published equilibrium strategies.  A negative apparent surplus means
   no deal; the pair retries later (demand may have shifted).  All
   pairs that come due at the same virtual instant — a billing epoch's
   worth of renegotiations, a burst of retries — are decided in **one
   batched engine call** (:meth:`BoscoService.negotiate_many`), with
   per-pair trace records emitted in request order so the metrics trace
   stays byte-identical to the per-pair event formulation.
2. **Activate** — authorize the agreement's segments on the PAN and
   start metering.
3. **Meter** — sample both directions of segment traffic from
   time-varying demand models at every metering interval.
4. **Bill** — at expiry, reduce each direction's samples to the billed
   volume under the configured billing rule and settle revenue with the
   per-usage price; the negotiated cash compensation is applied on top.
5. **Renegotiate** — the lifecycle restarts with fresh demand-dependent
   utilities, so marketplace runs show agreements coming and going.

With a resolved :class:`~repro.agents.population.Population` attached,
every AS negotiates under its own behavior profile: reports may be
shaded (dishonest/adaptive agents), transfers may be vetoed (budget
agents), billing prices carry per-agent and :class:`PriceWar`
multipliers, and realized utilities feed post-billing learning.  Pairs
preferring different BOSCO cardinalities are decided inside one flush
as order-preserving sub-batches (:func:`decide_mixed_cohort`) — still
bit-identical to the per-agent sequential reference.  Without a
population, every code path reduces exactly to the homogeneous
marketplace, keeping seeded traces byte-identical to the historical
formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.behaviors import AgentState
from repro.agents.negotiator import CohortEntry, decide_mixed_cohort
from repro.agents.population import Population
from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import mutuality_agreement
from repro.agreements.scenario import AgreementScenario, SegmentTraffic
from repro.agreements.utility import joint_utilities
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    paper_distribution_u1,
)
from repro.bargaining.mechanism import BoscoService, MechanismInformation
from repro.economics.business import ASBusiness, default_business_models
from repro.economics.pricing import PerUsagePricing
from repro.economics.timeseries import BillingRule, billed_volume
from repro.economics.traffic import ENDHOSTS, FlowVector
from repro.simulation.engine import Process, SimulationEngine
from repro.simulation.network import DynamicNetwork
from repro.simulation.shocks import PriceWar
from repro.simulation.traffic import FlashCrowd, TimeVaryingDemand


@dataclass
class ActiveAgreement:
    """Book-keeping of one activated agreement term."""

    agreement: Agreement
    activated_at: float
    expires_at: float
    transfer_x_to_y: float
    #: metered per-direction traffic samples (party -> samples it sent)
    samples: dict[int, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for party in self.agreement.parties:
            self.samples.setdefault(party, [])


@dataclass
class AgreementLifecycleManager(Process):
    """Drives the lifecycle of mutuality agreements over peering pairs."""

    network: DynamicNetwork
    pairs: tuple[tuple[int, int], ...]
    term_duration: float = 24.0 * 30.0
    metering_interval: float = 1.0
    retry_delay: float = 24.0
    billing_rule: BillingRule = BillingRule.NINETY_FIFTH_PERCENTILE
    unit_price: float = 1.0
    mean_demand: float = 10.0
    num_choices: int = 10
    configuration_trials: int = 5
    seed: int = 0
    distribution: JointUtilityDistribution = field(default_factory=paper_distribution_u1)
    flash_crowds: tuple[FlashCrowd, ...] = ()
    #: Resolved heterogeneous population (None = the homogeneous
    #: marketplace, byte-identical to the historical formulation).
    population: Population | None = None
    price_wars: tuple[PriceWar, ...] = ()
    name: str = "agreement-lifecycle"

    _engine: SimulationEngine | None = field(default=None, init=False)
    _mechanism: MechanismInformation | None = field(default=None, init=False)
    #: Published mechanisms keyed by choice-set cardinality ``W``.
    _mechanisms: dict[int, MechanismInformation] = field(default_factory=dict, init=False)
    _states: dict[int, AgentState] = field(default_factory=dict, init=False)
    _businesses: dict[int, ASBusiness] = field(default_factory=dict, init=False)
    _demands: dict[tuple[int, int], TimeVaryingDemand] = field(
        default_factory=dict, init=False
    )
    _active: dict[tuple[int, int], ActiveAgreement] = field(
        default_factory=dict, init=False
    )
    #: Pairs due for (re)negotiation, keyed by due time; each due time
    #: has exactly one scheduled flush event that decides its whole
    #: bucket in one batched BOSCO call.
    _due: dict[float, list[tuple[int, int]]] = field(default_factory=dict, init=False)
    negotiations: int = field(default=0, init=False)
    concluded: int = field(default=0, init=False)
    billed_terms: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    # Process start
    # ------------------------------------------------------------------
    def start(self, engine: SimulationEngine) -> None:
        self._engine = engine
        self.pairs = tuple(sorted((min(a, b), max(a, b)) for a, b in self.pairs))
        self._businesses = default_business_models(self.network.base_graph)
        # One BOSCO configuration is published per choice-set
        # cardinality the population negotiates under (a homogeneous
        # marketplace publishes exactly one); every negotiation applies
        # the equilibrium strategies of its pair's mechanism (§V-B).
        service = BoscoService(self.distribution, seed=self.seed)
        widths = (
            (self.num_choices,)
            if self.population is None
            else self.population.choice_widths(self.num_choices)
        )
        for width in widths:
            mechanism = service.configure(width, trials=self.configuration_trials)
            self._mechanisms[width] = mechanism
            engine.trace.record(
                engine.now,
                "bosco_configured",
                price_of_dishonesty=mechanism.price_of_dishonesty,
                num_choices=width,
            )
        self._mechanism = self._mechanisms.get(self.num_choices, self._mechanisms[widths[0]])
        if self.population is not None:
            for pair in self.pairs:
                for party in pair:
                    if party not in self._states:
                        self._states[party] = self.population.new_state(party)
        for index, pair in enumerate(self.pairs):
            for party in pair:
                direction = (party, pair[0] if party == pair[1] else pair[1])
                self._demands[direction] = TimeVaryingDemand(
                    mean_volume=self.mean_demand,
                    seed=(self.seed, *direction),
                    flash_crowds=self.flash_crowds,
                )
            # Stagger the opening negotiations so the marketplace does not
            # fire everything in one mega-event.
            self._request_negotiation(pair, float(index) * self.metering_interval)

    # ------------------------------------------------------------------
    # 1. Negotiation
    # ------------------------------------------------------------------
    def _request_negotiation(self, pair: tuple[int, int], delay: float) -> None:
        """Queue a pair for the batched negotiation at ``now + delay``.

        The first request for a due time schedules its flush event (so
        the flush sits exactly where the pair's own negotiation event
        used to sit in the queue); later requests for the same instant
        join the bucket and are decided in the same batched call, in
        request order.  A request made *after* its instant's flush ran
        (a renegotiation scheduled by an expiry at the same timestamp)
        opens a fresh bucket with its own flush, again preserving the
        per-pair event order.

        Why joining a still-pending bucket cannot reorder the trace:
        request order equals the sequence order the per-pair events
        would have had, and the only other trace-recording events at a
        negotiation instant are expiries — which run at priority 5,
        strictly after every priority-0 flush at that instant in both
        formulations (meters and the flushes' own scheduling record
        nothing).  So merging same-instant negotiations into one call
        moves no record across another.
        """
        engine = self._engine
        assert engine is not None
        due = engine.now + delay
        bucket = self._due.get(due)
        if bucket is None:
            self._due[due] = [pair]
            engine.schedule(delay, self._negotiate_due(due), name=f"{self.name}:negotiate")
        else:
            bucket.append(pair)

    def _pair_width(self, pair: tuple[int, int]) -> int:
        """The BOSCO cardinality a pair negotiates under (min of the two)."""
        if self.population is None:
            return self.num_choices
        return min(
            self.population.behavior_for(party).num_choices or self.num_choices
            for party in pair
        )

    def _negotiate_due(self, due: float):
        def negotiate_batch() -> None:
            engine = self._engine
            assert engine is not None and self._mechanism is not None
            pairs = self._due.pop(due, [])
            # First pass: evaluate every pair's agreement and economic
            # utilities (pure graph/demand computations, no events),
            # then apply each party's reporting behavior.
            evaluations: list[
                tuple[tuple[int, int], Agreement | None, float, float, float, float, float, int]
            ] = []
            for pair in pairs:
                self.negotiations += 1
                left, right = pair
                agreement = None
                if self.network.is_link_up(left, right):
                    agreement = mutuality_agreement(self.network.base_graph, left, right)
                if agreement is None:
                    evaluations.append((pair, None, 0.0, 0.0, 0.0, 0.0, 1.0, self.num_choices))
                    continue
                utilities = joint_utilities(self._scenario(agreement), self._businesses)
                u_left, u_right = utilities[left], utilities[right]
                reported_left, reported_right = u_left, u_right
                width = self.num_choices
                if self.population is not None:
                    width = self._pair_width(pair)
                    for party, true_utility in ((left, u_left), (right, u_right)):
                        behavior = self.population.behavior_for(party)
                        state = self._states[party]
                        state.negotiations += 1
                        state.pod_total += self._mechanisms[width].price_of_dishonesty
                        reported = behavior.reported_utility(true_utility, state)
                        state.misreport_total += abs(reported - true_utility)
                        if party == left:
                            reported_left = reported
                        else:
                            reported_right = reported
                # BOSCO strategies are defined over the published utility
                # distribution; reported utilities are normalized into its
                # support so the equilibrium thresholds apply.
                scale = max(abs(reported_left), abs(reported_right), 1e-9)
                evaluations.append(
                    (pair, agreement, u_left, u_right, reported_left, reported_right, scale, width)
                )
            # One batched engine call per mechanism decides every
            # negotiable pair; a homogeneous cohort is a single batch.
            negotiable = [entry for entry in evaluations if entry[1] is not None]
            outcomes = iter(
                decide_mixed_cohort(
                    self._mechanisms,
                    [
                        CohortEntry(key=width, utility_x=r_left / scale, utility_y=r_right / scale)
                        for _, _, _, _, r_left, r_right, scale, width in negotiable
                    ],
                )
            )
            # Second pass, in request order: record traces and act — the
            # same record/schedule sequence the per-pair events produced.
            for pair, agreement, u_left, u_right, _, _, scale, width in evaluations:
                left, right = pair
                if agreement is None:
                    engine.trace.record(
                        engine.now, "negotiation_skipped", pair=[left, right]
                    )
                    self._request_negotiation(pair, self.retry_delay)
                    continue
                outcome = next(outcomes)
                transfer = outcome.transfer_x_to_y * scale
                vetoed = False
                payer = left if transfer > 0.0 else right if transfer < 0.0 else None
                if outcome.concluded and self.population is not None and payer is not None:
                    state = self._states[payer]
                    if abs(transfer) > self.population.behavior_for(payer).max_spend(state):
                        vetoed = True
                        state.vetoed += 1
                extra: dict[str, object] = {}
                if self.population is not None:
                    extra = {
                        "profile_x": self._states[left].profile,
                        "profile_y": self._states[right].profile,
                        "width": width,
                    }
                    if vetoed:
                        extra["vetoed"] = True
                engine.trace.record(
                    engine.now,
                    "negotiation",
                    pair=[left, right],
                    utility_x=u_left,
                    utility_y=u_right,
                    concluded=outcome.concluded,
                    transfer_x_to_y=transfer,
                    **extra,
                )
                if outcome.concluded and not vetoed:
                    if self.population is not None:
                        for party in pair:
                            self._states[party].concluded += 1
                        if payer is not None:
                            self.population.behavior_for(payer).commit_spend(
                                abs(transfer), self._states[payer]
                            )
                    self._activate(agreement, transfer)
                else:
                    self._request_negotiation(pair, self.retry_delay)

        return negotiate_batch

    def _scenario(self, agreement: Agreement) -> AgreementScenario:
        """Expected-traffic scenario from current mean demand (Eq. 7).

        Each party reroutes provider traffic onto the agreement link and
        attracts fresh end-host demand; the baseline carries enough
        provider volume to make the rerouting claim consistent.
        """
        segments: list[SegmentTraffic] = []
        baseline: dict[int, FlowVector] = {}
        graph = self.network.base_graph
        for party in agreement.parties:
            party_segments = agreement.segments_for(party)[:3]
            providers = sorted(graph.providers(party))
            rerouted_per_segment = self.mean_demand / max(len(party_segments), 1)
            flows = FlowVector({ENDHOSTS: self.mean_demand * 2.0})
            if providers:
                flows.set(providers[0], self.mean_demand * 2.0)
            baseline[party] = flows
            for segment in party_segments:
                rerouted = (
                    {providers[0]: rerouted_per_segment} if providers else {}
                )
                segments.append(
                    SegmentTraffic(
                        segment=segment,
                        rerouted=rerouted,
                        attracted={ENDHOSTS: rerouted_per_segment * 0.5},
                    )
                )
        return AgreementScenario(
            agreement=agreement, segments=segments, baseline=baseline
        )

    # ------------------------------------------------------------------
    # 2.–3. Activation and metering
    # ------------------------------------------------------------------
    def _activate(self, agreement: Agreement, transfer_x_to_y: float) -> None:
        engine = self._engine
        assert engine is not None
        pair = (min(agreement.parties), max(agreement.parties))
        active = ActiveAgreement(
            agreement=agreement,
            activated_at=engine.now,
            expires_at=engine.now + self.term_duration,
            transfer_x_to_y=transfer_x_to_y,
        )
        self._active[pair] = active
        self.concluded += 1
        engine.trace.record(
            engine.now,
            "agreement_activated",
            pair=list(pair),
            expires_at=active.expires_at,
            segments=len(agreement.all_segments()),
        )
        if engine.now + self.metering_interval <= active.expires_at:
            engine.schedule(
                self.metering_interval,
                self._meter(active),
                name=f"{self.name}:meter",
            )
        # Priority 5: the final metering sample at the expiry instant is
        # taken before the term is billed.
        engine.schedule_at(
            active.expires_at,
            self._expire(pair, active),
            priority=5,
            name=f"{self.name}:expire",
        )

    def _meter(self, active: ActiveAgreement):
        def meter() -> None:
            engine = self._engine
            assert engine is not None
            x, y = active.agreement.parties
            for sender, receiver in ((x, y), (y, x)):
                demand = self._demands[(sender, receiver)]
                # Metering pauses while the agreement link is down — no
                # traffic crosses a failed peering link.
                volume = (
                    demand.sample(engine.now)
                    if self.network.is_link_up(x, y)
                    else 0.0
                )
                active.samples[sender].append(volume)
            # The chain reschedules itself only while the term lasts, so
            # expired agreements leave no periodic events behind.
            if engine.now + self.metering_interval <= active.expires_at:
                engine.schedule(
                    self.metering_interval, meter, name=f"{self.name}:meter"
                )

        return meter

    # ------------------------------------------------------------------
    # 4.–5. Billing, expiry, renegotiation
    # ------------------------------------------------------------------
    def _unit_price_for(self, party: int, now: float) -> float:
        """The unit price a party bills at (behavior + price-war scaled)."""
        if self.population is None:
            return self.unit_price
        state = self._states[party]
        price = self.unit_price * self.population.behavior_for(party).price_multiplier(state)
        for war in self.price_wars:
            price *= war.multiplier_at(now, state.region)
        return price

    def _expire(self, pair: tuple[int, int], active: ActiveAgreement):
        def expire() -> None:
            engine = self._engine
            assert engine is not None
            x, y = active.agreement.parties
            pricing_x = PerUsagePricing(self._unit_price_for(x, engine.now))
            pricing_y = PerUsagePricing(self._unit_price_for(y, engine.now))
            billed = {
                party: billed_volume(active.samples[party], self.billing_rule)
                for party in (x, y)
            }
            # Each party bills the counterparty for the traffic it carried
            # on the counterparty's behalf, at its own unit price; the
            # negotiated cash compensation settles the remaining asymmetry.
            revenue_x = pricing_x(billed[y]) - active.transfer_x_to_y
            revenue_y = pricing_y(billed[x]) + active.transfer_x_to_y
            utility_x = revenue_x - pricing_y(billed[x])
            utility_y = revenue_y - pricing_x(billed[y])
            self.billed_terms += 1
            engine.trace.record(
                engine.now,
                "billing",
                pair=list(pair),
                rule=self.billing_rule.value,
                billed_volume_x=billed[x],
                billed_volume_y=billed[y],
                samples=len(active.samples[x]),
                **{
                    f"revenue_{x}": revenue_x,
                    f"revenue_{y}": revenue_y,
                    f"utility_{x}": utility_x,
                    f"utility_{y}": utility_y,
                },
            )
            engine.trace.record(
                engine.now, "agreement_expired", pair=list(pair)
            )
            if self.population is not None:
                for party, utility in ((x, utility_x), (y, utility_y)):
                    state = self._states[party]
                    state.billed_terms += 1
                    state.utility_total += utility
                    if utility < 0.0:
                        state.defaulted_terms += 1
                    self.population.behavior_for(party).on_billing(utility, state)
            self._active.pop(pair, None)
            # Renegotiate immediately: the marketplace keeps turning.
            self._request_negotiation(pair, 0.0)

        return expire

    # ------------------------------------------------------------------
    # Per-profile metrics
    # ------------------------------------------------------------------
    def record_population_metrics(self) -> None:
        """Emit one ``profile_metrics`` trace record per behavior profile.

        Scenario runs schedule this at the horizon (priority 50, after
        every same-instant lifecycle event), so the trace closes with
        uptake, realized utility, Price of Dishonesty, and default-rate
        summaries per profile.
        """
        engine = self._engine
        if engine is None or self.population is None:
            return
        per_profile: dict[str, list[AgentState]] = {}
        for asn in sorted(self._states):
            state = self._states[asn]
            per_profile.setdefault(state.profile, []).append(state)
        for profile in sorted(per_profile):
            states = per_profile[profile]
            negotiations = sum(s.negotiations for s in states)
            concluded = sum(s.concluded for s in states)
            billed = sum(s.billed_terms for s in states)
            defaulted = sum(s.defaulted_terms for s in states)
            engine.trace.record(
                engine.now,
                "profile_metrics",
                profile=profile,
                agents=len(states),
                negotiations=negotiations,
                uptake=concluded / negotiations if negotiations else 0.0,
                vetoed=sum(s.vetoed for s in states),
                billed_terms=billed,
                default_rate=defaulted / billed if billed else 0.0,
                mean_utility=sum(s.utility_total for s in states) / billed if billed else 0.0,
                mean_pod=(
                    sum(s.pod_total for s in states) / negotiations if negotiations else 0.0
                ),
                mean_misreport=(
                    sum(s.misreport_total for s in states) / negotiations
                    if negotiations
                    else 0.0
                ),
                spend=sum(s.spend_total for s in states),
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_agreements(self) -> tuple[ActiveAgreement, ...]:
        """Currently active agreements (sorted by pair)."""
        return tuple(self._active[pair] for pair in sorted(self._active))
