"""Marketplace shocks layered on the existing failure/pricing machinery.

Two population-scale disturbances for heterogeneous marketplace runs:

- :class:`RegionalPartition` — every link with exactly one endpoint in
  a geographic region goes down for a window, isolating the region
  from the rest of the topology.  It compiles to a
  :class:`~repro.simulation.failures.DeterministicFailureSchedule`, so
  the ordinary :class:`~repro.simulation.failures.FailureInjector`
  applies it with the usual priority ordering and ``link_event`` trace
  records.
- :class:`PriceWar` — sellers in a region temporarily scale their unit
  price (a multiplier below 1 models a price-cutting war, above 1 a
  scarcity premium).  The agreement lifecycle consults
  :meth:`PriceWar.multiplier_at` when a term is billed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.simulation.events import SimulationError
from repro.simulation.failures import (
    LINK_DOWN,
    LINK_UP,
    DeterministicFailureSchedule,
    LinkEvent,
)
from repro.topology.graph import ASGraph

__all__ = ["RegionalPartition", "PriceWar"]


@dataclass(frozen=True)
class RegionalPartition:
    """A region loses all connectivity to the outside for a window."""

    region: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.region < 0:
            raise SimulationError(f"partition region must be non-negative, got {self.region}")
        if self.start < 0.0:
            raise SimulationError(f"partition start must be non-negative, got {self.start}")
        if self.duration <= 0.0:
            raise SimulationError(f"partition duration must be positive, got {self.duration}")

    def failure_schedule(
        self, graph: ASGraph, regions: Mapping[int, int]
    ) -> DeterministicFailureSchedule:
        """Down/up events for every link crossing the region boundary."""
        events: list[LinkEvent] = []
        for link in graph.links:
            inside_first = regions.get(link.first) == self.region
            inside_second = regions.get(link.second) == self.region
            if inside_first == inside_second:
                continue
            events.append(
                LinkEvent(time=self.start, kind=LINK_DOWN, left=link.first, right=link.second)
            )
            events.append(
                LinkEvent(
                    time=self.start + self.duration,
                    kind=LINK_UP,
                    left=link.first,
                    right=link.second,
                )
            )
        return DeterministicFailureSchedule(events=tuple(events))


@dataclass(frozen=True)
class PriceWar:
    """A temporary regional scaling of the marketplace unit price."""

    start: float
    duration: float
    multiplier: float = 0.5
    #: Region the war is fought in; ``-1`` means marketplace-wide.
    region: int = -1

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise SimulationError(f"price war start must be non-negative, got {self.start}")
        if self.duration <= 0.0:
            raise SimulationError(f"price war duration must be positive, got {self.duration}")
        if self.multiplier <= 0.0:
            raise SimulationError(
                f"price war multiplier must be positive, got {self.multiplier}"
            )

    def multiplier_at(self, time: float, region: int) -> float:
        """The price multiplier a seller in ``region`` sees at ``time``."""
        if not self.start <= time < self.start + self.duration:
            return 1.0
        if self.region >= 0 and region != self.region:
            return 1.0
        return self.multiplier
