"""Structured metrics trace emitted by simulation runs.

Every process records :class:`TraceRecord` entries (virtual time, a kind
tag, and a flat JSON-serializable payload).  The trace doubles as the
reproducibility contract of the engine: two runs with the same seed must
produce byte-identical :meth:`MetricsTrace.to_jsonl` output, so all
payloads must be built from deterministic iteration orders (sort your
dicts and sets before recording).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceRecord:
    """One structured observation at a point in virtual time."""

    time: float
    kind: str
    data: dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """Deterministic single-line JSON encoding."""
        payload = {"time": self.time, "kind": self.kind, **self.data}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class MetricsTrace:
    """Append-only trace of simulation observations."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __eq__(self, other: object) -> bool:
        """Two traces are equal when they hold the same records in order.

        Value equality (rather than identity) is what lets results that
        embed a trace round-trip through their JSON envelopes and
        compare equal to the original.
        """
        if not isinstance(other, MetricsTrace):
            return NotImplemented
        return self._records == other._records

    # Keep the identity hash traces always had (record payloads are
    # dicts, so a value hash is not possible): containers that embed a
    # trace — the frozen ScenarioResult — stay hashable, at the price
    # that two equal traces may hash differently.  Don't key mappings
    # by trace expecting value semantics.
    __hash__ = object.__hash__

    def record(self, time: float, kind: str, **data: object) -> TraceRecord:
        """Append one observation and return it."""
        entry = TraceRecord(time=time, kind=kind, data=data)
        self._records.append(entry)
        return entry

    @classmethod
    def from_records(cls, records: "list[dict] | tuple[dict, ...]") -> "MetricsTrace":
        """Rebuild a trace from JSON-safe record dicts (envelope inverse).

        Each entry is the flat form :meth:`TraceRecord.to_json` encodes:
        ``time`` and ``kind`` plus the payload keys.
        """
        trace = cls()
        for entry in records:
            data = {k: v for k, v in entry.items() if k not in ("time", "kind")}
            trace.record(float(entry["time"]), str(entry["kind"]), **data)
        return trace

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All recorded observations in emission order."""
        return tuple(self._records)

    def of_kind(self, kind: str) -> tuple[TraceRecord, ...]:
        """All observations of one kind, in emission order."""
        return tuple(r for r in self._records if r.kind == kind)

    def kinds(self) -> dict[str, int]:
        """Number of observations per kind (sorted by kind)."""
        counts: dict[str, int] = defaultdict(int)
        for entry in self._records:
            counts[entry.kind] += 1
        return dict(sorted(counts.items()))

    def to_jsonl(self) -> str:
        """The whole trace as deterministic JSON lines.

        Byte-identical across runs with the same seed — tests and the
        CLI rely on this to prove reproducibility.
        """
        return "\n".join(entry.to_json() for entry in self._records) + "\n"

    # ------------------------------------------------------------------
    # Aggregations used by scenario summaries
    # ------------------------------------------------------------------
    def availability(self, architecture: str) -> float:
        """Mean availability ratio over all samples of one architecture."""
        ratios = [
            float(r.data["ratio"])
            for r in self.of_kind("availability_sample")
            if r.data.get("architecture") == architecture
        ]
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)

    def architectures(self) -> tuple[str, ...]:
        """Architectures that produced availability samples (sorted)."""
        return tuple(
            sorted(
                {
                    str(r.data["architecture"])
                    for r in self.of_kind("availability_sample")
                }
            )
        )

    def revenue_by_as(self) -> dict[int, float]:
        """Cumulative billed revenue per AS over the whole run (sorted)."""
        totals: dict[int, float] = defaultdict(float)
        for entry in self.of_kind("billing"):
            for key, value in entry.data.items():
                if key.startswith("revenue_"):
                    totals[int(key.removeprefix("revenue_"))] += float(value)
        return dict(sorted(totals.items()))

    def utility_by_as(self) -> dict[int, float]:
        """Cumulative realized agreement utility per AS (sorted)."""
        totals: dict[int, float] = defaultdict(float)
        for entry in self.of_kind("billing"):
            for key, value in entry.data.items():
                if key.startswith("utility_"):
                    totals[int(key.removeprefix("utility_"))] += float(value)
        return dict(sorted(totals.items()))
