"""Canned simulation scenarios and the scenario registry.

Three scenarios exercise the engine end-to-end:

- ``failure-churn`` — BGP vs. PAN path availability on the same seeded
  link-failure schedule (the dynamic version of §II): BGP pairs go dark
  while reconvergence is pending, PAN sources fail over instantly among
  beaconed paths.
- ``marketplace`` — an agreement marketplace over a billing horizon:
  mutuality agreements are BOSCO-negotiated, metered under diurnal
  demand, billed at expiry, and renegotiated (§III–§V over time).
- ``flash-crowd`` — a demand spike hits the paper's Fig. 1 agreement
  between D and E mid-term and shows up in the 95th-percentile bill.
- ``marketplace-heterogeneous`` — the marketplace over a mixed-profile
  agent population (honest/dishonest/adaptive/budget/regional, see
  :mod:`repro.agents`) with a regional partition and a price war.

Each scenario is reproducible: the same seed yields a byte-identical
metrics trace (:meth:`ScenarioResult.trace_text`).
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.agents.population import (
    PopulationSpec,
    assign_regions,
    default_population_spec,
)
from repro.economics.timeseries import BillingRule
from repro.envelope import envelope, expect_envelope, require_keys
from repro.errors import ValidationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import FailureInjector, StochasticFailureModel
from repro.simulation.lifecycle import AgreementLifecycleManager
from repro.simulation.metrics import MetricsTrace
from repro.simulation.network import DynamicNetwork
from repro.simulation.routing import (
    AvailabilityMonitor,
    BGPRoutingService,
    PANRoutingService,
)
from repro.simulation.shocks import PriceWar, RegionalPartition
from repro.simulation.traffic import FlashCrowd
from repro.topology.fixtures import AS_D, AS_E, figure1_topology
from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    seed: int
    duration: float
    events_processed: int
    trace: MetricsTrace
    headline: tuple[str, ...] = ()

    def trace_text(self) -> str:
        """The full metrics trace as deterministic JSON lines."""
        return self.trace.to_jsonl()

    def summary(self) -> str:
        """Human-readable run summary."""
        kinds = ", ".join(f"{k}={v}" for k, v in self.trace.kinds().items())
        lines = [
            f"== scenario: {self.name} (seed {self.seed}, horizon {self.duration:g}) ==",
            f"events processed: {self.events_processed}",
            f"trace records: {len(self.trace)} ({kinds})",
            *self.headline,
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope, including the full trace.

        The trace records are the same flat dicts
        :meth:`~repro.simulation.metrics.TraceRecord.to_json` encodes,
        so the envelope carries everything :meth:`trace_text` does.
        """
        return envelope(
            "scenario_result",
            {
                "name": self.name,
                "seed": self.seed,
                "duration": self.duration,
                "events_processed": self.events_processed,
                "headline": list(self.headline),
                "trace": [
                    {"time": record.time, "kind": record.kind, **record.data}
                    for record in self.trace.records
                ],
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "scenario_result")
        require_keys(
            payload,
            "scenario_result",
            ("name", "seed", "duration", "events_processed", "trace"),
        )
        return cls(
            name=payload["name"],
            seed=int(payload["seed"]),
            duration=float(payload["duration"]),
            events_processed=int(payload["events_processed"]),
            trace=MetricsTrace.from_records(payload["trace"]),
            headline=tuple(payload.get("headline", ())),
        )


class SimulationScenario(abc.ABC):
    """A reproducible simulation setup: build processes, run, summarize."""

    name: str = "scenario"
    description: str = ""
    seed: int
    duration: float

    @abc.abstractmethod
    def build(self, engine: SimulationEngine, network: DynamicNetwork) -> None:
        """Register the scenario's processes on the engine."""

    @abc.abstractmethod
    def topology(self) -> ASGraph:
        """The base topology of the scenario."""

    def headline(self, trace: MetricsTrace) -> tuple[str, ...]:
        """Scenario-specific summary lines."""
        return ()

    def run(self) -> ScenarioResult:
        """Build an engine, run to the horizon, and summarize."""
        engine = SimulationEngine(seed=self.seed)
        network = DynamicNetwork(self.topology())
        self.build(engine, network)
        trace = engine.run(until=self.duration)
        return ScenarioResult(
            name=self.name,
            seed=self.seed,
            duration=self.duration,
            events_processed=engine.events_processed,
            trace=trace,
            headline=self.headline(trace),
        )


@dataclass
class FailureChurnScenario(SimulationScenario):
    """BGP vs. PAN availability under seeded link-failure churn."""

    seed: int = 2021
    duration: float = 72.0
    num_tier1: int = 3
    num_tier2: int = 8
    num_tier3: int = 16
    num_stubs: int = 30
    num_pairs: int = 6
    mean_time_to_failure: float = 150.0
    mean_time_to_repair: float = 4.0
    beacon_interval: float = 1.0
    reconvergence_delay: float = 0.25
    sample_interval: float = 0.5
    name: str = field(default="failure-churn", init=False)
    description: str = field(
        default="BGP vs. PAN path availability under link-failure churn",
        init=False,
    )

    def topology(self) -> ASGraph:
        return generate_topology(
            num_tier1=self.num_tier1,
            num_tier2=self.num_tier2,
            num_tier3=self.num_tier3,
            num_stubs=self.num_stubs,
            seed=self.seed,
        ).graph

    def _monitored_pairs(self, graph: ASGraph) -> tuple[tuple[int, int], ...]:
        """Deterministically sampled stub-to-stub pairs.

        Pairs share a small destination set so the BGP service only has
        to reconverge a handful of path-vector instances per change.
        """
        stubs = sorted(asn for asn in graph if graph.is_stub(asn))
        rng = np.random.default_rng(self.seed)
        shuffled = [int(x) for x in rng.permutation(stubs)]
        destinations = shuffled[: max(self.num_pairs // 2, 1)]
        sources = shuffled[len(destinations) : len(destinations) + self.num_pairs]
        pairs = []
        for index, source in enumerate(sources):
            destination = destinations[index % len(destinations)]
            if source != destination:
                pairs.append((source, destination))
        return tuple(sorted(set(pairs)))

    def build(self, engine: SimulationEngine, network: DynamicNetwork) -> None:
        graph = network.base_graph
        pairs = self._monitored_pairs(graph)
        links = tuple((link.first, link.second) for link in graph.links)
        engine.add_process(
            FailureInjector(
                network=network,
                schedule=StochasticFailureModel(
                    links=links,
                    mean_time_to_failure=self.mean_time_to_failure,
                    mean_time_to_repair=self.mean_time_to_repair,
                    seed=self.seed,
                ),
                horizon=self.duration,
            )
        )
        bgp = BGPRoutingService(
            network=network,
            destinations=tuple(sorted({d for _, d in pairs})),
            reconvergence_delay=self.reconvergence_delay,
        )
        pan = PANRoutingService(network=network, beacon_interval=self.beacon_interval)
        engine.add_process(bgp)
        engine.add_process(pan)
        engine.add_process(
            AvailabilityMonitor(
                services=(bgp, pan),
                pairs=pairs,
                sample_interval=self.sample_interval,
            )
        )

    def headline(self, trace: MetricsTrace) -> tuple[str, ...]:
        bgp = trace.availability("BGP")
        pan = trace.availability("PAN")
        link_events = len(trace.of_kind("link_event"))
        reconvergences = len(trace.of_kind("bgp_reconverged"))
        return (
            f"link failure/recovery events: {link_events}",
            f"BGP reconvergence passes: {reconvergences}",
            f"mean path availability  BGP: {bgp:.4f}",
            f"mean path availability  PAN: {pan:.4f}",
            f"PAN >= BGP availability: {pan >= bgp}",
        )


@dataclass
class AgreementMarketplaceScenario(SimulationScenario):
    """Mutuality agreements negotiated, metered, billed, renegotiated."""

    seed: int = 2021
    duration: float = 24.0 * 30.0
    num_tier1: int = 3
    num_tier2: int = 6
    num_tier3: int = 10
    num_stubs: int = 12
    num_pairs: int = 6
    term_duration: float = 24.0 * 7.0
    metering_interval: float = 1.0
    mean_demand: float = 10.0
    name: str = field(default="marketplace", init=False)
    description: str = field(
        default="agreement lifecycles (negotiate/meter/bill) over a billing horizon",
        init=False,
    )

    def topology(self) -> ASGraph:
        return generate_topology(
            num_tier1=self.num_tier1,
            num_tier2=self.num_tier2,
            num_tier3=self.num_tier3,
            num_stubs=self.num_stubs,
            seed=self.seed,
        ).graph

    def _peering_pairs(self, graph: ASGraph) -> tuple[tuple[int, int], ...]:
        """The first few peering links below the tier-1 clique."""
        tier1 = graph.tier1_ases()
        pairs = [
            (link.first, link.second)
            for link in graph.links
            if link.relationship is Relationship.PEER_TO_PEER
            and link.first not in tier1
            and link.second not in tier1
        ]
        return tuple(sorted(pairs))[: self.num_pairs]

    def build(self, engine: SimulationEngine, network: DynamicNetwork) -> None:
        engine.add_process(
            AgreementLifecycleManager(
                network=network,
                pairs=self._peering_pairs(network.base_graph),
                term_duration=self.term_duration,
                metering_interval=self.metering_interval,
                mean_demand=self.mean_demand,
                seed=self.seed,
            )
        )

    def headline(self, trace: MetricsTrace) -> tuple[str, ...]:
        negotiations = trace.of_kind("negotiation")
        concluded = sum(1 for r in negotiations if r.data["concluded"])
        billings = trace.of_kind("billing")
        revenue = trace.revenue_by_as()
        top = sorted(revenue.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        top_text = ", ".join(f"AS{asn}: {value:.1f}" for asn, value in top)
        return (
            f"negotiations: {len(negotiations)} (concluded: {concluded})",
            f"billed agreement terms: {len(billings)}",
            f"top billed revenue — {top_text}" if top else "no revenue billed",
        )


@dataclass
class FlashCrowdScenario(SimulationScenario):
    """A flash crowd hits the Fig. 1 D–E agreement mid-term."""

    seed: int = 2021
    duration: float = 24.0 * 7.0 + 1.0
    term_duration: float = 24.0 * 7.0
    metering_interval: float = 0.5
    mean_demand: float = 10.0
    crowd_start: float = 24.0 * 3.0
    crowd_duration: float = 12.0
    crowd_multiplier: float = 6.0
    name: str = field(default="flash-crowd", init=False)
    description: str = field(
        default="a traffic spike through the Fig. 1 D-E agreement and its p95 bill",
        init=False,
    )

    def topology(self) -> ASGraph:
        return figure1_topology()

    def build(self, engine: SimulationEngine, network: DynamicNetwork) -> None:
        engine.add_process(
            AgreementLifecycleManager(
                network=network,
                pairs=((AS_D, AS_E),),
                term_duration=self.term_duration,
                metering_interval=self.metering_interval,
                mean_demand=self.mean_demand,
                billing_rule=BillingRule.NINETY_FIFTH_PERCENTILE,
                seed=self.seed,
                flash_crowds=(
                    FlashCrowd(
                        start=self.crowd_start,
                        duration=self.crowd_duration,
                        multiplier=self.crowd_multiplier,
                    ),
                ),
            )
        )

    def headline(self, trace: MetricsTrace) -> tuple[str, ...]:
        billings = trace.of_kind("billing")
        if not billings:
            return ("no term was billed (agreement not concluded)",)
        record = billings[0]
        billed = max(
            float(record.data["billed_volume_x"]), float(record.data["billed_volume_y"])
        )
        ratio = billed / self.mean_demand if self.mean_demand else 0.0
        return (
            f"billed p95 volume: {billed:.2f} "
            f"(mean demand {self.mean_demand:g}, ratio {ratio:.2f}x)",
            "the flash crowd drives the 95th percentile far above the mean — "
            "exactly why flow-volume conditions need headroom (§IV-C)",
        )


@dataclass
class HeterogeneousMarketplaceScenario(SimulationScenario):
    """A mixed-profile agreement marketplace with regional shocks.

    The population-scale version of the marketplace: every AS carries a
    behavior profile from a declarative population spec (``population``
    — a JSON file path, or the built-in five-profile mix when empty),
    pairs negotiate in mixed sub-batched cohorts, a regional partition
    cuts one region off mid-run, and a price war scales a region's
    billing prices for a window.  Per-profile uptake/utility/PoD/
    default-rate metrics close the trace.
    """

    seed: int = 2021
    duration: float = 24.0 * 14.0
    num_tier1: int = 3
    num_tier2: int = 8
    num_tier3: int = 14
    num_stubs: int = 20
    num_pairs: int = 10
    term_duration: float = 24.0 * 7.0
    metering_interval: float = 1.0
    mean_demand: float = 10.0
    #: Path of a population spec JSON ("" = the built-in mixed spec).
    population: str = ""
    partition_region: int = 2
    partition_start: float = 24.0 * 5.0
    partition_duration: float = 48.0
    price_war_region: int = 0
    price_war_start: float = 24.0 * 8.0
    price_war_duration: float = 96.0
    price_war_multiplier: float = 0.5
    name: str = field(default="marketplace-heterogeneous", init=False)
    description: str = field(
        default="a mixed-profile agreement marketplace with regional shocks",
        init=False,
    )

    def topology(self) -> ASGraph:
        return generate_topology(
            num_tier1=self.num_tier1,
            num_tier2=self.num_tier2,
            num_tier3=self.num_tier3,
            num_stubs=self.num_stubs,
            seed=self.seed,
        ).graph

    def population_spec(self) -> PopulationSpec:
        """The population document this run resolves (file or built-in)."""
        if self.population:
            return PopulationSpec.load(self.population)
        return default_population_spec(seed=self.seed)

    def _peering_pairs(self, graph: ASGraph) -> tuple[tuple[int, int], ...]:
        """The first few peering links below the tier-1 clique."""
        tier1 = graph.tier1_ases()
        pairs = [
            (link.first, link.second)
            for link in graph.links
            if link.relationship is Relationship.PEER_TO_PEER
            and link.first not in tier1
            and link.second not in tier1
        ]
        return tuple(sorted(pairs))[: self.num_pairs]

    def build(self, engine: SimulationEngine, network: DynamicNetwork) -> None:
        graph = network.base_graph
        regions = assign_regions(graph, seed=self.seed)
        population = self.population_spec().resolve(graph, regions)
        price_wars: tuple[PriceWar, ...] = ()
        if self.price_war_multiplier != 1.0:
            price_wars = (
                PriceWar(
                    start=self.price_war_start,
                    duration=self.price_war_duration,
                    multiplier=self.price_war_multiplier,
                    region=self.price_war_region,
                ),
            )
        if self.partition_region >= 0 and self.partition_start <= self.duration:
            partition = RegionalPartition(
                region=self.partition_region,
                start=self.partition_start,
                duration=self.partition_duration,
            )
            engine.add_process(
                FailureInjector(
                    network=network,
                    schedule=partition.failure_schedule(graph, regions),
                    horizon=self.duration,
                )
            )
        lifecycle = AgreementLifecycleManager(
            network=network,
            pairs=self._peering_pairs(graph),
            term_duration=self.term_duration,
            metering_interval=self.metering_interval,
            mean_demand=self.mean_demand,
            seed=self.seed,
            population=population,
            price_wars=price_wars,
        )
        engine.add_process(lifecycle)
        # Priority 50: the per-profile summary closes the trace, after
        # every same-instant billing/negotiation event has settled.
        engine.schedule_at(
            self.duration,
            lifecycle.record_population_metrics,
            priority=50,
            name="profile-metrics",
        )

    def headline(self, trace: MetricsTrace) -> tuple[str, ...]:
        negotiations = trace.of_kind("negotiation")
        concluded = sum(1 for r in negotiations if r.data["concluded"])
        vetoed = sum(1 for r in negotiations if r.data.get("vetoed"))
        billings = trace.of_kind("billing")
        lines = [
            f"negotiations: {len(negotiations)} "
            f"(concluded: {concluded}, vetoed: {vetoed})",
            f"billed agreement terms: {len(billings)}",
        ]
        for record in trace.of_kind("profile_metrics"):
            data = record.data
            lines.append(
                f"profile {data['profile']}: agents {data['agents']}, "
                f"uptake {data['uptake']:.2f}, "
                f"mean utility {data['mean_utility']:.2f}, "
                f"default rate {data['default_rate']:.2f}"
            )
        return tuple(lines)


#: Registry of canned scenarios, keyed by CLI name.
SCENARIOS: dict[str, type[SimulationScenario]] = {
    "failure-churn": FailureChurnScenario,
    "marketplace": AgreementMarketplaceScenario,
    "flash-crowd": FlashCrowdScenario,
    "marketplace-heterogeneous": HeterogeneousMarketplaceScenario,
}


def scenario_catalog() -> tuple[dict[str, Any], ...]:
    """JSON-safe listing of every canned scenario and its knobs.

    Each entry carries the scenario's name, description, and sweepable
    fields (name, type, default) — what ``repro simulate
    --list-scenarios`` prints.
    """
    catalog = []
    for name in sorted(SCENARIOS):
        scenario_cls = SCENARIOS[name]
        fields = []
        for spec in dataclasses.fields(scenario_cls):
            if not spec.init:
                continue
            fields.append(
                {
                    "name": spec.name,
                    "type": spec.type if isinstance(spec.type, str) else spec.type.__name__,
                    "default": spec.default,
                }
            )
        catalog.append(
            {
                "name": name,
                "description": scenario_cls.description,
                "fields": fields,
            }
        )
    return tuple(catalog)


def scenario_field_names(name: str) -> frozenset[str]:
    """The sweepable public fields of a scenario (its init'able knobs).

    This is the validation surface of the sweep spec's ``scenarios``
    axis: any field listed here can be overridden per sweep
    configuration; ``name``/``description`` are identity, not knobs.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    return frozenset(
        field.name for field in dataclasses.fields(SCENARIOS[name]) if field.init
    )


def run_scenario(
    name: str,
    *,
    seed: int | None = None,
    duration: float | None = None,
    **overrides: Any,
) -> ScenarioResult:
    """Run a canned scenario by name with optional overrides.

    ``overrides`` may set any sweepable scenario field (see
    :func:`scenario_field_names`) — the hook the sweep orchestrator uses
    to explore scenario knobs (failure rates, demand levels, topology
    sizes, …) without hand-editing scenario classes.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    allowed = scenario_field_names(name)
    unknown = set(overrides) - allowed
    if unknown:
        # ValidationError (exit 2 / HTTP 400), naming both the invalid
        # key(s) and the full valid field list — so a sweep spec typo is
        # diagnosable without reading scenario source.
        raise ValidationError(
            f"scenario {name!r} has no field(s) "
            f"{', '.join(sorted(repr(key) for key in unknown))}; "
            f"available: {', '.join(sorted(allowed))}"
        )
    scenario = SCENARIOS[name]()
    for key, value in sorted(overrides.items()):
        setattr(scenario, key, value)
    if seed is not None:
        scenario.seed = seed
    if duration is not None:
        scenario.duration = duration
    return scenario.run()
