"""Discrete-event simulation of dynamic networks and agreement lifecycles.

The engine gives the library's one-shot layers a time axis: an event
queue over a virtual clock (:mod:`~repro.simulation.events`,
:mod:`~repro.simulation.engine`), a dynamic topology with failing and
recovering links (:mod:`~repro.simulation.network`,
:mod:`~repro.simulation.failures`), periodic SCION-style beaconing and
BGP reconvergence (:mod:`~repro.simulation.routing`), time-varying
traffic demand (:mod:`~repro.simulation.traffic`), agreement lifecycles
from negotiation to billing (:mod:`~repro.simulation.lifecycle`), and a
deterministic metrics trace (:mod:`~repro.simulation.metrics`).  Canned
scenarios live in :mod:`~repro.simulation.scenarios` and behind the
``repro simulate`` CLI subcommand.
"""

from repro.simulation.engine import Process, SimulationEngine
from repro.simulation.events import (
    Event,
    EventQueue,
    SimulationClock,
    SimulationError,
)
from repro.simulation.failures import (
    LINK_DOWN,
    LINK_UP,
    DeterministicFailureSchedule,
    FailureInjector,
    LinkEvent,
    StochasticFailureModel,
)
from repro.simulation.lifecycle import ActiveAgreement, AgreementLifecycleManager
from repro.simulation.metrics import MetricsTrace, TraceRecord
from repro.simulation.network import DynamicNetwork
from repro.simulation.routing import (
    AvailabilityMonitor,
    BGPRoutingService,
    GRCPathAvailabilityService,
    PANRoutingService,
    RoutingService,
)
from repro.simulation.scenarios import (
    SCENARIOS,
    AgreementMarketplaceScenario,
    FailureChurnScenario,
    FlashCrowdScenario,
    ScenarioResult,
    SimulationScenario,
    run_scenario,
)
from repro.simulation.traffic import FlashCrowd, TimeVaryingDemand

__all__ = [
    "SimulationError",
    "Event",
    "EventQueue",
    "SimulationClock",
    "Process",
    "SimulationEngine",
    "MetricsTrace",
    "TraceRecord",
    "DynamicNetwork",
    "LINK_DOWN",
    "LINK_UP",
    "LinkEvent",
    "DeterministicFailureSchedule",
    "StochasticFailureModel",
    "FailureInjector",
    "RoutingService",
    "BGPRoutingService",
    "PANRoutingService",
    "GRCPathAvailabilityService",
    "AvailabilityMonitor",
    "TimeVaryingDemand",
    "FlashCrowd",
    "ActiveAgreement",
    "AgreementLifecycleManager",
    "SimulationScenario",
    "ScenarioResult",
    "FailureChurnScenario",
    "AgreementMarketplaceScenario",
    "FlashCrowdScenario",
    "SCENARIOS",
    "run_scenario",
]
