"""The discrete-event simulation engine.

The engine owns the event queue, the virtual clock, the metrics trace,
and a single seeded random generator.  Processes (beaconing, failure
injection, traffic, agreement lifecycles, …) register with the engine,
schedule their events, and record observations into the shared trace.

Virtual time is unitless by convention; the canned scenarios interpret
it as hours, which makes the diurnal traffic model line up naturally.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

import numpy as np

from repro.simulation.events import Event, EventQueue, SimulationClock, SimulationError
from repro.simulation.metrics import MetricsTrace


class Process(abc.ABC):
    """A simulation process: registers its events when the run starts."""

    name: str = "process"

    @abc.abstractmethod
    def start(self, engine: "SimulationEngine") -> None:
        """Schedule the process's initial events on the engine."""


class SimulationEngine:
    """Event loop over a virtual clock with a shared metrics trace."""

    def __init__(self, *, seed: int = 0) -> None:
        self.clock = SimulationClock()
        self.queue = EventQueue()
        self.trace = MetricsTrace()
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.events_processed = 0
        self._processes: list[Process] = []
        self._started = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay {delay})")
        return self.queue.push(self.now + delay, action, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule an event at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, the clock is already at {self.now}"
            )
        return self.queue.push(time, action, priority=priority, name=name)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start: float | None = None,
        priority: int = 0,
        name: str = "",
    ) -> None:
        """Schedule a periodic event; the first firing is at ``start``.

        The period keeps rescheduling itself after every firing, so it
        runs until the simulation horizon cuts it off.
        """
        if interval <= 0.0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")

        def fire() -> None:
            action()
            self.schedule(interval, fire, priority=priority, name=name)

        first = self.now if start is None else start
        self.schedule_at(first, fire, priority=priority, name=name)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Processes and the run loop
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> None:
        """Register a process; started processes schedule immediately."""
        self._processes.append(process)
        if self._started:
            process.start(self)

    def stop(self) -> None:
        """Stop the run after the current event."""
        self._stopped = True

    def run(self, until: float) -> MetricsTrace:
        """Run events in order until the horizon; returns the trace.

        Events scheduled exactly at the horizon still fire (so a final
        sampling pass at ``until`` is included in the trace).
        """
        if until < self.now:
            raise SimulationError(f"horizon {until} lies before current time {self.now}")
        if not self._started:
            self._started = True
            for process in self._processes:
                process.start(self)
        self._stopped = False
        while self.queue:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > until:
                break
            event = self.queue.pop()
            self.clock.advance_to(event.time)
            event.action()
            self.events_processed += 1
            if self._stopped:
                break
        self.clock.advance_to(until)
        return self.trace
