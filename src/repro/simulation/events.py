"""Event queue and virtual clock of the discrete-event simulation kernel.

The kernel is deliberately minimal: a binary heap of timestamped events
and a monotonically advancing virtual clock.  Determinism is a hard
requirement (two runs with the same seed must produce byte-identical
metrics traces), so ties are broken by an explicit ``(time, priority,
sequence)`` key — events scheduled for the same instant fire in priority
order, and within the same priority in scheduling (FIFO) order.  No
wall-clock time ever enters the simulation.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


class SimulationError(Exception):
    """Raised for inconsistent simulation operations."""


@dataclass(frozen=True)
class Event:
    """A scheduled callback in virtual time.

    Ordering is total: by ``time``, then ``priority`` (lower fires
    first), then ``sequence`` (scheduling order).  ``action`` takes no
    arguments; processes close over whatever state they need.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)

    @property
    def key(self) -> tuple[float, int, int]:
        """The deterministic ordering key of the event."""
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key


class EventQueue:
    """Deterministic priority queue of simulation events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule an event and return its handle."""
        if time < 0.0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._sequence),
            action=action,
            name=name,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (it will be skipped when popped)."""
        self._cancelled.add(event.sequence)

    def pop(self) -> Event:
        """Remove and return the next event in deterministic order."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Virtual time of the next event, or ``None`` when empty."""
        while self._heap and self._heap[0].sequence in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._heap).sequence)
        return self._heap[0].time if self._heap else None


class SimulationClock:
    """A monotonically advancing virtual clock (no wall-clock leakage)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Advance the clock; moving backwards is a simulation bug."""
        if time < self._now:
            raise SimulationError(
                f"virtual clock cannot move backwards: {self._now} -> {time}"
            )
        self._now = time
