"""Routing processes over the dynamic topology: BGP vs. PAN.

Both services wrap the existing *static* routing layers and give them a
temporal dimension:

- :class:`BGPRoutingService` keeps one selected route per (source,
  monitored destination) pair, computed by the path-vector simulator
  under Gao–Rexford policies.  A topology change does not take effect
  instantly: reconvergence completes only ``reconvergence_delay`` after
  the change, and until then packets follow the stale route — if that
  route uses a failed link, the pair is simply unreachable (the
  transient blackholing the paper's stability argument is about).
- :class:`PANRoutingService` periodically re-runs SCION-style beaconing
  on the active topology and registers segments at a path server.  The
  source holds *several* end-to-end paths and fails over per-packet: a
  pair is available as long as any discovered path is physically intact
  right now, without waiting for any global protocol to converge.

- :class:`GRCPathAvailabilityService` answers availability from the
  network's compiled GRC path engine: a pair counts as reachable when a
  direct link or any GRC-conforming length-3 path exists in the active
  topology.  It is the §VI path-diversity view made dynamic — and the
  simulation-side consumer of the recompile-on-churn contract of
  :meth:`repro.simulation.network.DynamicNetwork.path_engine` (only the
  dirty region of a churned link is recomputed).

An :class:`AvailabilityMonitor` samples the services over the same
failure schedule and records the per-architecture availability ratio
into the metrics trace — the dynamic counterpart of §II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.beaconing import BeaconingProcess, PathServer
from repro.routing.bgp import BGPSimulator
from repro.routing.pan import PathAwareNetwork
from repro.routing.policies import gao_rexford_policies
from repro.simulation.engine import Process, SimulationEngine
from repro.simulation.network import DynamicNetwork


class RoutingService(Process):
    """Common interface the availability monitor samples."""

    architecture: str = "unknown"

    def is_available(self, source: int, destination: int) -> bool:
        """Whether the pair can exchange packets right now."""
        raise NotImplementedError


@dataclass
class BGPRoutingService(RoutingService):
    """Path-vector routing with delayed reconvergence after changes."""

    network: DynamicNetwork
    destinations: tuple[int, ...]
    reconvergence_delay: float = 0.25
    max_rounds: int = 200
    architecture: str = "BGP"
    name: str = "bgp-routing"
    #: routes[destination][source] -> selected AS path or None
    _routes: dict[int, dict[int, tuple[int, ...] | None]] = field(
        default_factory=dict, init=False
    )
    _engine: SimulationEngine | None = field(default=None, init=False)
    _pending_until: float = field(default=-1.0, init=False)
    reconvergences: int = field(default=0, init=False)

    def start(self, engine: SimulationEngine) -> None:
        self._engine = engine
        self.destinations = tuple(sorted(set(self.destinations)))
        self._recompute()
        self.network.subscribe(self._on_change)

    # ------------------------------------------------------------------
    # Reaction to topology changes
    # ------------------------------------------------------------------
    def _on_change(self, time: float, change: str, link: tuple[int, int]) -> None:
        engine = self._engine
        assert engine is not None
        completion = time + self.reconvergence_delay
        # Batch changes within one reconvergence window: BGP reconverges
        # once at the end of the window on whatever topology holds then.
        if completion <= self._pending_until:
            return
        self._pending_until = completion
        engine.trace.record(
            time, "bgp_reconvergence_started", link=list(link), change=change
        )
        engine.schedule(
            self.reconvergence_delay,
            self._complete_reconvergence,
            priority=-5,
            name=f"{self.name}:reconverge",
        )

    def _complete_reconvergence(self) -> None:
        engine = self._engine
        assert engine is not None
        if engine.now < self._pending_until:
            return  # superseded by a later change inside the window
        steps = self._recompute()
        self.reconvergences += 1
        engine.trace.record(
            engine.now,
            "bgp_reconverged",
            steps=steps,
            failed_links=self.network.num_failed_links(),
        )

    def _recompute(self) -> int:
        """Run the path-vector simulator on the active topology."""
        graph = self.network.active_graph()
        policies = gao_rexford_policies(graph)
        total_steps = 0
        for destination in self.destinations:
            simulator = BGPSimulator(
                graph=graph, destination=destination, policies=policies
            )
            outcome = simulator.run(max_rounds=self.max_rounds)
            self._routes[destination] = outcome.routes
            total_steps += outcome.steps
        return total_steps

    # ------------------------------------------------------------------
    # Data-plane view
    # ------------------------------------------------------------------
    def route(self, source: int, destination: int) -> tuple[int, ...] | None:
        """The currently installed (possibly stale) route of a pair."""
        return self._routes.get(destination, {}).get(source)

    def is_available(self, source: int, destination: int) -> bool:
        """Reachable iff the installed route is physically intact.

        During a reconvergence window the installed route may still use
        a failed link — then traffic blackholes until the new stable
        state is computed.
        """
        route = self.route(source, destination)
        if route is None:
            return False
        return self.network.path_is_intact(route)


@dataclass
class PANRoutingService(RoutingService):
    """Periodic beaconing plus per-packet failover at the source."""

    network: DynamicNetwork
    beacon_interval: float = 1.0
    max_paths: int = 8
    apply_grc_authorization: bool = True
    architecture: str = "PAN"
    name: str = "pan-routing"
    _path_server: PathServer | None = field(default=None, init=False)
    _path_cache: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = field(
        default_factory=dict, init=False
    )
    beaconing_runs: int = field(default=0, init=False)

    def start(self, engine: SimulationEngine) -> None:
        self._run_beaconing(engine)
        engine.schedule_every(
            self.beacon_interval,
            lambda: self._run_beaconing(engine),
            start=self.beacon_interval,
            priority=-4,
            name=f"{self.name}:beacon",
        )

    def _run_beaconing(self, engine: SimulationEngine) -> None:
        """Re-discover segments on the topology as it currently stands."""
        graph = self.network.active_graph()
        store = BeaconingProcess(graph).run()
        pan: PathAwareNetwork | None = None
        if self.apply_grc_authorization:
            pan = PathAwareNetwork(graph)
            pan.authorize_grc_segments()
        self._path_server = PathServer(graph=graph, store=store, network=pan)
        self._path_cache.clear()
        self.beaconing_runs += 1
        segments = sum(len(paths) for paths in store.down_segments.values())
        engine.trace.record(
            engine.now,
            "beaconing_completed",
            down_segments=segments,
            failed_links=self.network.num_failed_links(),
        )

    # ------------------------------------------------------------------
    # Data-plane view
    # ------------------------------------------------------------------
    def paths(self, source: int, destination: int) -> tuple[tuple[int, ...], ...]:
        """Paths known to the source since the last beaconing pass."""
        if self._path_server is None:
            return ()
        key = (source, destination)
        if key not in self._path_cache:
            self._path_cache[key] = self._path_server.lookup(
                source, destination, max_paths=self.max_paths
            )
        return self._path_cache[key]

    def is_available(self, source: int, destination: int) -> bool:
        """Reachable iff any known path is physically intact right now.

        The source embeds the path in the packet header, so switching to
        a backup path needs no coordination with anyone — this is the
        instant failover that makes PANs come out ahead under churn.
        """
        return any(
            self.network.path_is_intact(path)
            for path in self.paths(source, destination)
        )


@dataclass
class GRCPathAvailabilityService(RoutingService):
    """Ideal GRC length-3 reachability over the live topology.

    Unlike BGP (stale routes until reconvergence) and PAN (paths as of
    the last beaconing pass), this service reads the compiled path
    engine of the *current* active topology, so it is the oracle upper
    bound for length-≤3 valley-free reachability: available exactly when
    a direct link is up or at least one GRC-conforming length-3 path
    exists right now.  Each lookup after churn triggers at most one
    dirty-region recompile inside the network's engine.
    """

    network: DynamicNetwork
    architecture: str = "GRC-L3"
    name: str = "grc-l3"
    _engine: SimulationEngine | None = field(default=None, init=False)

    def start(self, engine: SimulationEngine) -> None:
        self._engine = engine
        self.network.path_engine()  # warm the compiled engine
        self.network.subscribe(self._on_change)

    def _on_change(self, time: float, change: str, link: tuple[int, int]) -> None:
        engine = self._engine
        assert engine is not None
        engine.trace.record(
            time,
            "grc_engine_invalidated",
            link=list(link),
            change=change,
            recompiles=self.network.recompiles,
        )

    def is_available(self, source: int, destination: int) -> bool:
        """Reachable iff a live direct link or GRC length-3 path exists."""
        if self.network.is_link_up(source, destination):
            return True
        return bool(self.network.path_engine().paths_between(source, destination))


@dataclass
class AvailabilityMonitor(Process):
    """Samples pair availability of several architectures over time."""

    services: tuple[RoutingService, ...]
    pairs: tuple[tuple[int, int], ...]
    sample_interval: float = 0.5
    name: str = "availability-monitor"
    samples_taken: int = field(default=0, init=False)

    def start(self, engine: SimulationEngine) -> None:
        self.pairs = tuple(sorted(self.pairs))
        engine.schedule_every(
            self.sample_interval,
            lambda: self._sample(engine),
            start=0.0,
            priority=10,  # after failures/reconvergence at the same instant
            name=self.name,
        )

    def _sample(self, engine: SimulationEngine) -> None:
        for service in self.services:
            available = sum(
                1 for source, destination in self.pairs
                if service.is_available(source, destination)
            )
            engine.trace.record(
                engine.now,
                "availability_sample",
                architecture=service.architecture,
                available=available,
                pairs=len(self.pairs),
                ratio=available / len(self.pairs) if self.pairs else 0.0,
            )
        self.samples_taken += 1
