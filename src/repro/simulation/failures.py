"""Link failure and recovery injection.

Two schedule models drive the churn:

- :class:`DeterministicFailureSchedule` replays an explicit list of
  timed link-down / link-up events — the right tool for reproducing a
  specific incident (e.g. the §II degradation of a benign topology into
  a BAD GADGET when one link fails).
- :class:`StochasticFailureModel` draws per-link exponential
  time-to-failure and time-to-repair sequences from a seeded generator,
  modelling background churn.  Given the same seed it always produces
  the same event list, so stochastic runs stay reproducible.

A :class:`FailureInjector` process schedules the resulting events on the
engine and applies them to the :class:`DynamicNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.engine import Process, SimulationEngine
from repro.simulation.events import SimulationError
from repro.simulation.network import DynamicNetwork

#: Event kinds understood by the injector.
LINK_DOWN = "down"
LINK_UP = "up"


@dataclass(frozen=True)
class LinkEvent:
    """One timed link state change."""

    time: float
    kind: str
    left: int
    right: int

    def __post_init__(self) -> None:
        if self.kind not in (LINK_DOWN, LINK_UP):
            raise SimulationError(f"unknown link event kind {self.kind!r}")
        if self.time < 0.0:
            raise SimulationError(f"link events need non-negative times, got {self.time}")

    @property
    def link(self) -> tuple[int, int]:
        """Endpoints as a sorted pair."""
        return (min(self.left, self.right), max(self.left, self.right))


@dataclass(frozen=True)
class DeterministicFailureSchedule:
    """An explicit, replayable list of link events."""

    events: tuple[LinkEvent, ...] = ()

    @classmethod
    def of(cls, *events: tuple[float, str, int, int]) -> "DeterministicFailureSchedule":
        """Build from ``(time, kind, left, right)`` tuples."""
        return cls(
            events=tuple(LinkEvent(time=t, kind=k, left=a, right=b) for t, k, a, b in events)
        )

    def link_events(self, horizon: float) -> tuple[LinkEvent, ...]:
        """Events within the horizon, in deterministic order."""
        return tuple(
            sorted(
                (e for e in self.events if e.time <= horizon),
                key=lambda e: (e.time, e.kind, e.link),
            )
        )


@dataclass(frozen=True)
class StochasticFailureModel:
    """Seeded exponential failure/repair churn over a set of links.

    Each link alternates up/down: up-times are exponential with mean
    ``mean_time_to_failure``, down-times exponential with mean
    ``mean_time_to_repair``.  Each link gets its own generator derived
    from ``seed`` and the link endpoints, so the event sequence is
    independent of the iteration order of the link set.
    """

    links: tuple[tuple[int, int], ...]
    mean_time_to_failure: float
    mean_time_to_repair: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_time_to_failure <= 0.0 or self.mean_time_to_repair <= 0.0:
            raise SimulationError("failure and repair means must be positive")
        canonical = tuple(sorted((min(a, b), max(a, b)) for a, b in self.links))
        object.__setattr__(self, "links", canonical)

    def link_events(self, horizon: float) -> tuple[LinkEvent, ...]:
        """Sample all events up to the horizon (deterministic per seed)."""
        events: list[LinkEvent] = []
        for left, right in self.links:
            rng = np.random.default_rng((self.seed, left, right))
            time = 0.0
            while True:
                time += float(rng.exponential(self.mean_time_to_failure))
                if time > horizon:
                    break
                events.append(LinkEvent(time=time, kind=LINK_DOWN, left=left, right=right))
                time += float(rng.exponential(self.mean_time_to_repair))
                if time > horizon:
                    break
                events.append(LinkEvent(time=time, kind=LINK_UP, left=left, right=right))
        return tuple(sorted(events, key=lambda e: (e.time, e.kind, e.link)))


@dataclass
class FailureInjector(Process):
    """Applies a failure schedule to the dynamic network."""

    network: DynamicNetwork
    schedule: DeterministicFailureSchedule | StochasticFailureModel
    horizon: float
    name: str = "failure-injector"
    applied_events: int = field(default=0, init=False)

    def start(self, engine: SimulationEngine) -> None:
        # Failures fire before routing reactions and availability samples
        # scheduled for the same instant (priority -10 < default 0), so a
        # sample taken at the failure time sees the failed link.
        for event in self.schedule.link_events(self.horizon):
            engine.schedule_at(
                event.time,
                self._apply(engine, event),
                priority=-10,
                name=f"{self.name}:{event.kind}",
            )

    def _apply(self, engine: SimulationEngine, event: LinkEvent):
        def apply() -> None:
            left, right = event.link
            if event.kind == LINK_DOWN:
                changed = self.network.fail_link(left, right, time=engine.now)
            else:
                changed = self.network.restore_link(left, right, time=engine.now)
            if changed:
                self.applied_events += 1
                engine.trace.record(
                    engine.now,
                    "link_event",
                    change=event.kind,
                    link=[left, right],
                    failed_links=self.network.num_failed_links(),
                )

        return apply
