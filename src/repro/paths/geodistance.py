"""Geodistance analysis of MA paths (§VI-B, Fig. 5).

For every analyzed AS pair connected by at least one length-3 GRC path,
the analysis determines the maximum, median, and minimum geodistance of
the GRC paths, and counts how many of the additional MA paths between
the pair undercut each of those thresholds.  For the pairs whose minimum
geodistance improves, it also reports the relative reduction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import enumerate_mutuality_agreements
from repro.core import PathEngine, path_engine_for
from repro.paths.diversity import sample_ases
from repro.paths.ma_paths import MAPathIndex, build_ma_path_index
from repro.paths.metrics import EmpiricalCDF
from repro.topology.geography import GeographicEmbedding
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class PairGeodistanceRecord:
    """Geodistance comparison for one (source, destination) AS pair."""

    source: int
    destination: int
    grc_min: float
    grc_median: float
    grc_max: float
    ma_distances: tuple[float, ...]

    @property
    def paths_below_grc_min(self) -> int:
        """MA paths shorter than the best GRC path."""
        return sum(1 for d in self.ma_distances if d < self.grc_min)

    @property
    def paths_below_grc_median(self) -> int:
        """MA paths shorter than the median GRC path."""
        return sum(1 for d in self.ma_distances if d < self.grc_median)

    @property
    def paths_below_grc_max(self) -> int:
        """MA paths shorter than the worst GRC path."""
        return sum(1 for d in self.ma_distances if d < self.grc_max)

    @property
    def best_ma_distance(self) -> float:
        """Geodistance of the best MA path (inf when there is none)."""
        return min(self.ma_distances) if self.ma_distances else float("inf")

    @property
    def relative_reduction(self) -> float | None:
        """Relative reduction of the minimum geodistance, if any.

        ``(grc_min − best_ma) / grc_min`` for pairs whose best MA path
        beats the best GRC path; ``None`` otherwise.
        """
        best = self.best_ma_distance
        if best >= self.grc_min or self.grc_min <= 0.0:
            return None
        return (self.grc_min - best) / self.grc_min


@dataclass
class GeodistanceResult:
    """Full result of the Fig. 5 analysis."""

    records: list[PairGeodistanceRecord] = field(default_factory=list)

    def count_cdf(self, condition: str) -> EmpiricalCDF:
        """CDF over AS pairs of the number of MA paths meeting a condition.

        ``condition`` is ``"min"``, ``"median"``, or ``"max"``
        (Fig. 5a's three series).
        """
        attribute = {
            "min": "paths_below_grc_min",
            "median": "paths_below_grc_median",
            "max": "paths_below_grc_max",
        }[condition]
        return EmpiricalCDF(tuple(getattr(r, attribute) for r in self.records))

    def reduction_cdf(self) -> EmpiricalCDF:
        """CDF of the relative geodistance reduction among benefiting pairs (Fig. 5b)."""
        reductions = [
            r.relative_reduction
            for r in self.records
            if r.relative_reduction is not None
        ]
        return EmpiricalCDF(tuple(reductions))

    def fraction_of_pairs_improving(self, condition: str = "min", at_least: int = 1) -> float:
        """Fraction of AS pairs gaining ``at_least`` paths meeting the condition."""
        if not self.records:
            return 0.0
        cdf = self.count_cdf(condition)
        return cdf.fraction_at_least(at_least)


def path_geodistances(
    paths: frozenset[tuple[int, int, int]] | set[tuple[int, int, int]],
    embedding: GeographicEmbedding,
) -> dict[tuple[int, int], list[float]]:
    """Group a set of length-3 paths by (source, destination) with their geodistances."""
    grouped: dict[tuple[int, int], list[float]] = defaultdict(list)
    for path in paths:
        grouped[(path[0], path[2])].append(embedding.path_geodistance(path))
    return grouped


def analyze_geodistance(
    graph: ASGraph,
    embedding: GeographicEmbedding,
    *,
    agreements: list[Agreement] | None = None,
    index: MAPathIndex | None = None,
    sample_size: int = 100,
    seed: int = 0,
    engine: PathEngine | None = None,
) -> GeodistanceResult:
    """Run the Fig. 5 analysis over a sample of source ASes.

    For every sampled source AS, every destination reachable via at least
    one GRC length-3 path contributes one AS pair to the analysis.
    GRC paths come from the compiled path engine (``engine`` defaults to
    the graph's shared one).
    """
    if index is None:
        if agreements is None:
            agreements = list(enumerate_mutuality_agreements(graph))
        index = build_ma_path_index(agreements)
    if engine is None:
        engine = path_engine_for(graph)
    result = GeodistanceResult()
    for source in sample_ases(graph, sample_size, seed=seed):
        grc_paths = engine.paths(source)
        if not grc_paths:
            continue
        grc_by_pair = path_geodistances(grc_paths, embedding)
        ma_paths = index.all_paths(source) - grc_paths
        ma_by_pair = path_geodistances(ma_paths, embedding)
        for (src, dst), grc_distances in grc_by_pair.items():
            distances = np.array(grc_distances)
            result.records.append(
                PairGeodistanceRecord(
                    source=src,
                    destination=dst,
                    grc_min=float(np.min(distances)),
                    grc_median=float(np.median(distances)),
                    grc_max=float(np.max(distances)),
                    ma_distances=tuple(ma_by_pair.get((src, dst), ())),
                )
            )
    return result
