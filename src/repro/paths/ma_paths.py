"""Length-3 paths created by mutuality-based agreements (§VI).

An MA can provide an AS with new paths in two ways:

- *directly*: the AS is a party of the MA and gains the segment
  ``AS – partner – target`` (e.g. D gains ``D E B`` from the Fig. 1
  agreement), or
- *indirectly*: the AS is the *subject* (target) of an MA between two
  other ASes and gains the reverse path towards the beneficiary (e.g.
  B and F gain paths to D from the MA between D and E).

The paper's series ``MA`` counts both kinds, ``MA*`` only the directly
gained paths, and ``MA* (Top n)`` the directly gained paths of the ``n``
most attractive agreements of the AS.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.agreements.agreement import Agreement
from repro.paths.grc import grc_length3_paths
from repro.topology.graph import ASGraph


@dataclass
class MAPathIndex:
    """Per-AS index of the length-3 paths created by a set of MAs.

    ``direct[asn]`` are paths gained as an agreement party, mapped to the
    agreements that provide them (an AS may gain the same path from at
    most one maximal MA, but the mapping keeps the analysis general);
    ``indirect[asn]`` are paths gained as the subject of other ASes'
    agreements.
    """

    direct: dict[int, dict[tuple[int, int, int], Agreement]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    indirect: dict[int, set[tuple[int, int, int]]] = field(
        default_factory=lambda: defaultdict(set)
    )

    def direct_paths(self, asn: int) -> frozenset[tuple[int, int, int]]:
        """Directly gained MA paths starting at ``asn`` (the MA* series)."""
        return frozenset(self.direct.get(asn, {}))

    def indirect_paths(self, asn: int) -> frozenset[tuple[int, int, int]]:
        """Indirectly gained MA paths starting at ``asn``."""
        return frozenset(self.indirect.get(asn, set()))

    def all_paths(self, asn: int) -> frozenset[tuple[int, int, int]]:
        """All MA paths starting at ``asn`` (the MA series)."""
        return self.direct_paths(asn) | self.indirect_paths(asn)

    def top_n_paths(
        self,
        asn: int,
        n: int,
        graph: ASGraph | None = None,
        *,
        grc: frozenset[tuple[int, int, int]] | None = None,
    ) -> frozenset[tuple[int, int, int]]:
        """Directly gained paths from the AS's ``n`` most attractive MAs.

        Agreements are ranked by the number of *new* directly gained
        paths they provide to the AS (paths that are not already
        GRC-conforming are new; when a topology is supplied the GRC
        paths are excluded from the ranking and the result, matching the
        paper's "additional paths" notion).  Callers that already hold
        the AS's GRC path set (e.g. the diversity analysis, which gets
        it from the shared path engine) can pass it via ``grc`` to skip
        the lookup.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if grc is None:
            grc = grc_length3_paths(graph, asn) if graph is not None else frozenset()
        per_agreement: dict[int, set[tuple[int, int, int]]] = defaultdict(set)
        for path, agreement in self.direct.get(asn, {}).items():
            if path in grc:
                continue
            per_agreement[id(agreement)].add(path)
        ranked = sorted(per_agreement.values(), key=len, reverse=True)
        selected: set[tuple[int, int, int]] = set()
        for paths in ranked[:n]:
            selected.update(paths)
        return frozenset(selected)


def agreement_paths(agreement: Agreement) -> dict[int, set[tuple[int, int, int]]]:
    """Length-3 paths created by one agreement, keyed by the AS that gains them."""
    gained: dict[int, set[tuple[int, int, int]]] = defaultdict(set)
    for segment in agreement.all_segments():
        gained[segment.beneficiary].add(segment.path)
        gained[segment.target].add(segment.reverse_path)
    return gained


def build_ma_path_index(agreements: list[Agreement]) -> MAPathIndex:
    """Index the paths created by a collection of MAs."""
    index = MAPathIndex()
    for agreement in agreements:
        for segment in agreement.all_segments():
            index.direct[segment.beneficiary][segment.path] = agreement
            index.indirect[segment.target].add(segment.reverse_path)
    return index


def new_ma_paths(
    graph: ASGraph, index: MAPathIndex, asn: int, *, directly_gained_only: bool = False
) -> frozenset[tuple[int, int, int]]:
    """MA paths of an AS that are not already available under the GRC."""
    grc = grc_length3_paths(graph, asn)
    paths = index.direct_paths(asn) if directly_gained_only else index.all_paths(asn)
    return frozenset(path for path in paths if path not in grc)
