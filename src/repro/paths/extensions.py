"""Path diversity from extension agreements (§III-B3).

Once a mutuality-based agreement is in force, the path segments it
creates can themselves be offered to further ASes: in the paper's
example, E gains the segment ``EDA`` from its agreement with D and can
offer that segment to its peer F, giving F the length-4 path ``FEDA``.
The paper leaves the quantitative analysis of such extensions open; this
module provides it as the natural next step of the §VI study:

- enumerate the extension agreements available on top of a set of base
  MAs (every peer of a segment's beneficiary can be offered the segment,
  unless it already sits on it),
- count the additional length-4 paths per AS, analogous to Fig. 3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.agreements.agreement import Agreement
from repro.agreements.extension import ExtensionAgreement, SegmentOffer
from repro.paths.metrics import EmpiricalCDF, summarize
from repro.topology.graph import ASGraph


@dataclass
class ExtensionPathIndex:
    """Per-AS index of the length-4 paths gained from extension agreements."""

    paths: dict[int, set[tuple[int, ...]]] = field(
        default_factory=lambda: defaultdict(set)
    )

    def paths_of(self, asn: int) -> frozenset[tuple[int, ...]]:
        """Length-4 paths starting at an AS."""
        return frozenset(self.paths.get(asn, set()))

    def count(self, asn: int) -> int:
        """Number of length-4 extension paths of an AS."""
        return len(self.paths.get(asn, set()))

    def cdf(self, sample: tuple[int, ...]) -> EmpiricalCDF:
        """CDF of the per-AS extension-path counts over a sample of ASes."""
        return EmpiricalCDF(tuple(self.count(asn) for asn in sample))

    def summary(self, sample: tuple[int, ...]) -> dict[str, float]:
        """Mean / median / max extension paths over a sample of ASes."""
        return summarize([self.count(asn) for asn in sample])


def enumerate_extension_agreements(
    graph: ASGraph,
    base_agreements: list[Agreement],
) -> list[ExtensionAgreement]:
    """All single-segment extension agreements enabled by the base MAs.

    For every segment a base agreement creates for a beneficiary, the
    beneficiary can offer that segment to each of its peers that is not
    already on the segment.  (In practice the peer would offer something
    in return; for the diversity analysis only the offered side matters,
    mirroring how §VI treats the base MAs.)
    """
    extensions: list[ExtensionAgreement] = []
    for agreement in base_agreements:
        for party in agreement.parties:
            for segment in agreement.segments_for(party):
                for peer in sorted(graph.peers(party)):
                    if peer in segment.path:
                        continue
                    offer = SegmentOffer(
                        owner=party, segment=segment, base_agreement=agreement
                    )
                    extensions.append(
                        ExtensionAgreement(
                            party_x=party,
                            party_y=peer,
                            segment_offers_x=(offer,),
                        )
                    )
    return extensions


def build_extension_path_index(
    extensions: list[ExtensionAgreement],
) -> ExtensionPathIndex:
    """Index the length-4 paths created by extension agreements."""
    index = ExtensionPathIndex()
    for extension in extensions:
        for party in (extension.party_x, extension.party_y):
            for path in extension.extended_paths_for(party):
                index.paths[party].add(path)
    return index


def analyze_extension_diversity(
    graph: ASGraph,
    base_agreements: list[Agreement],
    sample: tuple[int, ...],
) -> dict[str, float]:
    """Summary of the extra length-4 paths extension agreements provide.

    Returns the summary statistics over the sampled ASes plus the number
    of extension agreements considered, which is what the extension
    benchmark reports.
    """
    extensions = enumerate_extension_agreements(graph, base_agreements)
    index = build_extension_path_index(extensions)
    summary = index.summary(sample)
    summary["num_extension_agreements"] = float(len(extensions))
    return summary
