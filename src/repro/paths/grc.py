"""GRC-conforming (valley-free) length-3 paths (§VI).

The paper's path-diversity analysis counts, per AS, the *length-3 paths*
(three ASes, two inter-AS links) available under the Gao–Rexford
conditions, and the destinations those paths reach ("nearby
destinations").  A path ``A – B – C`` is GRC-conforming exactly when the
transit AS ``B`` is willing to forward between ``A`` and ``C`` under a
GRC-conforming export policy, i.e. when at least one of ``A`` and ``C``
is a customer of ``B``.

Two implementations coexist here:

- :func:`iter_grc_length3_paths` is the *naive reference*: a direct
  generator over the dict/set graph, kept as the executable definition
  the property tests compare against.
- Every other function delegates to the shared, per-graph-cached
  :class:`repro.core.PathEngine`, which batch-computes all sources over
  the compiled topology and memoizes per-source results — so repeated
  queries (the common case in the §VI analyses) cost a dict lookup.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core import path_engine_for
from repro.topology.graph import ASGraph


def is_grc_conforming_segment(graph: ASGraph, first: int, transit: int, last: int) -> bool:
    """Whether the transit AS would forward between ``first`` and ``last`` under the GRC."""
    customers = graph.customers(transit)
    return first in customers or last in customers


def iter_grc_length3_paths(graph: ASGraph, source: int) -> Iterator[tuple[int, int, int]]:
    """Yield every GRC-conforming length-3 path starting at ``source``.

    Paths are tuples ``(source, transit, destination)`` with three
    distinct ASes and two existing links.  This is the naive reference
    implementation (one uncached graph walk per call); analysis code
    should prefer :func:`grc_length3_paths` and friends, which share the
    compiled path engine.
    """
    for transit in graph.neighbors(source):
        transit_customers = graph.customers(transit)
        source_is_customer = source in transit_customers
        for destination in graph.neighbors(transit):
            if destination == source:
                continue
            if source_is_customer or destination in transit_customers:
                yield (source, transit, destination)


def grc_length3_paths(graph: ASGraph, source: int) -> frozenset[tuple[int, int, int]]:
    """All GRC-conforming length-3 paths starting at ``source``."""
    return path_engine_for(graph).paths(source)


def grc_length3_destinations(graph: ASGraph, source: int) -> frozenset[int]:
    """Destinations reachable from ``source`` over GRC-conforming length-3 paths."""
    return path_engine_for(graph).destinations(source)


def grc_paths_between(
    graph: ASGraph, source: int, destination: int
) -> frozenset[tuple[int, int, int]]:
    """GRC-conforming length-3 paths between a specific AS pair.

    By definition all length-3 paths between a fixed source and
    destination are disjoint (they only share the endpoints), a property
    the paper points out and the path-diversity tests verify.
    """
    return path_engine_for(graph).paths_between(source, destination)


def count_grc_length3_paths(graph: ASGraph, source: int) -> int:
    """Number of GRC-conforming length-3 paths starting at ``source``."""
    return path_engine_for(graph).count(source)
