"""GRC-conforming (valley-free) length-3 paths (§VI).

The paper's path-diversity analysis counts, per AS, the *length-3 paths*
(three ASes, two inter-AS links) available under the Gao–Rexford
conditions, and the destinations those paths reach ("nearby
destinations").  A path ``A – B – C`` is GRC-conforming exactly when the
transit AS ``B`` is willing to forward between ``A`` and ``C`` under a
GRC-conforming export policy, i.e. when at least one of ``A`` and ``C``
is a customer of ``B``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.topology.graph import ASGraph


def is_grc_conforming_segment(graph: ASGraph, first: int, transit: int, last: int) -> bool:
    """Whether the transit AS would forward between ``first`` and ``last`` under the GRC."""
    customers = graph.customers(transit)
    return first in customers or last in customers


def iter_grc_length3_paths(graph: ASGraph, source: int) -> Iterator[tuple[int, int, int]]:
    """Yield every GRC-conforming length-3 path starting at ``source``.

    Paths are tuples ``(source, transit, destination)`` with three
    distinct ASes and two existing links.
    """
    for transit in graph.neighbors(source):
        transit_customers = graph.customers(transit)
        source_is_customer = source in transit_customers
        for destination in graph.neighbors(transit):
            if destination == source:
                continue
            if source_is_customer or destination in transit_customers:
                yield (source, transit, destination)


def grc_length3_paths(graph: ASGraph, source: int) -> frozenset[tuple[int, int, int]]:
    """All GRC-conforming length-3 paths starting at ``source``."""
    return frozenset(iter_grc_length3_paths(graph, source))


def grc_length3_destinations(graph: ASGraph, source: int) -> frozenset[int]:
    """Destinations reachable from ``source`` over GRC-conforming length-3 paths."""
    return frozenset(path[2] for path in iter_grc_length3_paths(graph, source))


def grc_paths_between(
    graph: ASGraph, source: int, destination: int
) -> frozenset[tuple[int, int, int]]:
    """GRC-conforming length-3 paths between a specific AS pair.

    By definition all length-3 paths between a fixed source and
    destination are disjoint (they only share the endpoints), a property
    the paper points out and the path-diversity tests verify.
    """
    return frozenset(
        path
        for path in iter_grc_length3_paths(graph, source)
        if path[2] == destination
    )


def count_grc_length3_paths(graph: ASGraph, source: int) -> int:
    """Number of GRC-conforming length-3 paths starting at ``source``."""
    return sum(1 for _ in iter_grc_length3_paths(graph, source))
