"""Path-diversity analyses of §VI.

GRC-conforming length-3 path enumeration, MA-created paths (directly and
indirectly gained, Top-n agreement conclusion), the path/destination
diversity analysis (Figs. 3 and 4), the geodistance analysis (Fig. 5),
the bandwidth analysis (Fig. 6), and CDF/statistics helpers.
"""

from repro.paths.bandwidth import (
    BandwidthResult,
    PairBandwidthRecord,
    analyze_bandwidth,
    path_bandwidths,
)
from repro.paths.diversity import (
    DEFAULT_SCENARIOS,
    ASDiversityRecord,
    DiversityResult,
    analyze_as,
    analyze_path_diversity,
    sample_ases,
)
from repro.paths.geodistance import (
    GeodistanceResult,
    PairGeodistanceRecord,
    analyze_geodistance,
    path_geodistances,
)
from repro.paths.extensions import (
    ExtensionPathIndex,
    analyze_extension_diversity,
    build_extension_path_index,
    enumerate_extension_agreements,
)
from repro.paths.grc import (
    count_grc_length3_paths,
    grc_length3_destinations,
    grc_length3_paths,
    grc_paths_between,
    is_grc_conforming_segment,
    iter_grc_length3_paths,
)
from repro.paths.ma_paths import (
    MAPathIndex,
    agreement_paths,
    build_ma_path_index,
    new_ma_paths,
)
from repro.paths.metrics import EmpiricalCDF, summarize

__all__ = [
    "is_grc_conforming_segment",
    "iter_grc_length3_paths",
    "grc_length3_paths",
    "grc_length3_destinations",
    "grc_paths_between",
    "count_grc_length3_paths",
    "MAPathIndex",
    "agreement_paths",
    "build_ma_path_index",
    "new_ma_paths",
    "EmpiricalCDF",
    "summarize",
    "DEFAULT_SCENARIOS",
    "ASDiversityRecord",
    "DiversityResult",
    "analyze_as",
    "analyze_path_diversity",
    "sample_ases",
    "PairGeodistanceRecord",
    "GeodistanceResult",
    "analyze_geodistance",
    "path_geodistances",
    "PairBandwidthRecord",
    "BandwidthResult",
    "analyze_bandwidth",
    "path_bandwidths",
    "ExtensionPathIndex",
    "enumerate_extension_agreements",
    "build_extension_path_index",
    "analyze_extension_diversity",
]
