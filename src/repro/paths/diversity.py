"""Path- and destination-diversity analysis (§VI-A, Figs. 3 and 4).

For a sample of ASes, the analysis counts the length-3 paths starting at
each AS and the destinations reachable over such paths, under six
degrees of agreement conclusion:

- ``GRC`` — only GRC-conforming paths,
- ``MA* (Top 1/5/50)`` — GRC paths plus the directly gained paths of the
  AS's 1/5/50 most attractive MAs,
- ``MA*`` — GRC paths plus all directly gained MA paths,
- ``MA`` — GRC paths plus all MA paths (direct and indirect).

It also produces the headline statistics quoted in §VI-A: the average
and maximum number of *additional* paths and *additionally reachable*
destinations per AS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import enumerate_mutuality_agreements
from repro.core import PathEngine, path_engine_for
from repro.paths.ma_paths import MAPathIndex, build_ma_path_index
from repro.paths.metrics import EmpiricalCDF, summarize
from repro.topology.graph import ASGraph

#: The degrees of MA conclusion reported in Figs. 3 and 4.
DEFAULT_SCENARIOS: tuple[str, ...] = (
    "GRC",
    "MA* (Top 1)",
    "MA* (Top 5)",
    "MA* (Top 50)",
    "MA*",
    "MA",
)


@dataclass(frozen=True)
class ASDiversityRecord:
    """Per-AS path and destination counts under every scenario."""

    asn: int
    path_counts: dict[str, int]
    destination_counts: dict[str, int]

    @property
    def additional_paths(self) -> int:
        """Paths gained when all MAs are concluded (MA − GRC)."""
        return self.path_counts["MA"] - self.path_counts["GRC"]

    @property
    def additional_destinations(self) -> int:
        """Destinations gained when all MAs are concluded (MA − GRC)."""
        return self.destination_counts["MA"] - self.destination_counts["GRC"]


@dataclass
class DiversityResult:
    """Full result of the Figs. 3/4 analysis."""

    records: list[ASDiversityRecord] = field(default_factory=list)

    def path_cdf(self, scenario: str) -> EmpiricalCDF:
        """CDF over ASes of the number of length-3 paths (Fig. 3 series)."""
        return EmpiricalCDF(tuple(r.path_counts[scenario] for r in self.records))

    def destination_cdf(self, scenario: str) -> EmpiricalCDF:
        """CDF over ASes of the number of nearby destinations (Fig. 4 series)."""
        return EmpiricalCDF(tuple(r.destination_counts[scenario] for r in self.records))

    def additional_path_summary(self) -> dict[str, float]:
        """Average / maximum additional paths per AS (§VI-A headline numbers)."""
        return summarize([r.additional_paths for r in self.records])

    def additional_destination_summary(self) -> dict[str, float]:
        """Average / maximum additionally reachable destinations per AS."""
        return summarize([r.additional_destinations for r in self.records])


def sample_ases(graph: ASGraph, sample_size: int, *, seed: int = 0) -> tuple[int, ...]:
    """Randomly sample ASes for the analysis (the paper samples 500)."""
    ases = sorted(graph.ases)
    if sample_size >= len(ases):
        return tuple(ases)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(ases, size=sample_size, replace=False)
    return tuple(int(asn) for asn in sorted(chosen))


def analyze_as(
    graph: ASGraph,
    index: MAPathIndex,
    asn: int,
    *,
    top_n_values: tuple[int, ...] = (1, 5, 50),
    engine: PathEngine | None = None,
) -> ASDiversityRecord:
    """Compute path/destination counts for one AS under every scenario.

    ``engine`` is the compiled path engine to read GRC paths from; it
    defaults to the shared per-graph engine, so the GRC path set is
    computed once per AS no matter how many scenarios consume it.
    """
    if engine is None:
        engine = path_engine_for(graph)
    grc_paths = engine.paths(asn)
    grc_destinations = engine.destinations(asn)

    direct = index.direct_paths(asn) - grc_paths
    all_ma = index.all_paths(asn) - grc_paths

    path_counts: dict[str, int] = {"GRC": len(grc_paths)}
    destination_counts: dict[str, int] = {"GRC": len(grc_destinations)}

    for n in top_n_values:
        top_paths = index.top_n_paths(asn, n, grc=grc_paths)
        scenario = f"MA* (Top {n})"
        path_counts[scenario] = len(grc_paths) + len(top_paths)
        destination_counts[scenario] = len(
            grc_destinations | {path[2] for path in top_paths}
        )

    path_counts["MA*"] = len(grc_paths) + len(direct)
    destination_counts["MA*"] = len(grc_destinations | {p[2] for p in direct})
    path_counts["MA"] = len(grc_paths) + len(all_ma)
    destination_counts["MA"] = len(grc_destinations | {p[2] for p in all_ma})

    return ASDiversityRecord(
        asn=asn, path_counts=path_counts, destination_counts=destination_counts
    )


def analyze_path_diversity(
    graph: ASGraph,
    *,
    agreements: list[Agreement] | None = None,
    sample_size: int = 500,
    seed: int = 0,
    top_n_values: tuple[int, ...] = (1, 5, 50),
    engine: PathEngine | None = None,
    index: MAPathIndex | None = None,
) -> DiversityResult:
    """Run the full Figs. 3/4 analysis over a sample of ASes.

    ``agreements`` defaults to all maximal mutuality-based agreements of
    the topology (the paper's "all possible MAs" case); ``engine`` and
    ``index`` default to the shared compiled path engine of the graph
    and a freshly built MA path index, so callers that already hold them
    (the experiment context) pay for neither twice.
    """
    if index is None:
        if agreements is None:
            agreements = list(enumerate_mutuality_agreements(graph))
        index = build_ma_path_index(agreements)
    if engine is None:
        engine = path_engine_for(graph)
    result = DiversityResult()
    for asn in sample_ases(graph, sample_size, seed=seed):
        result.records.append(
            analyze_as(graph, index, asn, top_n_values=top_n_values, engine=engine)
        )
    return result
