"""Small statistics helpers shared by the path-diversity analyses (§VI).

The paper reports its results as empirical CDFs over ASes or AS pairs;
this module provides the CDF construction, the "fraction of samples
above a threshold" readings quoted in the text, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution function over sample values."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(sorted(float(v) for v in self.values)))

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self.values)

    def at(self, threshold: float) -> float:
        """CDF value ``P[X ≤ threshold]``."""
        if not self.values:
            return 0.0
        return float(np.searchsorted(self.values, threshold, side="right")) / self.count

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly greater than a threshold."""
        if not self.values:
            return 0.0
        return 1.0 - self.at(threshold)

    def fraction_at_least(self, threshold: float) -> float:
        """Fraction of samples greater than or equal to a threshold."""
        if not self.values:
            return 0.0
        below = float(np.searchsorted(self.values, threshold, side="left")) / self.count
        return 1.0 - below

    def quantile(self, q: float) -> float:
        """Empirical quantile of the samples."""
        if not self.values:
            raise ValueError("cannot take the quantile of an empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(np.array(self.values), q))

    @property
    def mean(self) -> float:
        """Mean of the samples."""
        if not self.values:
            return 0.0
        return float(np.mean(self.values))

    @property
    def median(self) -> float:
        """Median of the samples."""
        return self.quantile(0.5)

    @property
    def maximum(self) -> float:
        """Maximum of the samples."""
        if not self.values:
            raise ValueError("empty CDF has no maximum")
        return self.values[-1]

    @property
    def minimum(self) -> float:
        """Minimum of the samples."""
        if not self.values:
            raise ValueError("empty CDF has no minimum")
        return self.values[0]

    def series(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(x, y) series of the CDF, suitable for plotting or tabulation."""
        if not self.values:
            return ((), ())
        xs = self.values
        ys = tuple((np.arange(1, self.count + 1) / self.count).tolist())
        return xs, ys


def summarize(values: list[float] | tuple[float, ...]) -> dict[str, float]:
    """Mean / median / min / max summary of a list of values."""
    if not values:
        return {"count": 0.0, "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0}
    array = np.array([float(v) for v in values])
    return {
        "count": float(array.size),
        "mean": float(np.mean(array)),
        "median": float(np.median(array)),
        "min": float(np.min(array)),
        "max": float(np.max(array)),
    }
