"""All-sources GRC pass: every AS's path and destination counts, sharded.

The §VI headline numbers are per-source aggregates over *all* sources —
exactly the computation that must scale to a full CAIDA snapshot.  This
module runs it end to end:

- **Sequential** — one :class:`~repro.core.PathEngine` blocked sweep
  (``O(block × n)`` peak memory, never a dense n×n matrix).
- **Sharded** — per-source results are independent, so the source index
  space splits into contiguous ranges (like ``repro sweep`` splits its
  parameter grid) and each range runs in its own worker process.
  Workers do not receive a pickled graph: they receive the *path* of a
  memory-mapped topology artifact (:mod:`repro.core.artifacts`) and all
  map the same physical pages.  The parent concatenates shard results
  in range order, making sharded output byte-identical to the
  sequential pass (pinned by tests).

The result is plain arrays plus summary statistics; ``repro grc-all``
(:mod:`repro.api`) wraps it with topology loading, artifact publishing,
and CSV/JSON output.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.artifacts import load_artifact
from repro.core.compiled import CompiledTopology
from repro.core.path_engine import PathEngine


def plan_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``n`` sources into ``shards`` contiguous balanced ranges.

    Every source appears in exactly one range; ranges are returned in
    index order (the merge order).  Fewer than ``shards`` ranges are
    returned when ``n < shards``.
    """
    if shards < 1:
        raise ValueError(f"shards must be a positive integer, got {shards}")
    shards = min(shards, n) if n else 0
    bounds = np.linspace(0, n, shards + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
        if bounds[i] < bounds[i + 1]
    ]


def _run_range(
    artifact_path: str, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Worker entry point: one source range against the mmap artifact."""
    engine = PathEngine(load_artifact(artifact_path))
    return engine.counts_range(lo, hi), engine.destination_counts_range(lo, hi)


@dataclass(frozen=True)
class GrcAllPass:
    """The complete per-source result of one all-sources GRC pass."""

    fingerprint: str
    asns: np.ndarray
    path_counts: np.ndarray
    destination_counts: np.ndarray

    @property
    def num_ases(self) -> int:
        return int(self.asns.size)

    @property
    def total_paths(self) -> int:
        return int(self.path_counts.sum())

    def summary(self) -> dict[str, float | int]:
        """Deterministic aggregate statistics of the pass."""
        n = self.num_ases
        return {
            "num_ases": n,
            "total_paths": self.total_paths,
            "mean_paths": float(self.path_counts.mean()) if n else 0.0,
            "max_paths": int(self.path_counts.max()) if n else 0,
            "mean_destinations": (
                float(self.destination_counts.mean()) if n else 0.0
            ),
            "max_destinations": (
                int(self.destination_counts.max()) if n else 0
            ),
        }

    def csv_lines(self) -> list[str]:
        """Per-source table as CSV lines (without newlines)."""
        lines = ["asn,paths,destinations"]
        lines.extend(
            f"{int(a)},{int(p)},{int(d)}"
            for a, p, d in zip(self.asns, self.path_counts, self.destination_counts)
        )
        return lines

    def write_csv(self, path: str | Path) -> None:
        """Write the per-source table to a CSV file."""
        Path(path).write_text("\n".join(self.csv_lines()) + "\n", encoding="utf-8")


def run_grc_all(
    compiled: CompiledTopology,
    *,
    jobs: int = 1,
    shards: int | None = None,
    artifact_path: str | Path | None = None,
) -> GrcAllPass:
    """Run the all-sources GRC pass over a compiled topology.

    With ``jobs == 1`` the pass runs in-process.  With ``jobs > 1`` it
    requires ``artifact_path`` (a published
    :mod:`repro.core.artifacts` directory for the same fingerprint):
    the source ranges — ``shards`` of them, default one per job — are
    dispatched to worker processes that memory-map the artifact, and
    the results are concatenated in range order, byte-identical to the
    sequential pass.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    n = compiled.n
    if jobs == 1 or n == 0:
        engine = PathEngine(compiled)
        return GrcAllPass(
            fingerprint=compiled.source_fingerprint,
            asns=np.asarray(compiled.asn_array),
            path_counts=engine.counts_range(0, n),
            destination_counts=engine.destination_counts_range(0, n),
        )
    if artifact_path is None:
        raise ValueError("sharded grc-all (jobs > 1) requires an artifact_path")
    ranges = plan_ranges(n, shards if shards is not None else jobs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(ranges))) as executor:
        futures = [
            executor.submit(_run_range, str(artifact_path), lo, hi)
            for lo, hi in ranges
        ]
        results = [future.result() for future in futures]
    return GrcAllPass(
        fingerprint=compiled.source_fingerprint,
        asns=np.asarray(compiled.asn_array),
        path_counts=np.concatenate([counts for counts, _ in results]),
        destination_counts=np.concatenate([dests for _, dests in results]),
    )
