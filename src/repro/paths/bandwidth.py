"""Bandwidth analysis of MA paths (§VI-C, Fig. 6).

The analysis mirrors the geodistance analysis with the degree-gravity
capacity model: for every analyzed AS pair connected by at least one
length-3 GRC path, it counts the MA paths whose (bottleneck) bandwidth
exceeds the maximum, median, and minimum bandwidth of the GRC paths, and
reports the relative bandwidth increase for the pairs whose best path
improves.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import enumerate_mutuality_agreements
from repro.core import PathEngine, path_engine_for
from repro.paths.diversity import sample_ases
from repro.paths.ma_paths import MAPathIndex, build_ma_path_index
from repro.paths.metrics import EmpiricalCDF
from repro.topology.bandwidth import LinkCapacityModel
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class PairBandwidthRecord:
    """Bandwidth comparison for one (source, destination) AS pair."""

    source: int
    destination: int
    grc_min: float
    grc_median: float
    grc_max: float
    ma_bandwidths: tuple[float, ...]

    @property
    def paths_above_grc_max(self) -> int:
        """MA paths with more bandwidth than the best GRC path."""
        return sum(1 for b in self.ma_bandwidths if b > self.grc_max)

    @property
    def paths_above_grc_median(self) -> int:
        """MA paths with more bandwidth than the median GRC path."""
        return sum(1 for b in self.ma_bandwidths if b > self.grc_median)

    @property
    def paths_above_grc_min(self) -> int:
        """MA paths with more bandwidth than the worst GRC path."""
        return sum(1 for b in self.ma_bandwidths if b > self.grc_min)

    @property
    def best_ma_bandwidth(self) -> float:
        """Bandwidth of the best MA path (0 when there is none)."""
        return max(self.ma_bandwidths) if self.ma_bandwidths else 0.0

    @property
    def relative_increase(self) -> float | None:
        """Relative bandwidth increase over the best GRC path, if any."""
        best = self.best_ma_bandwidth
        if best <= self.grc_max or self.grc_max <= 0.0:
            return None
        return (best - self.grc_max) / self.grc_max


@dataclass
class BandwidthResult:
    """Full result of the Fig. 6 analysis."""

    records: list[PairBandwidthRecord] = field(default_factory=list)

    def count_cdf(self, condition: str) -> EmpiricalCDF:
        """CDF over AS pairs of the number of MA paths meeting a condition.

        ``condition`` is ``"max"``, ``"median"``, or ``"min"``
        (Fig. 6a's three series).
        """
        attribute = {
            "max": "paths_above_grc_max",
            "median": "paths_above_grc_median",
            "min": "paths_above_grc_min",
        }[condition]
        return EmpiricalCDF(tuple(getattr(r, attribute) for r in self.records))

    def increase_cdf(self) -> EmpiricalCDF:
        """CDF of the relative bandwidth increase among benefiting pairs (Fig. 6b)."""
        increases = [
            r.relative_increase for r in self.records if r.relative_increase is not None
        ]
        return EmpiricalCDF(tuple(increases))

    def fraction_of_pairs_improving(self, condition: str = "max", at_least: int = 1) -> float:
        """Fraction of AS pairs gaining ``at_least`` paths meeting the condition."""
        if not self.records:
            return 0.0
        return self.count_cdf(condition).fraction_at_least(at_least)


def path_bandwidths(
    paths: frozenset[tuple[int, int, int]] | set[tuple[int, int, int]],
    capacities: LinkCapacityModel,
) -> dict[tuple[int, int], list[float]]:
    """Group a set of length-3 paths by (source, destination) with their bandwidths."""
    grouped: dict[tuple[int, int], list[float]] = defaultdict(list)
    for path in paths:
        grouped[(path[0], path[2])].append(capacities.path_bandwidth(path))
    return grouped


def analyze_bandwidth(
    graph: ASGraph,
    capacities: LinkCapacityModel,
    *,
    agreements: list[Agreement] | None = None,
    index: MAPathIndex | None = None,
    sample_size: int = 100,
    seed: int = 0,
    engine: PathEngine | None = None,
) -> BandwidthResult:
    """Run the Fig. 6 analysis over a sample of source ASes.

    GRC paths come from the compiled path engine (``engine`` defaults to
    the graph's shared one).
    """
    if index is None:
        if agreements is None:
            agreements = list(enumerate_mutuality_agreements(graph))
        index = build_ma_path_index(agreements)
    if engine is None:
        engine = path_engine_for(graph)
    result = BandwidthResult()
    for source in sample_ases(graph, sample_size, seed=seed):
        grc_paths = engine.paths(source)
        if not grc_paths:
            continue
        grc_by_pair = path_bandwidths(grc_paths, capacities)
        ma_paths = index.all_paths(source) - grc_paths
        ma_by_pair = path_bandwidths(ma_paths, capacities)
        for (src, dst), grc_values in grc_by_pair.items():
            values = np.array(grc_values)
            result.records.append(
                PairBandwidthRecord(
                    source=src,
                    destination=dst,
                    grc_min=float(np.min(values)),
                    grc_median=float(np.median(values)),
                    grc_max=float(np.max(values)),
                    ma_bandwidths=tuple(ma_by_pair.get((src, dst), ())),
                )
            )
    return result
