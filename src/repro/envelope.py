"""Schema-versioned JSON envelopes for structured results.

Every result type of the public API serializes to a *JSON envelope*: a
plain dict whose first two keys identify the payload —

```json
{"schema_version": 1, "kind": "simulate_result", ...payload...}
```

- ``schema_version`` is the single integer version of the whole envelope
  family; it is bumped when any envelope changes incompatibly, and
  :func:`expect_envelope` rejects mismatches up front so consumers fail
  with a clear error instead of a ``KeyError`` deep in a payload.
- ``kind`` names the result type (``topology_result``,
  ``experiments_result``, …) so a reader can dispatch without guessing
  from the payload shape.

The helpers live in this leaf module so every layer (experiments,
simulation, sweep, api) shares one implementation without import
cycles.  ``python -m repro.api.validate`` checks envelope files against
the same contract in CI.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import EnvelopeError

__all__ = ["SCHEMA_VERSION", "envelope", "expect_envelope", "require_keys"]

#: The current envelope schema version.  Bump on incompatible changes.
SCHEMA_VERSION = 1


def envelope(kind: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Wrap a payload mapping in a schema-versioned envelope."""
    if not kind:
        raise ValueError("envelope kind must be a non-empty string")
    record: dict[str, Any] = {"schema_version": SCHEMA_VERSION, "kind": kind}
    for key, value in payload.items():
        if key in ("schema_version", "kind"):
            raise ValueError(f"payload must not shadow the envelope key {key!r}")
        record[key] = value
    return record


def expect_envelope(data: Mapping[str, Any], kind: str) -> dict[str, Any]:
    """Check the envelope header and return the payload as a dict.

    Raises :class:`~repro.errors.EnvelopeError` when ``data`` is not a
    mapping, carries the wrong ``kind``, or was produced under a
    different ``schema_version``.
    """
    if not isinstance(data, Mapping):
        raise EnvelopeError(f"envelope must be a mapping, got {type(data).__name__}")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise EnvelopeError(
            f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})"
        )
    actual = data.get("kind")
    if actual != kind:
        raise EnvelopeError(f"expected envelope kind {kind!r}, got {actual!r}")
    return {
        key: value
        for key, value in data.items()
        if key not in ("schema_version", "kind")
    }


def require_keys(payload: Mapping[str, Any], kind: str, keys: tuple[str, ...]) -> None:
    """Raise :class:`EnvelopeError` when a required payload key is missing."""
    missing = [key for key in keys if key not in payload]
    if missing:
        raise EnvelopeError(
            f"envelope kind {kind!r} is missing required key(s): {', '.join(missing)}"
        )
