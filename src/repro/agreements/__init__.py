"""Interconnection agreements (§III-B): the paper's core contribution.

Classic peering agreements, the novel mutuality-based agreements enabled
by path-aware networks, traffic scenarios describing the flows an
agreement induces, agreement-utility computation, and the extension of
agreement paths to further agreements.
"""

from repro.agreements.agreement import (
    AccessOffer,
    Agreement,
    AgreementError,
    PathSegment,
)
from repro.agreements.compliance import (
    ComplianceReport,
    SegmentCompliance,
    SegmentUsage,
    check_compliance,
    overage_charge,
    realized_scenario,
)
from repro.agreements.extension import (
    ExtensionAgreement,
    SegmentOffer,
    figure1_extension_example,
)
from repro.agreements.mutuality import (
    agreements_involving,
    enumerate_mutuality_agreements,
    figure1_mutuality_agreement,
    mutuality_agreement,
)
from repro.agreements.peering import classic_peering_agreement, is_classic_peering
from repro.agreements.scenario import AgreementScenario, SegmentTraffic
from repro.agreements.utility import (
    UtilityBreakdown,
    agreement_utility,
    flows_with_agreement,
    is_mutually_beneficial,
    joint_surplus,
    joint_utilities,
    utility_breakdown,
)

__all__ = [
    "AccessOffer",
    "Agreement",
    "AgreementError",
    "PathSegment",
    "AgreementScenario",
    "SegmentTraffic",
    "classic_peering_agreement",
    "is_classic_peering",
    "mutuality_agreement",
    "enumerate_mutuality_agreements",
    "figure1_mutuality_agreement",
    "agreements_involving",
    "SegmentOffer",
    "ExtensionAgreement",
    "figure1_extension_example",
    "UtilityBreakdown",
    "flows_with_agreement",
    "utility_breakdown",
    "agreement_utility",
    "joint_utilities",
    "joint_surplus",
    "is_mutually_beneficial",
    "SegmentUsage",
    "SegmentCompliance",
    "ComplianceReport",
    "check_compliance",
    "realized_scenario",
    "overage_charge",
]
