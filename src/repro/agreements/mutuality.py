"""Mutuality-based agreements (MAs) — the paper's novel agreement type.

A mutuality-based agreement lets two peering ASes exchange access to
neighbors that the Gao–Rexford conditions would keep off limits: each
party grants the other access to (a subset of) its providers and peers,
in exchange for the symmetric favour.  The resulting path segments
violate the GRC (a peer's traffic is forwarded towards a provider or
another peer) but are safe in a path-aware network (§II) and can be made
economically attractive through the qualification methods of §IV.

The enumeration rule of §VI is implemented by
:func:`enumerate_mutuality_agreements`: for every pair of peers ``(A, B)``
generate the MA in which ``A`` gives ``B`` access to all of ``A``'s
providers and peers that are not customers of ``B``, and vice versa.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.agreements.agreement import AccessOffer, Agreement, AgreementError
from repro.core import CompiledTopology, compile_topology
from repro.topology.fixtures import AS_A, AS_B, AS_D, AS_E, AS_F
from repro.topology.graph import ASGraph


def mutuality_agreement(
    graph: ASGraph,
    left: int,
    right: int,
    *,
    include_peers: bool = True,
    include_providers: bool = True,
    compiled: CompiledTopology | None = None,
) -> Agreement | None:
    """Build the maximal mutuality-based agreement between two peers.

    ``left`` offers ``right`` access to all of its providers and peers
    that are not already customers of ``right`` (reaching them through
    ``right``'s own customer links would be pointless), and vice versa.
    Returns ``None`` when neither side has anything to offer.

    Membership tests run against the compiled topology (``compiled``
    defaults to the graph's cached compile): its cached frozenset views
    avoid re-allocating the beneficiary's customer set for every
    candidate pair of a full enumeration.  The *iterated* neighbor sets
    deliberately stay the graph's own frozensets — downstream tie-breaks
    (Top-n agreement ranking) follow segment insertion order, so the
    offer sets must be built in the exact same order as before the
    compiled core existed to keep seeded experiment output
    byte-identical.
    """
    topo = compiled if compiled is not None else compile_topology(graph)
    if left not in topo or right not in topo:
        raise AgreementError("both parties must exist in the topology")
    if right not in topo.peers(left):
        raise AgreementError(
            f"mutuality-based agreements are concluded between peers; "
            f"ASes {left} and {right} are not peers"
        )

    def build_offer(owner: int, beneficiary: int) -> AccessOffer:
        # The compiled customer set is only probed for membership, never
        # iterated, so the cached view is safe order-wise.
        excluded = topo.customers(beneficiary) | {owner, beneficiary}
        providers = graph.providers(owner) - excluded if include_providers else frozenset()
        peers = graph.peers(owner) - excluded if include_peers else frozenset()
        return AccessOffer.of(providers=providers, peers=peers)

    offer_left = build_offer(left, right)
    offer_right = build_offer(right, left)
    if offer_left.is_empty() and offer_right.is_empty():
        return None
    return Agreement(party_x=left, party_y=right, offer_x=offer_left, offer_y=offer_right)


def enumerate_mutuality_agreements(
    graph: ASGraph,
    *,
    include_peers: bool = True,
    include_providers: bool = True,
) -> Iterator[Agreement]:
    """Yield the maximal MA for every peering link of the topology (§VI).

    One compiled view is shared across all candidate pairs for the
    membership-heavy offer construction.  The candidate iteration itself
    stays on the graph's own peer sets: enumeration order feeds the
    Top-n tie-breaks downstream, and the graph frozensets are the order
    the seeded experiment outputs were recorded with.
    """
    topo = compile_topology(graph)
    seen: set[frozenset[int]] = set()
    for asn in graph:
        for peer in graph.peers(asn):
            key = frozenset((asn, peer))
            if key in seen:
                continue
            seen.add(key)
            agreement = mutuality_agreement(
                graph,
                asn,
                peer,
                include_peers=include_peers,
                include_providers=include_providers,
                compiled=topo,
            )
            if agreement is not None:
                yield agreement


def figure1_mutuality_agreement(graph: ASGraph | None = None) -> Agreement:
    """The worked example of §III-B2 on the Fig. 1 topology.

    ``a = [D(↑{A}); E(↑{B}, →{F})]``: D offers E access to its provider
    A, E in return offers D access to its provider B and its peer F.
    """
    agreement = Agreement(
        party_x=AS_D,
        party_y=AS_E,
        offer_x=AccessOffer.of(providers={AS_A}),
        offer_y=AccessOffer.of(providers={AS_B}, peers={AS_F}),
    )
    if graph is not None:
        agreement.validate_against(graph)
    return agreement


def agreements_involving(
    agreements: list[Agreement], asn: int
) -> list[Agreement]:
    """Filter a list of agreements to those with the given AS as a party."""
    return [a for a in agreements if asn in a.parties]
