"""Traffic scenarios for agreement evaluation (§III-B2, Eq. 7).

Whether an agreement is worth concluding depends on how traffic changes
once it is in force.  The paper distinguishes, per new path segment,

- *rerouted* existing traffic ``f↕`` — traffic the beneficiary already
  exchanged with the target but previously forwarded through one of its
  providers (or a peer) and now sends over the agreement partner, and
- *newly attracted* customer traffic ``Δf`` — additional traffic from
  the beneficiary's customers (including its end-hosts) drawn in by the
  more attractive new path.

A :class:`SegmentTraffic` captures both for a single segment; an
:class:`AgreementScenario` bundles the segments of an agreement together
with the baseline traffic distributions of the two parties.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

from repro.agreements.agreement import Agreement, AgreementError, PathSegment
from repro.economics.traffic import FlowVector


@dataclass(frozen=True)
class SegmentTraffic:
    """Expected traffic on one new path segment of an agreement.

    Parameters
    ----------
    segment:
        The new path segment ``beneficiary – partner – target``.
    rerouted:
        Existing traffic the beneficiary shifts onto the segment, keyed
        by the neighbor it previously used for that traffic (a provider
        AS number, or ``None`` when the previous path went over a peer
        and therefore saved no transit charge).
    attracted:
        Newly attracted customer traffic, keyed by the beneficiary's
        customer that originates it (an AS number or
        :data:`repro.economics.traffic.ENDHOSTS`).
    attracted_limits:
        Optional per-customer ceilings ``Δf_max`` on attracted traffic,
        used by the flow-volume optimization (constraint III).
    """

    segment: PathSegment
    rerouted: Mapping[int | None, float] = field(default_factory=dict)
    attracted: Mapping[Hashable, float] = field(default_factory=dict)
    attracted_limits: Mapping[Hashable, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, volumes in (("rerouted", self.rerouted), ("attracted", self.attracted)):
            for key, volume in volumes.items():
                if volume < 0.0:
                    raise ValueError(
                        f"{label} volume for {key!r} must be non-negative, got {volume}"
                    )
        for key, limit in self.attracted_limits.items():
            if limit < 0.0:
                raise ValueError(f"attracted limit for {key!r} must be non-negative")
        object.__setattr__(self, "rerouted", dict(self.rerouted))
        object.__setattr__(self, "attracted", dict(self.attracted))
        object.__setattr__(self, "attracted_limits", dict(self.attracted_limits))

    @property
    def rerouted_volume(self) -> float:
        """Total rerouted volume ``f↕`` on the segment."""
        return sum(self.rerouted.values())

    @property
    def attracted_volume(self) -> float:
        """Total newly attracted volume ``Δf`` on the segment."""
        return sum(self.attracted.values())

    @property
    def total_volume(self) -> float:
        """Total volume ``f^(a)`` on the segment."""
        return self.rerouted_volume + self.attracted_volume

    def attracted_limit(self, customer: Hashable) -> float:
        """Demand ceiling ``Δf_max`` for a customer (default: its attracted volume)."""
        if customer in self.attracted_limits:
            return float(self.attracted_limits[customer])
        return float(self.attracted.get(customer, 0.0))

    def scaled(
        self,
        *,
        rerouted_factor: float = 1.0,
        attracted_factor: float = 1.0,
    ) -> "SegmentTraffic":
        """Return a copy with rerouted/attracted volumes scaled.

        Used by the flow-volume optimization to explore different volume
        allowances without rebuilding the scenario.
        """
        if rerouted_factor < 0.0 or attracted_factor < 0.0:
            raise ValueError("scaling factors must be non-negative")
        return SegmentTraffic(
            segment=self.segment,
            rerouted={k: v * rerouted_factor for k, v in self.rerouted.items()},
            attracted={k: v * attracted_factor for k, v in self.attracted.items()},
            attracted_limits=dict(self.attracted_limits),
        )


@dataclass
class AgreementScenario:
    """An agreement plus the traffic changes it is expected to induce."""

    agreement: Agreement
    segments: list[SegmentTraffic] = field(default_factory=list)
    baseline: dict[int, FlowVector] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid_segments = {s.path for s in self.agreement.all_segments()}
        for traffic in self.segments:
            if traffic.segment.path not in valid_segments:
                raise AgreementError(
                    f"segment {traffic.segment.path} is not created by agreement "
                    f"{self.agreement}"
                )
        for party in self.agreement.parties:
            self.baseline.setdefault(party, FlowVector())
        self._check_rerouted_against_baseline()

    def _check_rerouted_against_baseline(self) -> None:
        """Rerouted traffic must exist in the baseline it is rerouted from.

        For every party and every previously used neighbor, the total
        volume declared as rerouted over the agreement partner cannot
        exceed the baseline flow the party exchanges with that neighbor —
        otherwise the scenario claims savings on traffic that does not
        exist.
        """
        for party in self.agreement.parties:
            rerouted_per_neighbor: dict[int, float] = {}
            for traffic in self.segments_used_by(party):
                for neighbor, volume in traffic.rerouted.items():
                    if neighbor is None or volume <= 0.0:
                        continue
                    rerouted_per_neighbor[neighbor] = (
                        rerouted_per_neighbor.get(neighbor, 0.0) + volume
                    )
            baseline = self.baseline[party]
            for neighbor, volume in rerouted_per_neighbor.items():
                available = baseline.get(neighbor)
                if volume > available + 1e-9:
                    raise AgreementError(
                        f"party {party} reroutes {volume:.3f} units away from "
                        f"neighbor {neighbor} but its baseline only carries "
                        f"{available:.3f} units on that link"
                    )

    def baseline_flows(self, party: int) -> FlowVector:
        """Baseline traffic distribution ``f_X`` of a party."""
        if party not in self.agreement.parties:
            raise AgreementError(f"AS {party} is not a party of this agreement")
        return self.baseline[party]

    def segments_used_by(self, party: int) -> tuple[SegmentTraffic, ...]:
        """Segments on which the given party is the beneficiary."""
        return tuple(s for s in self.segments if s.segment.beneficiary == party)

    def segments_carried_by(self, party: int) -> tuple[SegmentTraffic, ...]:
        """Segments on which the given party is the forwarding partner."""
        return tuple(s for s in self.segments if s.segment.partner == party)

    def segment_traffic(self, path: tuple[int, int, int]) -> SegmentTraffic:
        """Traffic description of a specific segment path."""
        for traffic in self.segments:
            if traffic.segment.path == path:
                return traffic
        raise KeyError(f"no traffic defined for segment {path}")

    def with_segments(self, segments: list[SegmentTraffic]) -> "AgreementScenario":
        """Return a copy of the scenario with a different segment list."""
        return AgreementScenario(
            agreement=self.agreement,
            segments=list(segments),
            baseline={party: flows.copy() for party, flows in self.baseline.items()},
        )
