"""Agreement-utility computation (§III-B, Eqs. 3–7).

The utility of an agreement ``a`` to a party ``X`` is the change in its
profit caused by the agreement-induced change of its traffic
distribution:

``u_X(a) = U_X(f^(a)_X) − U_X(f_X) = Δr_X − Δc_X``                (Eq. 3)

This module turns an :class:`~repro.agreements.scenario.AgreementScenario`
into post-agreement flow vectors (Eq. 7c) and evaluates Δr, Δc, and the
agreement utility against each party's
:class:`~repro.economics.business.ASBusiness` model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agreements.agreement import AgreementError
from repro.agreements.scenario import AgreementScenario
from repro.economics.business import ASBusiness
from repro.economics.traffic import FlowVector


@dataclass(frozen=True)
class UtilityBreakdown:
    """Decomposition of an agreement's utility for one party."""

    party: int
    revenue_change: float
    cost_change: float

    @property
    def utility(self) -> float:
        """Agreement utility ``u = Δr − Δc``."""
        return self.revenue_change - self.cost_change


def flows_with_agreement(scenario: AgreementScenario, party: int) -> FlowVector:
    """Post-agreement traffic distribution ``f^(a)_X`` of a party (Eq. 7c).

    Three effects are applied on top of the baseline:

    1. Segments the party *uses* (it is the beneficiary): the segment's
       total volume now crosses the link to the agreement partner;
       rerouted volume leaves the previously used provider/peer link;
       newly attracted volume additionally enters through the customer
       that originates it.
    2. Segments the party *carries* (it is the forwarding partner): the
       segment's total volume crosses both the link to the beneficiary
       and the link to the target.
    3. Everything else stays at the baseline.
    """
    agreement = scenario.agreement
    if party not in agreement.parties:
        raise AgreementError(f"AS {party} is not a party of agreement {agreement}")
    partner = agreement.counterparty(party)
    flows = scenario.baseline_flows(party).copy()

    for traffic in scenario.segments_used_by(party):
        flows.add(partner, traffic.total_volume)
        for previous_neighbor, volume in traffic.rerouted.items():
            if previous_neighbor is not None and volume > 0.0:
                flows.add(previous_neighbor, -volume)
        for customer, volume in traffic.attracted.items():
            if volume > 0.0:
                flows.add(customer, volume)

    for traffic in scenario.segments_carried_by(party):
        flows.add(traffic.segment.beneficiary, traffic.total_volume)
        flows.add(traffic.segment.target, traffic.total_volume)

    return flows


def utility_breakdown(
    scenario: AgreementScenario,
    party: int,
    business: ASBusiness,
) -> UtilityBreakdown:
    """Δr, Δc, and utility of the agreement for one party (Eqs. 3, 7a, 7b)."""
    if business.asn != party:
        raise AgreementError(
            f"business model belongs to AS {business.asn}, not to party {party}"
        )
    before = scenario.baseline_flows(party)
    after = flows_with_agreement(scenario, party)
    revenue_change = business.revenue(after) - business.revenue(before)
    cost_change = business.cost(after) - business.cost(before)
    return UtilityBreakdown(
        party=party, revenue_change=revenue_change, cost_change=cost_change
    )


def agreement_utility(
    scenario: AgreementScenario,
    party: int,
    business: ASBusiness,
) -> float:
    """Agreement utility ``u_X(a)`` of one party."""
    return utility_breakdown(scenario, party, business).utility


def joint_utilities(
    scenario: AgreementScenario,
    businesses: dict[int, ASBusiness],
) -> dict[int, float]:
    """Agreement utility of both parties, keyed by AS number."""
    utilities = {}
    for party in scenario.agreement.parties:
        if party not in businesses:
            raise AgreementError(f"no business model for party {party}")
        utilities[party] = agreement_utility(scenario, party, businesses[party])
    return utilities


def is_mutually_beneficial(
    scenario: AgreementScenario,
    businesses: dict[int, ASBusiness],
) -> bool:
    """Whether both parties obtain non-negative utility (conclusion condition)."""
    return all(value >= 0.0 for value in joint_utilities(scenario, businesses).values())


def joint_surplus(
    scenario: AgreementScenario,
    businesses: dict[int, ASBusiness],
) -> float:
    """Total surplus ``u_X(a) + u_Y(a)``.

    A cash-compensation agreement can be concluded if and only if this
    surplus is non-negative (§IV-B).
    """
    return sum(joint_utilities(scenario, businesses).values())
