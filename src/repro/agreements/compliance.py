"""Monitoring of flow-volume agreement conditions (§III / §IV-A).

The paper envisages that mutuality-based agreements "contain conditions
that must be respected in order to preserve the positive value of the
agreement for both parties".  For flow-volume agreements those conditions
are the negotiated per-segment volume targets; their main selling point
over cash compensation is *predictability* — the parties can enforce the
limits.  This module provides that enforcement layer:

- :class:`SegmentUsage` — realized traffic on one agreement segment over
  a billing period,
- :class:`ComplianceReport` — per-segment comparison of realized volumes
  against the negotiated targets, with overage volumes and an overall
  verdict,
- :func:`check_compliance` — build the report from realized usage,
- :func:`realized_scenario` — re-evaluate the agreement's utilities with
  the *realized* traffic instead of the negotiated estimate, which is how
  a party detects that an agreement has stopped paying off and should be
  renegotiated.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.agreements.scenario import AgreementScenario, SegmentTraffic
from repro.optimization.flow_volume import FlowVolumeResult


@dataclass(frozen=True)
class SegmentUsage:
    """Realized traffic on one agreement segment during a billing period."""

    path: tuple[int, int, int]
    rerouted_volume: float
    attracted_volume: float

    def __post_init__(self) -> None:
        if self.rerouted_volume < 0.0 or self.attracted_volume < 0.0:
            raise ValueError("realized volumes must be non-negative")

    @property
    def total_volume(self) -> float:
        """Total realized volume on the segment."""
        return self.rerouted_volume + self.attracted_volume


@dataclass(frozen=True)
class SegmentCompliance:
    """Compliance of one segment against its negotiated target."""

    path: tuple[int, int, int]
    allowance: float
    realized: float

    @property
    def overage(self) -> float:
        """Volume exceeding the allowance (zero when compliant)."""
        return max(0.0, self.realized - self.allowance)

    @property
    def utilization(self) -> float:
        """Realized volume as a fraction of the allowance (∞ if allowance is 0)."""
        if self.allowance <= 0.0:
            return float("inf") if self.realized > 0.0 else 0.0
        return self.realized / self.allowance

    @property
    def compliant(self) -> bool:
        """Whether the realized volume stays within the allowance."""
        return self.overage <= 1e-9


@dataclass
class ComplianceReport:
    """Per-segment compliance of an agreement for one billing period."""

    segments: list[SegmentCompliance] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        """Whether every segment respected its allowance."""
        return all(segment.compliant for segment in self.segments)

    @property
    def total_overage(self) -> float:
        """Total volume sent in excess of the negotiated allowances."""
        return sum(segment.overage for segment in self.segments)

    def violations(self) -> tuple[SegmentCompliance, ...]:
        """Segments whose allowance was exceeded."""
        return tuple(segment for segment in self.segments if not segment.compliant)

    def segment(self, path: tuple[int, int, int]) -> SegmentCompliance:
        """Compliance record of a specific segment."""
        for segment in self.segments:
            if segment.path == path:
                return segment
        raise KeyError(f"no compliance record for segment {path}")


def check_compliance(
    result: FlowVolumeResult,
    usage: Mapping[tuple[int, int, int], SegmentUsage] | list[SegmentUsage],
) -> ComplianceReport:
    """Compare realized segment usage against negotiated flow-volume targets.

    Segments without any realized usage are treated as carrying zero
    traffic (trivially compliant); realized usage on segments that are
    not part of the agreement is rejected, since traffic on such paths
    is simply not authorized.
    """
    if isinstance(usage, list):
        usage_by_path = {entry.path: entry for entry in usage}
    else:
        usage_by_path = dict(usage)

    known_paths = {target.path for target in result.targets}
    unknown = set(usage_by_path) - known_paths
    if unknown:
        raise ValueError(
            f"realized usage reported for segments outside the agreement: {sorted(unknown)}"
        )

    report = ComplianceReport()
    for target in result.targets:
        realized = usage_by_path.get(target.path)
        realized_volume = realized.total_volume if realized is not None else 0.0
        report.segments.append(
            SegmentCompliance(
                path=target.path,
                allowance=target.total_allowance,
                realized=realized_volume,
            )
        )
    return report


def realized_scenario(
    scenario: AgreementScenario,
    usage: Mapping[tuple[int, int, int], SegmentUsage] | list[SegmentUsage],
) -> AgreementScenario:
    """Rebuild the agreement scenario with realized instead of estimated traffic.

    The rerouted / attracted split of each segment is preserved from the
    realized usage; per-neighbor attributions are scaled proportionally
    from the original estimates (the billing systems of the two parties
    know the aggregate volumes per segment, not the original forecast
    breakdown).  Re-evaluating the agreement utilities on the returned
    scenario shows each party what the agreement is *actually* worth.
    """
    if isinstance(usage, list):
        usage_by_path = {entry.path: entry for entry in usage}
    else:
        usage_by_path = dict(usage)

    realized_segments: list[SegmentTraffic] = []
    for traffic in scenario.segments:
        realized = usage_by_path.get(traffic.segment.path)
        if realized is None:
            realized_segments.append(
                SegmentTraffic(
                    segment=traffic.segment,
                    rerouted={},
                    attracted={},
                    attracted_limits=dict(traffic.attracted_limits),
                )
            )
            continue
        rerouted_total = traffic.rerouted_volume
        attracted_total = traffic.attracted_volume
        if rerouted_total > 0.0:
            rerouted = {
                neighbor: volume / rerouted_total * realized.rerouted_volume
                for neighbor, volume in traffic.rerouted.items()
            }
        else:
            rerouted = {None: realized.rerouted_volume} if realized.rerouted_volume else {}
        if attracted_total > 0.0:
            attracted = {
                customer: volume / attracted_total * realized.attracted_volume
                for customer, volume in traffic.attracted.items()
            }
        else:
            from repro.economics.traffic import ENDHOSTS

            attracted = (
                {ENDHOSTS: realized.attracted_volume} if realized.attracted_volume else {}
            )
        realized_segments.append(
            SegmentTraffic(
                segment=traffic.segment,
                rerouted=rerouted,
                attracted=attracted,
                attracted_limits=dict(traffic.attracted_limits),
            )
        )
    return scenario.with_segments(realized_segments)


def overage_charge(
    report: ComplianceReport,
    *,
    unit_price: float,
) -> float:
    """Money owed for exceeding the negotiated allowances.

    A simple linear overage tariff: agreements in practice either police
    excess traffic (drop it) or bill it at a penalty rate; this helper
    supports the latter so that compliance monitoring can feed directly
    into settlement.
    """
    if unit_price < 0.0:
        raise ValueError("the overage unit price must be non-negative")
    return unit_price * report.total_overage
