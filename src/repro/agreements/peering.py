"""Classic peering agreements (§III-B1).

In a classic peering agreement two ASes provide each other access to all
of their respective customers: ``a_p = [D(↓γ(D)); E(↓γ(E))]``.  Such
agreements conform to the Gao–Rexford conditions and exist in today's
Internet; the module exists both as a baseline against the novel
mutuality-based agreements and because the paper's worked example
(Fig. 1, ASes D and E) is a peering agreement.
"""

from __future__ import annotations

from repro.agreements.agreement import AccessOffer, Agreement, AgreementError
from repro.topology.graph import ASGraph


def classic_peering_agreement(
    graph: ASGraph,
    left: int,
    right: int,
    *,
    require_peering_link: bool = True,
) -> Agreement:
    """Build the classic peering agreement between two ASes.

    Each party offers access to all of its direct customers.  By default
    the two ASes must already be connected by a peering link (the
    agreement governs how that link is used); pass
    ``require_peering_link=False`` to model the *negotiation* of a new
    peering link between currently unconnected ASes.
    """
    if left not in graph or right not in graph:
        raise AgreementError("both parties must exist in the topology")
    if require_peering_link:
        if not graph.has_link(left, right):
            raise AgreementError(f"ASes {left} and {right} are not interconnected")
        if right not in graph.peers(left):
            raise AgreementError(
                f"ASes {left} and {right} are not peers; a classic peering agreement "
                "governs a peering link"
            )
    offer_left = AccessOffer.of(customers=graph.customers(left) - {right})
    offer_right = AccessOffer.of(customers=graph.customers(right) - {left})
    return Agreement(
        party_x=left, party_y=right, offer_x=offer_left, offer_y=offer_right
    )


def is_classic_peering(agreement: Agreement, graph: ASGraph) -> bool:
    """Whether an agreement only exchanges access to customers.

    Such agreements are exactly the GRC-conforming ones a peering link
    enables today (both offers consist of customers only).
    """
    for party in agreement.parties:
        offer = agreement.offer_by(party)
        if offer.providers or offer.peers:
            return False
        if not offer.customers <= graph.customers(party):
            return False
    return True
