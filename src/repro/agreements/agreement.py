"""Interconnection agreements between two ASes (§III-B, Eq. 2).

An agreement ``a`` between ASes ``X`` and ``Y`` is written in the paper as

``a = [X(↑π'_X, →ε'_X, ↓γ'_X); Y(↑π'_Y, →ε'_Y, ↓γ'_Y)]``

where ``π'_X ⊆ π(X)``, ``ε'_X ⊆ ε(X)``, ``γ'_X ⊆ γ(X)`` are the
providers, peers, and customers of ``X`` to which ``Y`` gains access
through the agreement (and analogously for ``Y``).  The shorthand
``a_X = π'_X ∪ ε'_X ∪ γ'_X`` collects everything ``X`` offers.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.topology.graph import ASGraph
from repro.topology.relationships import Role


class AgreementError(Exception):
    """Raised when an agreement is malformed or inconsistent with a topology."""


@dataclass(frozen=True)
class AccessOffer:
    """The neighbors one party makes reachable for the other party.

    ``providers``, ``peers``, ``customers`` are the subsets ``π'``,
    ``ε'``, ``γ'`` of the offering AS's neighbor sets.
    """

    providers: frozenset[int] = field(default_factory=frozenset)
    peers: frozenset[int] = field(default_factory=frozenset)
    customers: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        overlap = (
            (self.providers & self.peers)
            | (self.providers & self.customers)
            | (self.peers & self.customers)
        )
        if overlap:
            raise AgreementError(
                f"ASes offered in more than one role: {sorted(overlap)}"
            )

    @classmethod
    def of(
        cls,
        providers: Iterable[int] = (),
        peers: Iterable[int] = (),
        customers: Iterable[int] = (),
    ) -> "AccessOffer":
        """Convenience constructor accepting any iterables."""
        return cls(
            providers=frozenset(providers),
            peers=frozenset(peers),
            customers=frozenset(customers),
        )

    @property
    def all_targets(self) -> frozenset[int]:
        """Everything offered: ``a_X = π' ∪ ε' ∪ γ'``."""
        return self.providers | self.peers | self.customers

    def role_of(self, target: int) -> Role:
        """Role the target plays for the *offering* AS."""
        if target in self.providers:
            return Role.PROVIDER
        if target in self.peers:
            return Role.PEER
        if target in self.customers:
            return Role.CUSTOMER
        raise AgreementError(f"AS {target} is not part of this offer")

    def is_empty(self) -> bool:
        """Whether nothing is offered."""
        return not self.all_targets

    def notation(self) -> str:
        """Paper notation fragment, e.g. ``↑{1},→{3}``."""
        parts = []
        if self.providers:
            parts.append("↑{" + ",".join(str(p) for p in sorted(self.providers)) + "}")
        if self.peers:
            parts.append("→{" + ",".join(str(p) for p in sorted(self.peers)) + "}")
        if self.customers:
            parts.append("↓{" + ",".join(str(p) for p in sorted(self.customers)) + "}")
        return ",".join(parts) if parts else "∅"


@dataclass(frozen=True)
class PathSegment:
    """A new length-3 path segment created by an agreement.

    ``beneficiary`` is the AS that gains the segment, ``partner`` the AS
    whose neighbor ``target`` becomes reachable through it.  The AS-level
    path is ``(beneficiary, partner, target)``.
    """

    beneficiary: int
    partner: int
    target: int

    def __post_init__(self) -> None:
        if len({self.beneficiary, self.partner, self.target}) != 3:
            raise AgreementError(
                f"path segment must involve three distinct ASes, got "
                f"({self.beneficiary}, {self.partner}, {self.target})"
            )

    @property
    def path(self) -> tuple[int, int, int]:
        """AS-level path of the segment, starting at the beneficiary."""
        return (self.beneficiary, self.partner, self.target)

    @property
    def reverse_path(self) -> tuple[int, int, int]:
        """The same segment seen from the target (the indirect gainer)."""
        return (self.target, self.partner, self.beneficiary)


@dataclass(frozen=True)
class Agreement:
    """A bilateral interconnection agreement (Eq. 2).

    ``offer_x`` is what ``party_x`` offers to ``party_y`` and vice versa.
    """

    party_x: int
    party_y: int
    offer_x: AccessOffer = field(default_factory=AccessOffer)
    offer_y: AccessOffer = field(default_factory=AccessOffer)

    def __post_init__(self) -> None:
        if self.party_x == self.party_y:
            raise AgreementError("an agreement needs two distinct parties")
        for party, offer in ((self.party_x, self.offer_x), (self.party_y, self.offer_y)):
            if party in offer.all_targets:
                raise AgreementError(f"AS {party} cannot offer access to itself")
        if self.party_y in self.offer_x.all_targets or self.party_x in self.offer_y.all_targets:
            raise AgreementError("parties cannot offer access to each other as a target")

    @property
    def parties(self) -> tuple[int, int]:
        """Both parties of the agreement."""
        return (self.party_x, self.party_y)

    def counterparty(self, party: int) -> int:
        """The other party of the agreement."""
        if party == self.party_x:
            return self.party_y
        if party == self.party_y:
            return self.party_x
        raise AgreementError(f"AS {party} is not a party of this agreement")

    def offer_by(self, party: int) -> AccessOffer:
        """The access offer made *by* a party."""
        if party == self.party_x:
            return self.offer_x
        if party == self.party_y:
            return self.offer_y
        raise AgreementError(f"AS {party} is not a party of this agreement")

    def offer_to(self, party: int) -> AccessOffer:
        """The access offer made *to* a party (by the counterparty)."""
        return self.offer_by(self.counterparty(party))

    def segments_for(self, party: int) -> tuple[PathSegment, ...]:
        """New path segments the given party gains from the agreement.

        Each segment runs ``party – counterparty – target`` where
        ``target`` is offered by the counterparty.
        """
        partner = self.counterparty(party)
        offer = self.offer_by(partner)
        segments = []
        for target in sorted(offer.all_targets):
            if target == party:
                continue
            segments.append(PathSegment(beneficiary=party, partner=partner, target=target))
        return tuple(segments)

    def all_segments(self) -> tuple[PathSegment, ...]:
        """All new path segments created by the agreement, both directions."""
        return self.segments_for(self.party_x) + self.segments_for(self.party_y)

    def is_grc_conforming(self, graph: ASGraph) -> bool:
        """Whether every created segment would be allowed under the GRC.

        A segment ``B–P–T`` is GRC-conforming (valley-free and
        exportable) only if the beneficiary ``B`` is a customer of the
        partner ``P`` or the target ``T`` is a customer of ``P``.  Classic
        peering agreements conform; mutuality-based agreements generally
        do not — that is exactly what makes them *novel*.
        """
        for segment in self.all_segments():
            partner_customers = graph.customers(segment.partner)
            if segment.beneficiary in partner_customers:
                continue
            if segment.target in partner_customers:
                continue
            return False
        return True

    def validate_against(self, graph: ASGraph) -> None:
        """Check the agreement is consistent with a topology.

        The parties must be neighbors (the new segments traverse the link
        between them), and every offered AS must actually hold the
        claimed role for the offering party.
        """
        if self.party_x not in graph or self.party_y not in graph:
            raise AgreementError("both parties must exist in the topology")
        if not graph.has_link(self.party_x, self.party_y):
            raise AgreementError(
                f"parties {self.party_x} and {self.party_y} are not interconnected"
            )
        for party, offer in ((self.party_x, self.offer_x), (self.party_y, self.offer_y)):
            wrong_providers = offer.providers - graph.providers(party)
            wrong_peers = offer.peers - graph.peers(party)
            wrong_customers = offer.customers - graph.customers(party)
            problems = []
            if wrong_providers:
                problems.append(f"not providers of {party}: {sorted(wrong_providers)}")
            if wrong_peers:
                problems.append(f"not peers of {party}: {sorted(wrong_peers)}")
            if wrong_customers:
                problems.append(f"not customers of {party}: {sorted(wrong_customers)}")
            if problems:
                raise AgreementError("; ".join(problems))

    def notation(self, names: dict[int, str] | None = None) -> str:
        """Paper notation, e.g. ``[D(↑{A});E(↑{B},→{F})]``."""
        def label(asn: int) -> str:
            return names[asn] if names and asn in names else str(asn)

        def offer_text(offer: AccessOffer) -> str:
            parts = []
            for symbol, targets in (
                ("↑", offer.providers),
                ("→", offer.peers),
                ("↓", offer.customers),
            ):
                if targets:
                    inner = ",".join(label(t) for t in sorted(targets))
                    parts.append(f"{symbol}{{{inner}}}")
            return ",".join(parts) if parts else "∅"

        return (
            f"[{label(self.party_x)}({offer_text(self.offer_x)});"
            f"{label(self.party_y)}({offer_text(self.offer_y)})]"
        )

    def __str__(self) -> str:
        return self.notation()
