"""Extension of agreement paths (§III-B3).

The path segments created by a mutuality-based agreement can themselves
become the subject of further agreements: in the paper's example, once
``a = [D(↑{A}); E(↑{B},→{F})]`` is in force, AS E gains the segment
``EDA`` and can offer that segment to its peer F in a follow-up
agreement ``a'`` (F offering something in return).  The follow-up
agreement is *dependent* on the base agreement: it can only be honoured
while the base agreement's conditions still hold.

This module models such segment offers and extension agreements and can
compute the longer paths they give rise to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agreements.agreement import Agreement, AgreementError, PathSegment


@dataclass(frozen=True)
class SegmentOffer:
    """An offer of access to an existing agreement path segment.

    ``owner`` is the AS offering the segment (it must be the beneficiary
    of that segment in the base agreement), ``segment`` the offered
    segment, ``base_agreement`` the agreement that created it.
    """

    owner: int
    segment: PathSegment
    base_agreement: Agreement

    def __post_init__(self) -> None:
        if self.segment.beneficiary != self.owner:
            raise AgreementError(
                f"AS {self.owner} cannot offer segment {self.segment.path}: it is not "
                "the beneficiary of that segment"
            )
        owned = {s.path for s in self.base_agreement.segments_for(self.owner)}
        if self.segment.path not in owned:
            raise AgreementError(
                f"segment {self.segment.path} is not created for AS {self.owner} by "
                f"agreement {self.base_agreement}"
            )


@dataclass(frozen=True)
class ExtensionAgreement:
    """A follow-up agreement granting a third AS access to agreement segments.

    ``party_x`` / ``party_y`` are the parties of the extension;
    ``segment_offers_x`` are segments offered by ``party_x`` to
    ``party_y`` (and vice versa).  Either side may instead (or
    additionally) offer plain neighbor access through ``neighbor_offer``
    fields of a normal :class:`Agreement`; for simplicity the extension
    type only carries segment offers and is meant to be combined with a
    plain agreement when needed.
    """

    party_x: int
    party_y: int
    segment_offers_x: tuple[SegmentOffer, ...] = field(default_factory=tuple)
    segment_offers_y: tuple[SegmentOffer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.party_x == self.party_y:
            raise AgreementError("an extension agreement needs two distinct parties")
        for offer in self.segment_offers_x:
            if offer.owner != self.party_x:
                raise AgreementError(
                    f"segment offer owned by AS {offer.owner} cannot be made by party "
                    f"{self.party_x}"
                )
        for offer in self.segment_offers_y:
            if offer.owner != self.party_y:
                raise AgreementError(
                    f"segment offer owned by AS {offer.owner} cannot be made by party "
                    f"{self.party_y}"
                )

    def counterparty(self, party: int) -> int:
        """The other party of the extension agreement."""
        if party == self.party_x:
            return self.party_y
        if party == self.party_y:
            return self.party_x
        raise AgreementError(f"AS {party} is not a party of this extension agreement")

    def offers_to(self, party: int) -> tuple[SegmentOffer, ...]:
        """Segment offers the given party receives."""
        if party == self.party_x:
            return self.segment_offers_y
        if party == self.party_y:
            return self.segment_offers_x
        raise AgreementError(f"AS {party} is not a party of this extension agreement")

    def extended_paths_for(self, party: int) -> tuple[tuple[int, ...], ...]:
        """New (length-4) paths the given party gains from the extension.

        Each offered segment ``O–P–T`` owned by the counterparty ``O``
        becomes the path ``party – O – P – T``.
        """
        paths = []
        for offer in self.offers_to(party):
            segment_path = offer.segment.path
            if party in segment_path:
                continue
            paths.append((party, *segment_path))
        return tuple(paths)

    def depends_on(self) -> frozenset[int]:
        """Hash-identities of the base agreements this extension depends on.

        Interdependence matters because the conditions negotiated in the
        base agreement (flow-volume targets, cash compensation) must
        still be respected once the extension adds traffic to the shared
        segments (§III-B3).
        """
        bases = set()
        for offer in self.segment_offers_x + self.segment_offers_y:
            bases.add(id(offer.base_agreement))
        return frozenset(bases)


def figure1_extension_example(base: Agreement) -> ExtensionAgreement:
    """The §III-B3 example: E offers F access to the segment EDA.

    ``base`` must be the Fig. 1 mutuality agreement
    ``[D(↑{A}); E(↑{B},→{F})]``.
    """
    from repro.topology.fixtures import AS_A, AS_D, AS_E, AS_F

    segment = PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A)
    offer = SegmentOffer(owner=AS_E, segment=segment, base_agreement=base)
    return ExtensionAgreement(
        party_x=AS_E,
        party_y=AS_F,
        segment_offers_x=(offer,),
        segment_offers_y=(),
    )
