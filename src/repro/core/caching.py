"""A small instrumented LRU mapping shared by the warm-state layers.

:class:`BoundedCache` is the one cache primitive behind every piece of
warm state that must be *reportable* and *boundable*: the
:class:`~repro.api.session.Session` caches (generated/loaded topologies,
diversity artifacts, experiment contexts) and the ``repro serve`` result
cache both wrap it.  It is deliberately tiny — an access-ordered dict
with an optional entry bound and hit/miss/eviction counters — so the
layers above can surface uniform ``{size, max_entries, hits, misses,
evictions}`` statistics without each growing its own bookkeeping.

Not thread-safe by itself; callers that share one across threads hold
their own lock (the serve result cache does, the session serializes all
access behind its workflow lock).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

__all__ = ["BoundedCache"]

_MISSING = object()


class BoundedCache:
    """An access-ordered mapping with an optional LRU bound and counters.

    ``max_entries=None`` means unbounded (the counters still work);
    ``max_entries=0`` disables storage entirely — every ``get`` is a
    miss and every ``put`` a no-op, which lets callers switch a cache
    off without branching at every call site.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    # Read-only mapping protocol, with *peek* semantics: introspection
    # (tests asserting on warm state, stats tooling) must not disturb
    # the hit/miss counters or the recency order.
    def __getitem__(self, key: Any) -> Any:
        return self._entries[key]

    def keys(self):
        return self._entries.keys()

    def items(self):
        return self._entries.items()

    def values(self):
        return self._entries.values()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoundedCache):
            return dict(self._entries) == dict(other._entries)
        if isinstance(other, dict):
            return dict(self._entries) == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def get(self, key: Any, default: Any = None) -> Any:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Look up ``key`` without touching counters or recency."""
        return self._entries.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if bounded."""
        if self.max_entries == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters keep their lifetime totals)."""
        self._entries.clear()

    def stats(self) -> dict[str, int | None]:
        """The uniform statistics payload the warm-state layers report."""
        return {
            "size": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
