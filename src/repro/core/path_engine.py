"""Batched GRC length-3 path engine over a :class:`CompiledTopology`.

The §VI analyses all consume the same primitive: the GRC-conforming
length-3 paths ``(source, transit, destination)`` of every AS — a path
is conforming exactly when the transit is willing to forward, i.e. when
``source ∈ γ(transit)`` or ``destination ∈ γ(transit)``.  The naive
reference (:func:`repro.paths.grc.iter_grc_length3_paths`) re-walks the
dict/set graph per source; this engine instead computes *all* sources in
one batched sweep over the compiled CSR arrays:

- **Counts** — the number of paths of source ``s`` decomposes per
  transit ``t ∈ N(s)``: ``|N(t)| - 1`` paths when ``s ∈ γ(t)`` (the
  transit exports everything to its customer) and ``|γ(t)|`` paths
  otherwise (only customer destinations are exported).  Summing this
  per-edge contribution with one vectorized pass gives every per-source
  count in O(links).
- **Destination sets** — the same decomposition as a boolean-matrix
  union: ``dest(s) = ⋃ N(t)`` over customer transits ``∪ ⋃ γ(t)`` over
  the rest, minus ``s`` itself.
- **Path sets** — materialized lazily per source (they are the only
  O(paths) product) and memoized.

Results are memoized per source; :meth:`PathEngine.refresh` implements
the dirty-region invalidation contract used under topology churn: only
sources whose path set can have changed are dropped, everything else is
carried over (an AS's paths depend only on its 2-hop neighborhood, so a
changed link ``a – b`` can only affect ``{a, b} ∪ N(a) ∪ N(b)``).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.compiled import CompiledTopology, compile_topology
from repro.topology.graph import ASGraph

#: Above this many ASes the dense boolean destination matrices (n²
#: bytes each) are not worth the memory; the engine falls back to a
#: per-source sweep over the CSR rows, which is still batched and far
#: cheaper than the naive per-source graph walk.
DENSE_LIMIT = 4096


class PathEngine:
    """All-sources GRC length-3 path queries with per-source memoization.

    The engine exposes the :mod:`repro.paths.grc` vocabulary on top of a
    :class:`CompiledTopology`: :meth:`paths`, :meth:`destinations`,
    :meth:`count`, and :meth:`paths_between` match the semantics of
    ``grc_length3_paths``, ``grc_length3_destinations``,
    ``count_grc_length3_paths``, and ``grc_paths_between`` exactly (the
    property tests assert set-level equality against the naive
    reference).
    """

    def __init__(self, topology: CompiledTopology) -> None:
        self._topo = topology
        self._path_memo: dict[int, frozenset[tuple[int, int, int]]] = {}
        self._dest_memo: dict[int, frozenset[int]] = {}
        self._reset_batches()

    @property
    def topology(self) -> CompiledTopology:
        """The compiled topology the engine currently answers for."""
        return self._topo

    def _reset_batches(self) -> None:
        self._counts: np.ndarray | None = None
        self._dest_counts: np.ndarray | None = None
        self._dest_matrix: np.ndarray | None = None
        self._nbr_matrix: np.ndarray | None = None
        self._cust_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Invalidation / rebuild contract
    # ------------------------------------------------------------------
    def refresh(
        self,
        topology: CompiledTopology,
        *,
        dirty_sources: set[int] | frozenset[int] | None = None,
    ) -> None:
        """Swap in a newly compiled topology.

        ``dirty_sources`` is the set of source ASNs whose results may
        have changed; their memoized entries are dropped while all other
        per-source results are carried over.  ``None`` means "unknown
        extent" and clears everything.  Callers are responsible for the
        dirty set being a superset of the truly affected sources — the
        dynamic-network layer derives it from the endpoints and
        neighborhoods of the churned links.
        """
        if dirty_sources is None:
            self._path_memo.clear()
            self._dest_memo.clear()
        else:
            for asn in dirty_sources:
                self._path_memo.pop(asn, None)
                self._dest_memo.pop(asn, None)
        self._topo = topology
        self._reset_batches()

    # ------------------------------------------------------------------
    # Batched sweeps
    # ------------------------------------------------------------------
    def _edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(source index, transit index) per directed adjacency edge."""
        topo = self._topo
        sources = np.repeat(np.arange(topo.n), np.diff(topo.nbr_indptr))
        return sources, topo.nbr_indices

    def _membership_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense boolean neighbor/customer row matrices (small-n path)."""
        if self._nbr_matrix is None:
            topo = self._topo
            n = topo.n
            nbr = np.zeros((n, n), dtype=bool)
            cust = np.zeros((n, n), dtype=bool)
            rows, cols = self._edge_arrays()
            nbr[rows, cols] = True
            cust_rows = np.repeat(np.arange(n), np.diff(topo.cust_indptr))
            cust[cust_rows, topo.cust_indices] = True
            self._nbr_matrix = nbr
            self._cust_matrix = cust
        assert self._cust_matrix is not None
        return self._nbr_matrix, self._cust_matrix

    def _compute_counts(self) -> np.ndarray:
        topo = self._topo
        n = topo.n
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        sources, transits = self._edge_arrays()
        if n <= DENSE_LIMIT:
            _, cust = self._membership_matrices()
            source_is_customer = cust[transits, sources]
        else:
            pairs = topo._customer_pairs
            source_is_customer = np.fromiter(
                (int(t) * n + int(s) in pairs for s, t in zip(sources, transits)),
                dtype=bool,
                count=len(sources),
            )
        contributions = np.where(
            source_is_customer,
            topo.degrees[transits] - 1,
            topo.customer_counts[transits],
        )
        return np.bincount(sources, weights=contributions, minlength=n).astype(np.int64)

    def _counts_array(self) -> np.ndarray:
        if self._counts is None:
            self._counts = self._compute_counts()
        return self._counts

    def _compute_destinations_dense(self) -> np.ndarray:
        topo = self._topo
        n = topo.n
        nbr, cust = self._membership_matrices()
        destinations = np.zeros((n, n), dtype=bool)
        for s in range(n):
            transits = topo.neighbors_idx(s)
            if transits.size == 0:
                continue
            customer_of = cust[transits, s]
            mask = destinations[s]
            via_customer = transits[customer_of]
            if via_customer.size:
                np.logical_or.reduce(nbr[via_customer], axis=0, out=mask)
            via_other = transits[~customer_of]
            if via_other.size:
                mask |= np.logical_or.reduce(cust[via_other], axis=0)
            mask[s] = False
        return destinations

    def _destination_matrix(self) -> np.ndarray:
        if self._dest_matrix is None:
            self._dest_matrix = self._compute_destinations_dense()
        return self._dest_matrix

    def _destination_indices(self, index: int) -> np.ndarray:
        """Destination indices of one source (dense or CSR sweep)."""
        topo = self._topo
        if topo.n <= DENSE_LIMIT:
            return np.nonzero(self._destination_matrix()[index])[0]
        rows = []
        for t in topo.neighbors_idx(index):
            t = int(t)
            if topo.is_customer_idx(t, index):
                rows.append(topo.neighbors_idx(t))
            else:
                rows.append(topo.customers_idx(t))
        if not rows:
            return np.empty(0, dtype=np.int32)
        merged = np.unique(np.concatenate(rows))
        return merged[merged != index]

    def _dest_counts_array(self) -> np.ndarray:
        if self._dest_counts is None:
            topo = self._topo
            if topo.n == 0:
                self._dest_counts = np.zeros(0, dtype=np.int64)
            elif topo.n <= DENSE_LIMIT:
                self._dest_counts = self._destination_matrix().sum(axis=1)
            else:
                self._dest_counts = np.fromiter(
                    (len(self._destination_indices(i)) for i in range(topo.n)),
                    dtype=np.int64,
                    count=topo.n,
                )
        return self._dest_counts

    # ------------------------------------------------------------------
    # Per-source queries (grc.py semantics)
    # ------------------------------------------------------------------
    def count(self, source: int) -> int:
        """Number of GRC length-3 paths starting at ``source``."""
        return int(self._counts_array()[self._topo.index_of(source)])

    def destination_count(self, source: int) -> int:
        """Number of destinations reachable from ``source``."""
        return int(self._dest_counts_array()[self._topo.index_of(source)])

    def counts_by_source(self) -> dict[int, int]:
        """``{source ASN: path count}`` for every AS, in sorted ASN order."""
        counts = self._counts_array()
        return {asn: int(counts[i]) for i, asn in enumerate(self._topo.asns)}

    def destination_counts_by_source(self) -> dict[int, int]:
        """``{source ASN: destination count}`` for every AS."""
        counts = self._dest_counts_array()
        return {asn: int(counts[i]) for i, asn in enumerate(self._topo.asns)}

    def destinations(self, source: int) -> frozenset[int]:
        """Destinations reachable from ``source`` over GRC length-3 paths."""
        memo = self._dest_memo.get(source)
        if memo is None:
            topo = self._topo
            indices = self._destination_indices(topo.index_of(source))
            memo = frozenset(int(asn) for asn in topo.asn_array[indices])
            self._dest_memo[source] = memo
        return memo

    def paths(self, source: int) -> frozenset[tuple[int, int, int]]:
        """All GRC length-3 paths starting at ``source`` (memoized)."""
        memo = self._path_memo.get(source)
        if memo is None:
            topo = self._topo
            s = topo.index_of(source)
            asn = topo.asn_array
            collected: list[tuple[int, int, int]] = []
            for t in topo.neighbors_idx(s):
                t = int(t)
                transit_asn = int(asn[t])
                if topo.is_customer_idx(t, s):
                    dests = topo.neighbors_idx(t)
                else:
                    dests = topo.customers_idx(t)
                for d in dests:
                    if d != s:
                        collected.append((source, transit_asn, int(asn[d])))
            memo = frozenset(collected)
            self._path_memo[source] = memo
        return memo

    def paths_between(
        self, source: int, destination: int
    ) -> frozenset[tuple[int, int, int]]:
        """GRC length-3 paths between a specific AS pair (O(deg(source)))."""
        topo = self._topo
        s = topo.index_of(source)
        d = topo.index_of(destination)
        if s == d:
            return frozenset()
        found = []
        asn = topo.asn_array
        for t in topo.neighbors_idx(s):
            t = int(t)
            if t == d or not topo.has_link_idx(t, d):
                continue
            if topo.is_customer_idx(t, s) or topo.is_customer_idx(t, d):
                found.append((source, int(asn[t]), destination))
        return frozenset(found)

    def is_grc_path(self, source: int, transit: int, destination: int) -> bool:
        """Whether ``(source, transit, destination)`` is a GRC length-3 path."""
        topo = self._topo
        s = topo.index_of(source)
        t = topo.index_of(transit)
        d = topo.index_of(destination)
        if len({s, t, d}) != 3:
            return False
        if not (topo.has_link_idx(s, t) and topo.has_link_idx(t, d)):
            return False
        return topo.is_customer_idx(t, s) or topo.is_customer_idx(t, d)

    # grc.py-compatible aliases ----------------------------------------
    grc_length3_paths = paths
    grc_length3_destinations = destinations
    count_grc_length3_paths = count
    grc_paths_between = paths_between


#: Per-graph engine cache, weakly keyed like the compile cache.
_ENGINE_CACHE: "weakref.WeakKeyDictionary[ASGraph, PathEngine]" = (
    weakref.WeakKeyDictionary()
)


def path_engine_for(graph: ASGraph) -> PathEngine:
    """Shared engine for a graph, recompiled transparently on mutation.

    This is what lets the :mod:`repro.paths.grc` module-level API keep
    its ``(graph, source)`` signature while every consumer shares one
    compiled topology and one memo per graph.  A mutation between calls
    triggers a full refresh (no dirty-region knowledge at this level —
    the dynamic-network layer, which does know the churned links, calls
    :meth:`PathEngine.refresh` with an explicit dirty set instead).
    """
    compiled = compile_topology(graph)
    engine = _ENGINE_CACHE.get(graph)
    if engine is None:
        engine = PathEngine(compiled)
        _ENGINE_CACHE[graph] = engine
    elif engine.topology is not compiled:
        engine.refresh(compiled)
    return engine
