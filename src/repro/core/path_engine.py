"""Batched GRC length-3 path engine over a :class:`CompiledTopology`.

The §VI analyses all consume the same primitive: the GRC-conforming
length-3 paths ``(source, transit, destination)`` of every AS — a path
is conforming exactly when the transit is willing to forward, i.e. when
``source ∈ γ(transit)`` or ``destination ∈ γ(transit)``.  The naive
reference (:func:`repro.paths.grc.iter_grc_length3_paths`) re-walks the
dict/set graph per source; this engine instead computes *all* sources in
one batched sweep over the compiled CSR arrays:

- **Counts** — the number of paths of source ``s`` decomposes per
  transit ``t ∈ N(s)``: ``|N(t)| - 1`` paths when ``s ∈ γ(t)`` (the
  transit exports everything to its customer) and ``|γ(t)|`` paths
  otherwise (only customer destinations are exported).  Whether
  ``s ∈ γ(t)`` is one vectorized comparison on the compiled per-edge
  role codes (``s`` is a customer of ``t`` exactly when ``t`` is a
  provider of ``s``), so every per-source count falls out of a single
  O(links) pass — no membership matrix of any kind.
- **Destination sets** — the same decomposition as a boolean union:
  ``dest(s) = ⋃ N(t)`` over customer transits ``∪ ⋃ γ(t)`` over the
  rest, minus ``s`` itself.  The all-sources pass is *blocked*: sources
  are processed in contiguous ranges sized to a fixed byte budget
  (:data:`DEFAULT_BLOCK_BYTES`), so peak memory is ``O(block × n)``
  bytes regardless of topology size — a full-Internet snapshot never
  allocates an n×n matrix.  Within a block the per-transit rows are
  gathered with one vectorized CSR multi-row scatter.
- **Path sets** — materialized lazily per source (they are the only
  O(paths) product) and memoized.

The blocked range methods (:meth:`PathEngine.counts_range`,
:meth:`PathEngine.destination_counts_range`) are also the sharding
surface of the all-sources GRC pass (:mod:`repro.paths.grc_all`):
per-source results are independent, so contiguous source ranges can be
computed in separate processes against the same memory-mapped topology
artifact and concatenated in range order — byte-identical to one
sequential pass.

Results are memoized per source; :meth:`PathEngine.refresh` implements
the dirty-region invalidation contract used under topology churn: only
sources whose path set can have changed are dropped, everything else is
carried over (an AS's paths depend only on its 2-hop neighborhood, so a
changed link ``a – b`` can only affect ``{a, b} ∪ N(a) ∪ N(b)``).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.compiled import (
    ROLE_PROVIDER,
    CompiledTopology,
    compile_topology,
)
from repro.topology.graph import ASGraph

#: Byte budget of one destination block: a block covers
#: ``DEFAULT_BLOCK_BYTES // n`` sources (at least one), so the blocked
#: all-sources destination sweep peaks at roughly this many bytes of
#: boolean matrix no matter how large the topology is.
DEFAULT_BLOCK_BYTES = 16 * 1024 * 1024


def _gather_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    owners: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Gather several CSR rows at once.

    For each ``rows[k]``, emits every value of that CSR row paired with
    ``owners[k]``; returns ``(owner_per_value, values)``.  This is the
    vectorized replacement for the per-row Python loop: one ``repeat`` +
    one ``arange`` + one fancy index regardless of how many rows are
    gathered.
    """
    starts = indptr[rows]
    lens = (indptr[rows + 1] - starts).astype(np.int64, copy=False)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=owners.dtype), np.empty(0, dtype=indices.dtype)
    ends = np.cumsum(lens)
    positions = np.arange(total, dtype=np.int64)
    positions -= np.repeat(ends - lens, lens)
    positions += np.repeat(starts.astype(np.int64, copy=False), lens)
    return np.repeat(owners, lens), indices[positions]


class PathEngine:
    """All-sources GRC length-3 path queries with per-source memoization.

    The engine exposes the :mod:`repro.paths.grc` vocabulary on top of a
    :class:`CompiledTopology`: :meth:`paths`, :meth:`destinations`,
    :meth:`count`, and :meth:`paths_between` match the semantics of
    ``grc_length3_paths``, ``grc_length3_destinations``,
    ``count_grc_length3_paths``, and ``grc_paths_between`` exactly (the
    property tests assert set-level equality against the naive
    reference).  ``block_bytes`` bounds the peak memory of the blocked
    all-sources destination sweep; the default suits everything from
    paper scale to full CAIDA snapshots.
    """

    def __init__(
        self, topology: CompiledTopology, *, block_bytes: int | None = None
    ) -> None:
        self._topo = topology
        self.block_bytes = DEFAULT_BLOCK_BYTES if block_bytes is None else block_bytes
        self._path_memo: dict[int, frozenset[tuple[int, int, int]]] = {}
        self._dest_memo: dict[int, frozenset[int]] = {}
        self._reset_batches()

    @property
    def topology(self) -> CompiledTopology:
        """The compiled topology the engine currently answers for."""
        return self._topo

    def _reset_batches(self) -> None:
        self._counts: np.ndarray | None = None
        self._dest_counts: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Invalidation / rebuild contract
    # ------------------------------------------------------------------
    def refresh(
        self,
        topology: CompiledTopology,
        *,
        dirty_sources: set[int] | frozenset[int] | None = None,
    ) -> None:
        """Swap in a newly compiled topology.

        ``dirty_sources`` is the set of source ASNs whose results may
        have changed; their memoized entries are dropped while all other
        per-source results are carried over.  ``None`` means "unknown
        extent" and clears everything.  Callers are responsible for the
        dirty set being a superset of the truly affected sources — the
        dynamic-network layer derives it from the endpoints and
        neighborhoods of the churned links.
        """
        if dirty_sources is None:
            self._path_memo.clear()
            self._dest_memo.clear()
        else:
            for asn in dirty_sources:
                self._path_memo.pop(asn, None)
                self._dest_memo.pop(asn, None)
        self._topo = topology
        self._reset_batches()

    # ------------------------------------------------------------------
    # Batched sweeps
    # ------------------------------------------------------------------
    def block_size(self) -> int:
        """Sources per destination block under the byte budget."""
        n = self._topo.n
        return max(1, self.block_bytes // max(n, 1))

    def counts_range(self, lo: int, hi: int) -> np.ndarray:
        """Path counts of the contiguous source range ``[lo, hi)``.

        One vectorized pass over the range's adjacency slice; sharded
        callers concatenate ranges in order and obtain the exact
        sequential all-sources array.
        """
        topo = self._topo
        width = hi - lo
        if width <= 0:
            return np.zeros(0, dtype=np.int64)
        e0 = int(topo.nbr_indptr[lo])
        e1 = int(topo.nbr_indptr[hi])
        transits = topo.nbr_indices[e0:e1]
        # s ∈ γ(t)  ⟺  t plays the provider role for s.
        source_is_customer = topo.nbr_roles[e0:e1] == ROLE_PROVIDER
        sources_rel = np.repeat(
            np.arange(width), np.diff(topo.nbr_indptr[lo:hi + 1])
        )
        contributions = np.where(
            source_is_customer,
            topo.degrees[transits] - 1,
            topo.customer_counts[transits],
        )
        return np.bincount(
            sources_rel, weights=contributions, minlength=width
        ).astype(np.int64)

    def _destination_block(self, lo: int, hi: int) -> np.ndarray:
        """Boolean destination matrix of sources ``[lo, hi)`` (rows × n)."""
        topo = self._topo
        width = hi - lo
        block = np.zeros((width, topo.n), dtype=bool)
        e0 = int(topo.nbr_indptr[lo])
        e1 = int(topo.nbr_indptr[hi])
        transits = topo.nbr_indices[e0:e1]
        roles = topo.nbr_roles[e0:e1]
        sources_rel = np.repeat(
            np.arange(width), np.diff(topo.nbr_indptr[lo:hi + 1])
        )
        customer_edge = roles == ROLE_PROVIDER
        for mask, indptr, indices in (
            (customer_edge, topo.nbr_indptr, topo.nbr_indices),
            (~customer_edge, topo.cust_indptr, topo.cust_indices),
        ):
            owners, values = _gather_rows(
                indptr, indices, transits[mask], sources_rel[mask]
            )
            block[owners, values] = True
        block[np.arange(width), np.arange(lo, hi)] = False
        return block

    def destination_counts_range(self, lo: int, hi: int) -> np.ndarray:
        """Destination counts of the source range ``[lo, hi)``, blocked.

        Peak memory is bounded by ``block_bytes`` — blocks of
        :meth:`block_size` sources are materialized one at a time and
        reduced to their row sums immediately.
        """
        if hi <= lo:
            return np.zeros(0, dtype=np.int64)
        step = self.block_size()
        chunks = []
        for start in range(lo, hi, step):
            stop = min(start + step, hi)
            chunks.append(self._destination_block(start, stop).sum(axis=1))
        return np.concatenate(chunks).astype(np.int64)

    def _counts_array(self) -> np.ndarray:
        if self._counts is None:
            self._counts = self.counts_range(0, self._topo.n)
        return self._counts

    def _dest_counts_array(self) -> np.ndarray:
        if self._dest_counts is None:
            self._dest_counts = self.destination_counts_range(0, self._topo.n)
        return self._dest_counts

    def _destination_indices(self, index: int) -> np.ndarray:
        """Destination indices of one source (single-row union sweep)."""
        topo = self._topo
        transits = topo.neighbors_idx(index)
        roles = topo.neighbor_roles_idx(index)
        rows = []
        for t, role in zip(transits, roles):
            t = int(t)
            if role == ROLE_PROVIDER:
                rows.append(topo.neighbors_idx(t))
            else:
                rows.append(topo.customers_idx(t))
        if not rows:
            return np.empty(0, dtype=np.int32)
        merged = np.unique(np.concatenate(rows))
        return merged[merged != index]

    # ------------------------------------------------------------------
    # Per-source queries (grc.py semantics)
    # ------------------------------------------------------------------
    def count(self, source: int) -> int:
        """Number of GRC length-3 paths starting at ``source``."""
        return int(self._counts_array()[self._topo.index_of(source)])

    def destination_count(self, source: int) -> int:
        """Number of destinations reachable from ``source``."""
        return int(self._dest_counts_array()[self._topo.index_of(source)])

    def counts_by_source(self) -> dict[int, int]:
        """``{source ASN: path count}`` for every AS, in sorted ASN order."""
        counts = self._counts_array()
        return {asn: int(counts[i]) for i, asn in enumerate(self._topo.asns)}

    def destination_counts_by_source(self) -> dict[int, int]:
        """``{source ASN: destination count}`` for every AS."""
        counts = self._dest_counts_array()
        return {asn: int(counts[i]) for i, asn in enumerate(self._topo.asns)}

    def destinations(self, source: int) -> frozenset[int]:
        """Destinations reachable from ``source`` over GRC length-3 paths."""
        memo = self._dest_memo.get(source)
        if memo is None:
            topo = self._topo
            indices = self._destination_indices(topo.index_of(source))
            memo = frozenset(int(asn) for asn in topo.asn_array[indices])
            self._dest_memo[source] = memo
        return memo

    def paths(self, source: int) -> frozenset[tuple[int, int, int]]:
        """All GRC length-3 paths starting at ``source`` (memoized)."""
        memo = self._path_memo.get(source)
        if memo is None:
            topo = self._topo
            s = topo.index_of(source)
            asn = topo.asn_array
            collected: list[tuple[int, int, int]] = []
            for t, role in zip(topo.neighbors_idx(s), topo.neighbor_roles_idx(s)):
                t = int(t)
                transit_asn = int(asn[t])
                if role == ROLE_PROVIDER:
                    dests = topo.neighbors_idx(t)
                else:
                    dests = topo.customers_idx(t)
                for d in dests:
                    if d != s:
                        collected.append((source, transit_asn, int(asn[d])))
            memo = frozenset(collected)
            self._path_memo[source] = memo
        return memo

    def paths_between(
        self, source: int, destination: int
    ) -> frozenset[tuple[int, int, int]]:
        """GRC length-3 paths between a specific AS pair (O(deg(source)))."""
        topo = self._topo
        s = topo.index_of(source)
        d = topo.index_of(destination)
        if s == d:
            return frozenset()
        found = []
        asn = topo.asn_array
        for t, role in zip(topo.neighbors_idx(s), topo.neighbor_roles_idx(s)):
            t = int(t)
            if t == d or not topo.has_link_idx(t, d):
                continue
            if role == ROLE_PROVIDER or topo.is_customer_idx(t, d):
                found.append((source, int(asn[t]), destination))
        return frozenset(found)

    def is_grc_path(self, source: int, transit: int, destination: int) -> bool:
        """Whether ``(source, transit, destination)`` is a GRC length-3 path."""
        topo = self._topo
        s = topo.index_of(source)
        t = topo.index_of(transit)
        d = topo.index_of(destination)
        if len({s, t, d}) != 3:
            return False
        if not (topo.has_link_idx(s, t) and topo.has_link_idx(t, d)):
            return False
        return topo.is_customer_idx(t, s) or topo.is_customer_idx(t, d)

    # grc.py-compatible aliases ----------------------------------------
    grc_length3_paths = paths
    grc_length3_destinations = destinations
    count_grc_length3_paths = count
    grc_paths_between = paths_between


#: Per-graph engine cache, weakly keyed like the compile cache.
_ENGINE_CACHE: "weakref.WeakKeyDictionary[ASGraph, PathEngine]" = (
    weakref.WeakKeyDictionary()
)


def path_engine_for(graph: ASGraph) -> PathEngine:
    """Shared engine for a graph, recompiled transparently on mutation.

    This is what lets the :mod:`repro.paths.grc` module-level API keep
    its ``(graph, source)`` signature while every consumer shares one
    compiled topology and one memo per graph.  A mutation between calls
    triggers a full refresh (no dirty-region knowledge at this level —
    the dynamic-network layer, which does know the churned links, calls
    :meth:`PathEngine.refresh` with an explicit dirty set instead).
    """
    compiled = compile_topology(graph)
    engine = _ENGINE_CACHE.get(graph)
    if engine is None:
        engine = PathEngine(compiled)
        _ENGINE_CACHE[graph] = engine
    elif engine.topology is not compiled:
        engine.refresh(compiled)
    return engine
