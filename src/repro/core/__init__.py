"""Compiled topology core shared by every analysis layer.

This package is the performance substrate of the reproduction:

- :class:`~repro.core.compiled.CompiledTopology` freezes an
  :class:`~repro.topology.graph.ASGraph` (the mixed §III-A graph
  ``G = (A, L_peer, L_pc)``) into contiguous index-based adjacency
  arrays with O(1) role tests and an explicit staleness/rebuild
  contract.
- :class:`~repro.core.path_engine.PathEngine` computes the GRC
  length-3 paths of *all* sources in one batched sweep over the
  compiled arrays, memoizes per-source results, and supports
  dirty-region invalidation under topology churn.
- :mod:`~repro.core.arrays` provides the order-preserving reduction
  and scan kernels that keep batched engines (the path engine, the
  bargaining :class:`~repro.bargaining.engine.NegotiationEngine`)
  bit-identical to their naive per-instance reference paths.
- :mod:`~repro.core.streaming` compiles CAIDA ``as-rel`` lines straight
  into the array form without materializing the dict-of-sets graph —
  the internet-scale ingestion path.
- :mod:`~repro.core.artifacts` persists compiled views as
  content-addressed ``.npy`` artifacts opened zero-copy via
  ``np.load(mmap_mode="r")``, so worker processes share pages instead
  of recompiling.

Higher layers (``paths``, ``agreements``, ``experiments``,
``simulation``) consume these through the cached helpers
:func:`compile_topology` and :func:`path_engine_for`, so repeated
analyses of the same graph share one compiled view.
"""

from repro.core.arrays import (
    exclusive_suffix_minimum,
    last_argmax,
    running_maximum,
    sequential_sum,
)
from repro.core.artifacts import ArtifactError, ArtifactStore, load_artifact
from repro.core.compiled import CompiledTopology, compile_topology
from repro.core.path_engine import DEFAULT_BLOCK_BYTES, PathEngine, path_engine_for
from repro.core.streaming import compile_as_rel_file, compile_as_rel_lines

__all__ = [
    "CompiledTopology",
    "compile_topology",
    "PathEngine",
    "path_engine_for",
    "DEFAULT_BLOCK_BYTES",
    "ArtifactStore",
    "ArtifactError",
    "load_artifact",
    "compile_as_rel_lines",
    "compile_as_rel_file",
    "sequential_sum",
    "running_maximum",
    "exclusive_suffix_minimum",
    "last_argmax",
]
