"""Order-preserving array kernels shared by the batched engines.

The batched engines (:class:`~repro.core.path_engine.PathEngine`,
:class:`~repro.bargaining.engine.NegotiationEngine`) are contracted to
reproduce their naive per-instance reference paths *bit for bit*: seeded
experiment tables and simulation traces must not change when a consumer
switches to the vectorized path.  That rules out ``np.sum`` for
reductions — NumPy's pairwise summation reassociates floating-point
additions and rounds differently from the reference code's sequential
``total += term`` loops.

This module collects the small set of primitives that make exact
vectorization possible:

- :func:`sequential_sum` — a reduction with Python's left-to-right
  accumulation order (``ufunc.accumulate`` is a sequential scan, unlike
  ``ufunc.reduce`` which is pairwise);
- :func:`running_maximum` / :func:`exclusive_suffix_minimum` — scans
  built from comparisons only, which are always exact;
- :func:`last_argmax` — tie-breaking toward the *last* maximal element,
  the vectorized form of "keep updating on ties" scan loops.

Everything operates on ``float64`` (or bool) arrays along the last
axis and is row-independent: applying a kernel to a subset of rows
yields the same values as applying it to the full batch.
"""

from __future__ import annotations

import numpy as np


def sequential_sum(terms: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sum ``terms`` along ``axis`` in strict left-to-right order.

    Bit-identical to the Python fold ``total = 0.0; for t in terms:
    total += t`` — including the IEEE-754 signed-zero corner: a fold
    that starts from ``+0.0`` can never return ``-0.0``, so the scan
    result is re-rounded through a final ``+ 0.0``.  (``np.cumsum`` is a
    sequential scan; only ``np.sum``'s pairwise tree reassociates.)
    """
    terms = np.asarray(terms)
    if terms.shape[axis] == 0:
        shape = list(terms.shape)
        del shape[axis]
        return np.zeros(shape, dtype=terms.dtype)
    moved = np.moveaxis(terms, axis, -1)
    return np.cumsum(moved, axis=-1)[..., -1] + 0.0


def running_maximum(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Left-to-right running maximum (the vectorized monotonic clamp).

    Exact by construction: a maximum is a comparison and a select, no
    rounding is involved.
    """
    return np.maximum.accumulate(values, axis=axis)


def exclusive_suffix_minimum(values: np.ndarray, fill: float = np.inf) -> np.ndarray:
    """Minimum over all *strictly later* positions along the last axis.

    ``out[..., i] = min(values[..., i+1:])`` with ``fill`` for the last
    position (whose suffix is empty).  Comparison-only, hence exact.
    """
    values = np.asarray(values)
    inclusive = np.minimum.accumulate(values[..., ::-1], axis=-1)[..., ::-1]
    filler = np.full(values.shape[:-1] + (1,), fill, dtype=values.dtype)
    return np.concatenate([inclusive[..., 1:], filler], axis=-1)


def last_argmax(flags: np.ndarray) -> np.ndarray:
    """Index of the *last* ``True`` along the last axis.

    ``np.argmax`` keeps the first maximal element; scan loops that keep
    updating on ties keep the last one.  Reversing the axis turns one
    into the other.  Rows without a set flag return the last index —
    callers are expected to guarantee at least one ``True`` per row.
    """
    flags = np.asarray(flags, dtype=bool)
    width = flags.shape[-1]
    return width - 1 - np.argmax(flags[..., ::-1], axis=-1)
