"""Content-addressed on-disk store of compiled topology artifacts.

Before this store, every ``--jobs`` worker, sweep shard, and serve
process re-parsed and re-compiled its topology from scratch: the graph
cannot be shared across processes, and pickling a dict-of-frozensets
``ASGraph`` into each worker costs more than recompiling.  The compiled
arrays, however, are exactly the thing an OS can share: this module
serializes a :class:`~repro.core.compiled.CompiledTopology` as one
``.npy`` file per array plus a ``meta.json``, and loads it back with
``np.load(mmap_mode="r")`` — zero-copy, lazily paged, and with the
physical pages shared between every process that opens the same
artifact.

Layout (mirrors the sweep cache's content-addressed design)::

    <root>/                         # .topology-cache/ by default
      <fingerprint>-v<format>/      # one directory per topology content
        meta.json                   # format, fingerprint, n, num_links
        asn_array.npy
        prov_indptr.npy … nbr_roles.npy   # one per ARRAY_FIELDS entry

Contract:

- **Addressing** — the directory name is the topology's
  ``source_fingerprint`` (``ASGraph.content_fingerprint()``; the
  streaming compiler produces the identical digest) plus the artifact
  format version.  Identical content → identical artifact; a format
  bump changes every address, so stale-layout artifacts are simply
  never hit again.
- **Staleness** — mmap-loaded views are *detached*: there is no source
  graph to mutate under them, so the fingerprint IS the staleness
  contract.  An artifact is valid for exactly the byte-identical
  topology content it was compiled from; callers holding a mutated
  graph get a different fingerprint and miss.
- **Atomicity** — artifacts are written to a temporary sibling
  directory and published with one ``os.rename``; a concurrent writer
  losing the race discards its copy.  Readers never observe a partial
  artifact.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.core.compiled import ARRAY_FIELDS, CompiledTopology, compile_topology
from repro.topology.graph import ASGraph

#: Bump when the on-disk layout or the compiled array semantics change;
#: old artifacts become unreachable (different directory suffix) rather
#: than misread.
ARTIFACT_FORMAT = 1

#: Default store location, relative to the working directory; override
#: with the ``REPRO_TOPOLOGY_STORE`` environment variable or an explicit
#: ``ArtifactStore(root=...)``.
DEFAULT_ARTIFACT_DIR = ".topology-cache"

_META_NAME = "meta.json"


class ArtifactError(Exception):
    """Raised when an artifact on disk is unreadable or inconsistent."""


def default_store_root() -> Path:
    """The store root honoring the ``REPRO_TOPOLOGY_STORE`` override."""
    return Path(os.environ.get("REPRO_TOPOLOGY_STORE") or DEFAULT_ARTIFACT_DIR)


def load_artifact(path: str | Path) -> CompiledTopology:
    """Open one artifact directory as a memory-mapped detached view.

    This is the worker-process entry point: parents pass the artifact
    *path* (a short string) across the process boundary instead of a
    pickled graph, and every worker maps the same physical pages.
    """
    path = Path(path)
    try:
        meta = json.loads((path / _META_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"unreadable topology artifact at {path}: {exc}") from exc
    if meta.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"topology artifact at {path} has format {meta.get('format')!r}, "
            f"expected {ARTIFACT_FORMAT}"
        )
    fingerprint = meta.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise ArtifactError(f"topology artifact at {path} has no fingerprint")
    arrays: dict[str, np.ndarray] = {}
    for name in ARRAY_FIELDS:
        try:
            arrays[name] = np.load(path / f"{name}.npy", mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise ArtifactError(
                f"unreadable array {name!r} in topology artifact at {path}: {exc}"
            ) from exc
    return CompiledTopology.from_arrays(source_fingerprint=fingerprint, **arrays)


class ArtifactStore:
    """Content-addressed store of memory-mapped compiled topologies."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    def path_for(self, fingerprint: str) -> Path:
        """The artifact directory address of a topology fingerprint."""
        return self.root / f"{fingerprint}-v{ARTIFACT_FORMAT}"

    def contains(self, fingerprint: str) -> bool:
        """Whether a published artifact exists for this fingerprint."""
        return (self.path_for(fingerprint) / _META_NAME).is_file()

    def load(self, fingerprint: str) -> CompiledTopology:
        """Memory-map the artifact for a fingerprint (must exist)."""
        view = load_artifact(self.path_for(fingerprint))
        if view.source_fingerprint != fingerprint:
            raise ArtifactError(
                f"topology artifact at {self.path_for(fingerprint)} declares "
                f"fingerprint {view.source_fingerprint}, expected {fingerprint}"
            )
        return view

    def save(self, compiled: CompiledTopology) -> Path:
        """Publish a compiled view; returns the artifact directory.

        Idempotent: publishing content that is already stored is a
        no-op, and a concurrent writer racing on the same fingerprint
        resolves to whichever rename lands first.
        """
        fingerprint = compiled.source_fingerprint
        final = self.path_for(fingerprint)
        if (final / _META_NAME).is_file():
            return final
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".tmp-{fingerprint[:16]}-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        try:
            for name in ARRAY_FIELDS:
                np.save(tmp / f"{name}.npy", np.asarray(getattr(compiled, name)))
            meta = {
                "format": ARTIFACT_FORMAT,
                "fingerprint": fingerprint,
                "n": compiled.n,
                "num_links": compiled.num_links,
                "arrays": list(ARRAY_FIELDS),
            }
            (tmp / _META_NAME).write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            try:
                os.rename(tmp, final)
            except OSError:
                if not (final / _META_NAME).is_file():
                    raise
                # Another process published the same content first.
                shutil.rmtree(tmp, ignore_errors=True)
        finally:
            if tmp.exists() and (final / _META_NAME).is_file():
                shutil.rmtree(tmp, ignore_errors=True)
        return final

    def ensure(self, graph: ASGraph) -> tuple[CompiledTopology, Path]:
        """Mmap-open the artifact for a graph, compiling it on first use.

        Returns ``(view, artifact_path)``.  On a hit the graph is never
        compiled — only fingerprinted; on a miss the graph is compiled
        once, published, and the memory-mapped view is returned, so
        warm and cold callers hold exactly the same kind of object.
        """
        fingerprint = graph.content_fingerprint()
        if not self.contains(fingerprint):
            self.save(compile_topology(graph))
        return self.load(fingerprint), self.path_for(fingerprint)

    def ensure_compiled(self, compiled: CompiledTopology) -> Path:
        """Publish an already-compiled (e.g. streamed) view; returns its path."""
        return self.save(compiled)
