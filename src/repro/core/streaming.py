"""Streaming CAIDA ingestion: as-rel lines compiled straight to arrays.

:func:`repro.topology.caida.parse_as_rel_lines` builds a mutable
:class:`~repro.topology.graph.ASGraph` — dicts of Python sets, one
object per AS and per link.  That intermediate is what the rest of the
repo edits and reasons about, but for a full CAIDA serial-2 snapshot
(~75k ASes, ~400k links) it is pure overhead when the goal is analysis:
the graph is compiled to :class:`~repro.core.compiled.CompiledTopology`
arrays and never touched again.

:func:`compile_as_rel_lines` skips the middleman.  It consumes the same
validated records (:func:`repro.topology.caida.iter_as_rel_records`),
accumulates flat endpoint/relationship arrays, and builds the CSR
adjacency of every role with vectorized numpy passes — sorting,
``bincount`` row pointers, one ``lexsort`` per role family — in one
pass over the file.  The result is a *detached*
:class:`CompiledTopology` whose arrays are element-identical to
``CompiledTopology.compile(parse_as_rel_lines(lines))`` and whose
``source_fingerprint`` equals ``ASGraph.content_fingerprint()`` of that
graph (both equalities are pinned by the property tests), so streamed
views interoperate with every fingerprint-keyed cache — sweep shards
and the :mod:`repro.core.artifacts` store alike.

Validation is not relaxed: field-level problems raise line-numbered
:class:`~repro.topology.caida.CaidaFormatError`\\ s from the shared
record iterator, and conflicting duplicate links are detected on the
sorted link arrays and reported with both line numbers, mirroring the
graph path.  Identical duplicate lines are deduplicated (first
occurrence wins, which is also what ``ASGraph`` does).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.core.compiled import (
    ROLE_CUSTOMER,
    ROLE_PEER,
    ROLE_PROVIDER,
    CompiledTopology,
)
from repro.topology.caida import CaidaFormatError, iter_as_rel_records

#: Link signature codes on (lo, hi)-normalized endpoint pairs.  Two
#: records for the same pair conflict exactly when their signatures
#: differ, so conflict detection is one vectorized comparison on the
#: key-sorted arrays.
_SIG_PEER = 0
_SIG_PROVIDER_IS_LO = 1
_SIG_PROVIDER_IS_HI = 2


def _raise_conflict(
    keys: np.ndarray,
    sigs: np.ndarray,
    linenos: np.ndarray,
    firsts: np.ndarray,
    seconds: np.ndarray,
    codes: np.ndarray,
    pos: int,
) -> None:
    """Report the conflicting record at sorted position ``pos``.

    ``pos`` is the first sorted position whose signature differs from its
    predecessor under the same key; the stable sort keeps file order
    within a key group, so walking back to the group start finds the
    first declaration and ``pos`` itself is the first conflicting line.
    """
    start = pos
    while start > 0 and keys[start - 1] == keys[pos]:
        start -= 1
    raise CaidaFormatError(
        f"line {int(linenos[pos])}: conflicting duplicate link "
        f"{int(firsts[pos])}|{int(seconds[pos])}|{int(codes[pos])} "
        f"(first declared on line {int(linenos[start])})"
    )


def _csr_from_edges(
    owners: np.ndarray,
    neighbors: np.ndarray,
    n: int,
    roles: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (indptr, sorted indices[, aligned roles]) from directed edges."""
    order = np.lexsort((neighbors, owners))
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(owners, minlength=n), out=indptr[1:])
    indices = neighbors[order].astype(np.int32, copy=False)
    if roles is None:
        return indptr, indices
    return indptr, indices, roles[order]


def compile_as_rel_lines(lines: Iterable[str]) -> CompiledTopology:
    """Compile CAIDA ``as-rel`` lines directly into a detached view.

    Returns a :class:`CompiledTopology` with arrays element-identical
    to compiling ``parse_as_rel_lines(lines)`` and the matching
    ``source_fingerprint``, without materializing the dict-of-sets
    graph.  Raises :class:`CaidaFormatError` on exactly the inputs the
    graph path rejects.
    """
    firsts_list: list[int] = []
    seconds_list: list[int] = []
    codes_list: list[int] = []
    linenos_list: list[int] = []
    for lineno, first, second, code in iter_as_rel_records(lines):
        linenos_list.append(lineno)
        firsts_list.append(first)
        seconds_list.append(second)
        codes_list.append(code)

    firsts = np.asarray(firsts_list, dtype=np.int64)
    seconds = np.asarray(seconds_list, dtype=np.int64)
    codes = np.asarray(codes_list, dtype=np.int64)
    linenos = np.asarray(linenos_list, dtype=np.int64)
    del firsts_list, seconds_list, codes_list, linenos_list

    if firsts.size == 0:
        return CompiledTopology.from_arrays(
            source_fingerprint=hashlib.sha256().hexdigest(),
            asn_array=np.empty(0, dtype=np.int64),
            prov_indptr=np.zeros(1, dtype=np.int64),
            prov_indices=np.empty(0, dtype=np.int32),
            peer_indptr=np.zeros(1, dtype=np.int64),
            peer_indices=np.empty(0, dtype=np.int32),
            cust_indptr=np.zeros(1, dtype=np.int64),
            cust_indices=np.empty(0, dtype=np.int32),
            nbr_indptr=np.zeros(1, dtype=np.int64),
            nbr_indices=np.empty(0, dtype=np.int32),
            nbr_roles=np.empty(0, dtype=np.int8),
        )

    # Intern ASNs into dense indices (sorted ASN order, like the graph
    # compile) and normalize every record to its (lo, hi) index pair
    # plus a relationship signature.
    asn_array = np.unique(np.concatenate((firsts, seconds)))
    n = int(asn_array.size)
    u = np.searchsorted(asn_array, firsts)
    v = np.searchsorted(asn_array, seconds)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    is_p2c = codes == -1
    sigs = np.where(
        ~is_p2c,
        _SIG_PEER,
        np.where(u == lo, _SIG_PROVIDER_IS_LO, _SIG_PROVIDER_IS_HI),
    ).astype(np.int8)

    # Sort by pair key (stable → file order within a key group), then
    # detect conflicts and deduplicate in one adjacent comparison each.
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys, kind="stable")
    keys_s = keys[order]
    sigs_s = sigs[order]
    same_key = keys_s[1:] == keys_s[:-1]
    conflict = same_key & (sigs_s[1:] != sigs_s[:-1])
    if conflict.any():
        pos = int(np.nonzero(conflict)[0][0]) + 1
        _raise_conflict(
            keys_s, sigs_s, linenos[order], firsts[order], seconds[order],
            codes[order], pos,
        )
    keep = np.concatenate(([True], ~same_key))
    lo_u = lo[order][keep]
    hi_u = hi[order][keep]
    sig_u = sigs_s[keep]

    # Unique links → directed role edges.  Provider/customer direction
    # is encoded by the signature; peering contributes both directions.
    peer_mask = sig_u == _SIG_PEER
    prov_is_lo = sig_u == _SIG_PROVIDER_IS_LO
    providers = np.where(prov_is_lo, lo_u, hi_u)[~peer_mask]
    customers = np.where(prov_is_lo, hi_u, lo_u)[~peer_mask]
    peer_lo = lo_u[peer_mask]
    peer_hi = hi_u[peer_mask]

    prov_indptr, prov_indices = _csr_from_edges(customers, providers, n)
    peer_indptr, peer_indices = _csr_from_edges(
        np.concatenate((peer_lo, peer_hi)), np.concatenate((peer_hi, peer_lo)), n
    )
    cust_indptr, cust_indices = _csr_from_edges(providers, customers, n)
    nbr_owners = np.concatenate((customers, providers, peer_lo, peer_hi))
    nbr_targets = np.concatenate((providers, customers, peer_hi, peer_lo))
    nbr_role_codes = np.concatenate(
        (
            np.full(customers.size, ROLE_PROVIDER, dtype=np.int8),
            np.full(providers.size, ROLE_CUSTOMER, dtype=np.int8),
            np.full(peer_lo.size + peer_hi.size, ROLE_PEER, dtype=np.int8),
        )
    )
    nbr_indptr, nbr_indices, nbr_roles = _csr_from_edges(
        nbr_owners, nbr_targets, n, roles=nbr_role_codes
    )

    return CompiledTopology.from_arrays(
        source_fingerprint=_fingerprint(asn_array, lo_u, hi_u, sig_u),
        asn_array=asn_array,
        prov_indptr=prov_indptr,
        prov_indices=prov_indices,
        peer_indptr=peer_indptr,
        peer_indices=peer_indices,
        cust_indptr=cust_indptr,
        cust_indices=cust_indices,
        nbr_indptr=nbr_indptr,
        nbr_indices=nbr_indices,
        nbr_roles=nbr_roles,
    )


def compile_as_rel_file(path: str | Path) -> CompiledTopology:
    """Stream-compile a CAIDA ``as-rel`` file (see :func:`compile_as_rel_lines`)."""
    with open(path, encoding="utf-8") as handle:
        return compile_as_rel_lines(handle)


def _fingerprint(
    asn_array: np.ndarray,
    lo_u: np.ndarray,
    hi_u: np.ndarray,
    sig_u: np.ndarray,
) -> str:
    """Reproduce :meth:`ASGraph.content_fingerprint` from link arrays.

    The graph hashes ``A {asn}`` per sorted ASN, then ``L {first}
    {second} {rel}`` per link in (lo, hi)-sorted endpoint order, with
    provider first on transit links and the lower ASN first on peering
    links.  The unique link arrays are already in exactly that order
    (keys were sorted by ``lo * n + hi``), so this is one formatting
    pass — byte-for-byte the digest the graph path would produce.
    """
    digest = hashlib.sha256()
    for asn in asn_array:
        digest.update(f"A {int(asn)}\n".encode())
    peer = sig_u == _SIG_PEER
    first_idx = np.where(peer | (sig_u == _SIG_PROVIDER_IS_LO), lo_u, hi_u)
    second_idx = np.where(peer | (sig_u == _SIG_PROVIDER_IS_LO), hi_u, lo_u)
    first_asn = asn_array[first_idx]
    second_asn = asn_array[second_idx]
    rels = np.where(peer, 0, -1)
    for a, b, rel in zip(first_asn, second_asn, rels):
        digest.update(f"L {int(a)} {int(b)} {int(rel)}\n".encode())
    return digest.hexdigest()
