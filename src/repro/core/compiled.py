"""Compiled, index-based view of the mixed AS graph ``G = (A, L_peer, L_pc)``.

:class:`repro.topology.graph.ASGraph` stores the §III-A mixed graph as
dicts of Python sets, which is ideal for incremental construction but
slow to traverse repeatedly: every analysis pass re-allocates frozensets
and re-hashes ASNs.  :class:`CompiledTopology` freezes one mutation
state of an ``ASGraph`` into contiguous arrays:

- **Interning** — ASNs are mapped to dense indices ``0 … n-1`` in sorted
  ASN order, so any per-AS quantity becomes a flat array.
- **CSR adjacency** — the neighbor set ``π(X) ∪ ε(X) ∪ γ(X)`` and the
  per-role sets ``π(X)`` (providers), ``ε(X)`` (peers), ``γ(X)``
  (customers) of every AS are stored as index arrays with row pointers
  (compressed sparse rows), each row sorted ascending.
- **Edge role codes** — :attr:`CompiledTopology.nbr_roles` stores, per
  directed adjacency slot, the role the *neighbor* plays for the row AS
  (:data:`ROLE_PROVIDER` / :data:`ROLE_PEER` / :data:`ROLE_CUSTOMER`),
  so batched sweeps answer "is the source a customer of this transit"
  with one vectorized comparison instead of per-pair set lookups.
- **O(log deg) role tests** — membership tests binary-search the sorted
  CSR rows; no Python pair sets are materialized, which keeps a view
  loadable zero-copy from memory-mapped array files
  (:mod:`repro.core.artifacts`).

A compiled view is immutable, and every array is either built in memory
or memory-mapped read-only from an on-disk artifact — consumers cannot
tell the difference (the property tests assert exactly that).

There are two provenance modes:

- **Graph-backed** views (built by :meth:`CompiledTopology.compile` /
  :func:`compile_topology`) remember the source graph's
  :attr:`ASGraph.mutation_count` and report staleness via
  :meth:`CompiledTopology.is_stale`; callers obtain a fresh (or cached)
  view through :func:`compile_topology`, which rebuilds exactly when
  the graph has mutated.  The dynamic-network layer
  (:mod:`repro.simulation.network`) builds on this contract to
  recompile on link churn while preserving work for the unaffected
  region.
- **Detached** views (streamed from as-rel lines by
  :mod:`repro.core.streaming`, or loaded from an artifact by
  :mod:`repro.core.artifacts`) have no live source graph.  They are
  never stale — their identity *is* their content fingerprint, and the
  cross-process staleness contract is fingerprint equality: an artifact
  is valid for exactly the byte-identical topology content it was
  compiled from.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.topology.graph import ASGraph, TopologyError
from repro.topology.relationships import Role

#: ``nbr_roles`` codes: the role the neighbor plays for the row AS.
ROLE_PROVIDER = np.int8(1)
ROLE_PEER = np.int8(2)
ROLE_CUSTOMER = np.int8(3)

_ROLE_BY_CODE = {
    int(ROLE_PROVIDER): Role.PROVIDER,
    int(ROLE_PEER): Role.PEER,
    int(ROLE_CUSTOMER): Role.CUSTOMER,
}

#: The array attributes that define a compiled view's content, in the
#: canonical serialization order of :mod:`repro.core.artifacts`.
ARRAY_FIELDS = (
    "asn_array",
    "prov_indptr",
    "prov_indices",
    "peer_indptr",
    "peer_indices",
    "cust_indptr",
    "cust_indices",
    "nbr_indptr",
    "nbr_indices",
    "nbr_roles",
)


def _csr(rows: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-index adjacency rows into (indptr, indices) CSR arrays."""
    lengths = np.fromiter((len(row) for row in rows), dtype=np.int64, count=len(rows))
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    if indptr[-1] == 0:
        return indptr, np.empty(0, dtype=np.int32)
    indices = np.concatenate([np.asarray(row, dtype=np.int32) for row in rows if row])
    return indptr, indices


def _row_contains(indptr: np.ndarray, indices: np.ndarray, row: int, value: int) -> bool:
    """Whether a sorted CSR row contains ``value`` (binary search)."""
    lo = int(indptr[row])
    hi = int(indptr[row + 1])
    pos = lo + int(np.searchsorted(indices[lo:hi], value))
    return pos < hi and int(indices[pos]) == value


class CompiledTopology:
    """An immutable array-compiled snapshot of one :class:`ASGraph` state.

    Build via :meth:`compile` (or the cached :func:`compile_topology`)
    from a graph, via :meth:`from_arrays` from pre-built CSR arrays
    (the streaming and memory-mapped artifact paths).  All index-level
    accessors return read-only numpy slices; the ``*_set`` accessors
    return cached frozensets of ASNs for call sites that need Python
    set algebra without re-allocating per call.
    """

    def __init__(self, graph: ASGraph) -> None:
        asns = sorted(graph.ases)
        index = {asn: i for i, asn in enumerate(asns)}

        prov_rows: list[list[int]] = []
        peer_rows: list[list[int]] = []
        cust_rows: list[list[int]] = []
        nbr_rows: list[list[int]] = []
        role_rows: list[np.ndarray] = []
        for asn in asns:
            providers = sorted(index[p] for p in graph.providers(asn))
            peers = sorted(index[p] for p in graph.peers(asn))
            customers = sorted(index[c] for c in graph.customers(asn))
            prov_rows.append(providers)
            peer_rows.append(peers)
            cust_rows.append(customers)
            merged = providers + peers + customers
            codes = np.empty(len(merged), dtype=np.int8)
            codes[: len(providers)] = ROLE_PROVIDER
            codes[len(providers):len(providers) + len(peers)] = ROLE_PEER
            codes[len(providers) + len(peers):] = ROLE_CUSTOMER
            merged_array = np.asarray(merged, dtype=np.int32)
            # The three role groups are disjoint, so a stable sort of
            # the concatenation yields the ascending neighbor row with
            # its role codes carried along.
            order = np.argsort(merged_array, kind="stable")
            nbr_rows.append([int(v) for v in merged_array[order]])
            role_rows.append(codes[order])

        prov_indptr, prov_indices = _csr(prov_rows)
        peer_indptr, peer_indices = _csr(peer_rows)
        cust_indptr, cust_indices = _csr(cust_rows)
        nbr_indptr, nbr_indices = _csr(nbr_rows)
        nbr_roles = (
            np.concatenate(role_rows)
            if role_rows and nbr_indices.size
            else np.empty(0, dtype=np.int8)
        )
        self._init_from_arrays(
            asn_array=np.asarray(asns, dtype=np.int64),
            prov_indptr=prov_indptr,
            prov_indices=prov_indices,
            peer_indptr=peer_indptr,
            peer_indices=peer_indices,
            cust_indptr=cust_indptr,
            cust_indices=cust_indices,
            nbr_indptr=nbr_indptr,
            nbr_indices=nbr_indices,
            nbr_roles=nbr_roles,
        )
        self.source_mutation_count = graph.mutation_count
        self._source_ref = weakref.ref(graph)
        self._detached = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _init_from_arrays(self, **arrays: np.ndarray) -> None:
        """Bind the content arrays and derived state (shared by all paths)."""
        for name in ARRAY_FIELDS:
            array = arrays[name]
            if array.flags.writeable:
                array.setflags(write=False)
            setattr(self, name, array)
        n = len(self.asn_array)
        self.n = n
        self.asns: tuple[int, ...] = tuple(int(a) for a in self.asn_array)
        self._index: dict[int, int] = {asn: i for i, asn in enumerate(self.asns)}
        self.degrees = np.diff(self.nbr_indptr)
        self.customer_counts = np.diff(self.cust_indptr)
        # Every link contributes two directed adjacency slots.
        self.num_links = int(self.nbr_indptr[-1]) // 2
        self._source_fingerprint: str | None = None
        self._source_ref: weakref.ref[ASGraph] | None = None
        self._detached = True
        self.source_mutation_count = 0
        # Lazily filled frozenset views (ASN-level), one slot per index.
        self._nbr_sets: list[frozenset[int] | None] = [None] * n
        self._cust_sets: list[frozenset[int] | None] = [None] * n
        self._peer_sets: list[frozenset[int] | None] = [None] * n
        self._prov_sets: list[frozenset[int] | None] = [None] * n

    @classmethod
    def compile(cls, graph: ASGraph) -> "CompiledTopology":
        """Compile a fresh immutable view of the graph's current state."""
        return cls(graph)

    @classmethod
    def from_arrays(
        cls,
        *,
        source_fingerprint: str,
        **arrays: np.ndarray,
    ) -> "CompiledTopology":
        """Build a *detached* view directly from CSR arrays.

        This is the constructor of the streaming-ingestion and
        memory-mapped artifact paths: the arrays (one per name in
        :data:`ARRAY_FIELDS`) are adopted as-is — zero-copy, so
        ``np.load(..., mmap_mode="r")`` results stay memory-mapped —
        and ``source_fingerprint`` records the content digest of the
        topology they describe.  Detached views have no source graph
        and are never stale; cache validity is fingerprint equality.
        """
        missing = [name for name in ARRAY_FIELDS if name not in arrays]
        if missing:
            raise ValueError(f"missing compiled arrays: {', '.join(missing)}")
        self = cls.__new__(cls)
        self._init_from_arrays(**{name: arrays[name] for name in ARRAY_FIELDS})
        self._source_fingerprint = source_fingerprint
        return self

    # ------------------------------------------------------------------
    # Invalidation contract
    # ------------------------------------------------------------------
    @property
    def detached(self) -> bool:
        """Whether this view was built without a live source graph."""
        return self._detached

    @property
    def source_fingerprint(self) -> str:
        """Content digest of the source topology at compile time.

        Together with :attr:`source_mutation_count` this extends the
        staleness contract across process boundaries: on-disk caches
        (sweep shards, topology artifacts) stamp results with the
        fingerprint, so a cache hit is guaranteed to describe
        byte-identical topology content.

        For graph-backed views the digest is computed lazily on first
        access — churn-driven recompiles (the simulation hot path)
        never pay for the hash — and only while the source graph is
        alive and unmutated, so the digest can never describe different
        content than the compiled arrays.  Detached views (streamed or
        artifact-loaded) carry their fingerprint from birth.
        """
        if self._source_fingerprint is None:
            graph = self._source_ref() if self._source_ref is not None else None
            if graph is None or graph.mutation_count != self.source_mutation_count:
                raise RuntimeError(
                    "source graph is gone or has mutated since compilation; "
                    "its fingerprint can no longer be derived"
                )
            self._source_fingerprint = graph.content_fingerprint()
        return self._source_fingerprint

    def is_stale(self, graph: ASGraph | None = None) -> bool:
        """Whether the source graph has mutated since compilation.

        With no argument, checks against the original source graph (a
        garbage-collected source counts as stale); pass a graph to check
        against it explicitly.  Detached views are never stale — they
        have no mutable source; their validity is governed by the
        fingerprint contract instead.
        """
        if graph is None:
            if self._detached:
                return False
            graph = self._source_ref() if self._source_ref is not None else None
            if graph is None:
                return True
        return graph.mutation_count != self.source_mutation_count

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def index_of(self, asn: int) -> int:
        """Dense index of an ASN (raises :class:`TopologyError` if unknown)."""
        try:
            return self._index[asn]
        except KeyError:
            raise TopologyError(f"unknown AS: {asn}") from None

    def asn_of(self, index: int) -> int:
        """ASN at a dense index."""
        return self.asns[index]

    def __contains__(self, asn: int) -> bool:
        return asn in self._index

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Index-level adjacency (numpy views)
    # ------------------------------------------------------------------
    def neighbors_idx(self, index: int) -> np.ndarray:
        """Sorted neighbor indices of the AS at ``index``."""
        return self.nbr_indices[self.nbr_indptr[index]:self.nbr_indptr[index + 1]]

    def neighbor_roles_idx(self, index: int) -> np.ndarray:
        """Role codes aligned with :meth:`neighbors_idx` for ``index``."""
        return self.nbr_roles[self.nbr_indptr[index]:self.nbr_indptr[index + 1]]

    def customers_idx(self, index: int) -> np.ndarray:
        """Sorted customer indices (``γ``) of the AS at ``index``."""
        return self.cust_indices[self.cust_indptr[index]:self.cust_indptr[index + 1]]

    def peers_idx(self, index: int) -> np.ndarray:
        """Sorted peer indices (``ε``) of the AS at ``index``."""
        return self.peer_indices[self.peer_indptr[index]:self.peer_indptr[index + 1]]

    def providers_idx(self, index: int) -> np.ndarray:
        """Sorted provider indices (``π``) of the AS at ``index``."""
        return self.prov_indices[self.prov_indptr[index]:self.prov_indptr[index + 1]]

    # ------------------------------------------------------------------
    # Role / membership tests (binary search over sorted CSR rows)
    # ------------------------------------------------------------------
    def is_customer_idx(self, owner: int, candidate: int) -> bool:
        """Whether ``candidate`` is a customer of ``owner`` (dense indices)."""
        return _row_contains(self.cust_indptr, self.cust_indices, owner, candidate)

    def has_link_idx(self, left: int, right: int) -> bool:
        """Whether any link joins the two dense indices."""
        return _row_contains(self.nbr_indptr, self.nbr_indices, left, right)

    def is_customer(self, owner: int, candidate: int) -> bool:
        """Whether AS ``candidate`` is in ``γ(owner)`` (ASN-level)."""
        return self.is_customer_idx(self.index_of(owner), self.index_of(candidate))

    def has_link(self, left: int, right: int) -> bool:
        """Whether any link joins the two ASes (ASN-level)."""
        return self.has_link_idx(self.index_of(left), self.index_of(right))

    def role_of(self, asn: int, neighbor: int) -> Role:
        """Role ``neighbor`` plays for ``asn``, mirroring :meth:`ASGraph.role_of`."""
        u = self.index_of(asn)
        v = self.index_of(neighbor)
        lo = int(self.nbr_indptr[u])
        hi = int(self.nbr_indptr[u + 1])
        pos = lo + int(np.searchsorted(self.nbr_indices[lo:hi], v))
        if pos >= hi or int(self.nbr_indices[pos]) != v:
            raise TopologyError(f"AS {neighbor} is not a neighbor of AS {asn}")
        return _ROLE_BY_CODE[int(self.nbr_roles[pos])]

    def degree(self, asn: int) -> int:
        """Total number of neighbors of an AS."""
        return int(self.degrees[self.index_of(asn)])

    # ------------------------------------------------------------------
    # ASN-level cached set views
    # ------------------------------------------------------------------
    def _set_view(
        self,
        cache: list[frozenset[int] | None],
        indptr: np.ndarray,
        indices: np.ndarray,
        asn: int,
    ) -> frozenset[int]:
        i = self.index_of(asn)
        view = cache[i]
        if view is None:
            row = indices[indptr[i]:indptr[i + 1]]
            view = frozenset(int(self.asn_array[j]) for j in row)
            cache[i] = view
        return view

    def neighbors(self, asn: int) -> frozenset[int]:
        """All neighbors of an AS (cached frozenset of ASNs)."""
        return self._set_view(self._nbr_sets, self.nbr_indptr, self.nbr_indices, asn)

    def customers(self, asn: int) -> frozenset[int]:
        """The customer set ``γ(X)`` (cached frozenset of ASNs)."""
        return self._set_view(self._cust_sets, self.cust_indptr, self.cust_indices, asn)

    def peers(self, asn: int) -> frozenset[int]:
        """The peer set ``ε(X)`` (cached frozenset of ASNs)."""
        return self._set_view(self._peer_sets, self.peer_indptr, self.peer_indices, asn)

    def providers(self, asn: int) -> frozenset[int]:
        """The provider set ``π(X)`` (cached frozenset of ASNs)."""
        return self._set_view(self._prov_sets, self.prov_indptr, self.prov_indices, asn)

    def same_arrays(self, other: "CompiledTopology") -> bool:
        """Whether two views have element-identical content arrays.

        This is the equivalence the streaming and artifact paths are
        contracted to: a streamed/loaded view is *indistinguishable*
        from a graph compile of the same content.
        """
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in ARRAY_FIELDS
        )

    def __repr__(self) -> str:
        return (
            f"CompiledTopology(ases={self.n}, links={self.num_links}, "
            f"source_mutation_count={self.source_mutation_count})"
        )


#: Per-graph compile cache.  Weakly keyed so snapshots (e.g. the rolling
#: active graphs of a DynamicNetwork) do not accumulate.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[ASGraph, CompiledTopology]" = (
    weakref.WeakKeyDictionary()
)


def compile_topology(graph: ASGraph) -> CompiledTopology:
    """Return a compiled view of the graph, rebuilding only when stale.

    This is the canonical entry point of the invalidation contract:
    repeated calls on an unmutated graph return the same object, and the
    first call after any mutation compiles a fresh view.
    """
    compiled = _COMPILE_CACHE.get(graph)
    if compiled is None or compiled.is_stale(graph):
        compiled = CompiledTopology.compile(graph)
        _COMPILE_CACHE[graph] = compiled
    return compiled
