"""Compiled, index-based view of the mixed AS graph ``G = (A, L_peer, L_pc)``.

:class:`repro.topology.graph.ASGraph` stores the §III-A mixed graph as
dicts of Python sets, which is ideal for incremental construction but
slow to traverse repeatedly: every analysis pass re-allocates frozensets
and re-hashes ASNs.  :class:`CompiledTopology` freezes one mutation
state of an ``ASGraph`` into contiguous arrays:

- **Interning** — ASNs are mapped to dense indices ``0 … n-1`` in sorted
  ASN order, so any per-AS quantity becomes a flat array.
- **CSR adjacency** — the neighbor set ``π(X) ∪ ε(X) ∪ γ(X)`` and the
  per-role sets ``π(X)`` (providers), ``ε(X)`` (peers), ``γ(X)``
  (customers) of every AS are stored as index arrays with row pointers
  (compressed sparse rows), each row sorted ascending.
- **O(1) role tests** — per-AS membership tables answer "is ``v`` a
  customer of ``u``" and "is there a link ``u – v``" in constant time
  without building sets.

A compiled view is immutable.  The invalidation contract is explicit:
the view remembers the source graph's :attr:`ASGraph.mutation_count`
and reports staleness via :meth:`CompiledTopology.is_stale`; callers
obtain a fresh (or cached) view through :func:`compile_topology`, which
rebuilds exactly when the graph has mutated.  The dynamic-network layer
(:mod:`repro.simulation.network`) builds on this contract to recompile
on link churn while preserving work for the unaffected region.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.topology.graph import ASGraph, TopologyError
from repro.topology.relationships import Role


def _csr(rows: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-index adjacency rows into (indptr, indices) CSR arrays."""
    lengths = np.fromiter((len(row) for row in rows), dtype=np.int64, count=len(rows))
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    if indptr[-1] == 0:
        return indptr, np.empty(0, dtype=np.int32)
    indices = np.concatenate([np.asarray(row, dtype=np.int32) for row in rows if row])
    return indptr, indices


class CompiledTopology:
    """An immutable array-compiled snapshot of one :class:`ASGraph` state.

    Build via :meth:`compile` (or the cached :func:`compile_topology`).
    All index-level accessors return read-only numpy slices; the
    ``*_set`` accessors return cached frozensets of ASNs for call sites
    that need Python set algebra without re-allocating per call.
    """

    def __init__(self, graph: ASGraph) -> None:
        asns = sorted(graph.ases)
        self.asns: tuple[int, ...] = tuple(asns)
        self.n = len(asns)
        self._index: dict[int, int] = {asn: i for i, asn in enumerate(asns)}
        self.asn_array = np.asarray(asns, dtype=np.int64)
        self.source_mutation_count = graph.mutation_count
        self._source_fingerprint: str | None = None
        self._source_ref: weakref.ref[ASGraph] = weakref.ref(graph)

        prov_rows: list[list[int]] = []
        peer_rows: list[list[int]] = []
        cust_rows: list[list[int]] = []
        nbr_rows: list[list[int]] = []
        index = self._index
        for asn in asns:
            providers = sorted(index[p] for p in graph.providers(asn))
            peers = sorted(index[p] for p in graph.peers(asn))
            customers = sorted(index[c] for c in graph.customers(asn))
            prov_rows.append(providers)
            peer_rows.append(peers)
            cust_rows.append(customers)
            nbr_rows.append(sorted(providers + peers + customers))

        self.prov_indptr, self.prov_indices = _csr(prov_rows)
        self.peer_indptr, self.peer_indices = _csr(peer_rows)
        self.cust_indptr, self.cust_indices = _csr(cust_rows)
        self.nbr_indptr, self.nbr_indices = _csr(nbr_rows)
        for array in (
            self.prov_indices, self.peer_indices,
            self.cust_indices, self.nbr_indices,
        ):
            array.setflags(write=False)

        self.degrees = np.diff(self.nbr_indptr)
        self.customer_counts = np.diff(self.cust_indptr)

        # Pair membership tables: encoded as u*n+v so a single set lookup
        # answers the role test.  Memory is O(links), not O(n²).
        n = self.n
        self._customer_pairs: set[int] = {
            u * n + v
            for u, row in enumerate(cust_rows)
            for v in row
        }
        self._peer_pairs: set[int] = {
            u * n + v
            for u, row in enumerate(peer_rows)
            for v in row
        }
        self._link_pairs: set[int] = {
            min(u, v) * n + max(u, v)
            for u, row in enumerate(nbr_rows)
            for v in row
        }
        self.num_links = len(self._link_pairs)

        # Lazily filled frozenset views (ASN-level), one slot per index.
        self._nbr_sets: list[frozenset[int] | None] = [None] * n
        self._cust_sets: list[frozenset[int] | None] = [None] * n
        self._peer_sets: list[frozenset[int] | None] = [None] * n
        self._prov_sets: list[frozenset[int] | None] = [None] * n

    # ------------------------------------------------------------------
    # Construction / invalidation contract
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, graph: ASGraph) -> "CompiledTopology":
        """Compile a fresh immutable view of the graph's current state."""
        return cls(graph)

    @property
    def source_fingerprint(self) -> str:
        """Content digest of the source graph at compile time.

        Together with :attr:`source_mutation_count` this extends the
        staleness contract across process boundaries: on-disk sweep
        caches stamp results with the fingerprint, so a cache hit is
        guaranteed to describe byte-identical topology content.

        Computed lazily on first access — churn-driven recompiles (the
        simulation hot path) never pay for the hash — and only while the
        source graph is alive and unmutated, so the digest can never
        describe different content than the compiled arrays.
        """
        if self._source_fingerprint is None:
            graph = self._source_ref()
            if graph is None or graph.mutation_count != self.source_mutation_count:
                raise RuntimeError(
                    "source graph is gone or has mutated since compilation; "
                    "its fingerprint can no longer be derived"
                )
            self._source_fingerprint = graph.content_fingerprint()
        return self._source_fingerprint

    def is_stale(self, graph: ASGraph | None = None) -> bool:
        """Whether the source graph has mutated since compilation.

        With no argument, checks against the original source graph (a
        garbage-collected source counts as stale); pass a graph to check
        against it explicitly.
        """
        if graph is None:
            graph = self._source_ref()
            if graph is None:
                return True
        return graph.mutation_count != self.source_mutation_count

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def index_of(self, asn: int) -> int:
        """Dense index of an ASN (raises :class:`TopologyError` if unknown)."""
        try:
            return self._index[asn]
        except KeyError:
            raise TopologyError(f"unknown AS: {asn}") from None

    def asn_of(self, index: int) -> int:
        """ASN at a dense index."""
        return self.asns[index]

    def __contains__(self, asn: int) -> bool:
        return asn in self._index

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Index-level adjacency (numpy views)
    # ------------------------------------------------------------------
    def neighbors_idx(self, index: int) -> np.ndarray:
        """Sorted neighbor indices of the AS at ``index``."""
        return self.nbr_indices[self.nbr_indptr[index]:self.nbr_indptr[index + 1]]

    def customers_idx(self, index: int) -> np.ndarray:
        """Sorted customer indices (``γ``) of the AS at ``index``."""
        return self.cust_indices[self.cust_indptr[index]:self.cust_indptr[index + 1]]

    def peers_idx(self, index: int) -> np.ndarray:
        """Sorted peer indices (``ε``) of the AS at ``index``."""
        return self.peer_indices[self.peer_indptr[index]:self.peer_indptr[index + 1]]

    def providers_idx(self, index: int) -> np.ndarray:
        """Sorted provider indices (``π``) of the AS at ``index``."""
        return self.prov_indices[self.prov_indptr[index]:self.prov_indptr[index + 1]]

    # ------------------------------------------------------------------
    # O(1) membership / role tests
    # ------------------------------------------------------------------
    def is_customer_idx(self, owner: int, candidate: int) -> bool:
        """Whether ``candidate`` is a customer of ``owner`` (dense indices)."""
        return owner * self.n + candidate in self._customer_pairs

    def has_link_idx(self, left: int, right: int) -> bool:
        """Whether any link joins the two dense indices."""
        return min(left, right) * self.n + max(left, right) in self._link_pairs

    def is_customer(self, owner: int, candidate: int) -> bool:
        """Whether AS ``candidate`` is in ``γ(owner)`` (ASN-level, O(1))."""
        return self.is_customer_idx(self.index_of(owner), self.index_of(candidate))

    def has_link(self, left: int, right: int) -> bool:
        """Whether any link joins the two ASes (ASN-level, O(1))."""
        return self.has_link_idx(self.index_of(left), self.index_of(right))

    def role_of(self, asn: int, neighbor: int) -> Role:
        """Role ``neighbor`` plays for ``asn``, mirroring :meth:`ASGraph.role_of`."""
        u = self.index_of(asn)
        v = self.index_of(neighbor)
        n = self.n
        if v * n + u in self._customer_pairs:
            return Role.PROVIDER  # asn is the neighbor's customer
        if u * n + v in self._peer_pairs:
            return Role.PEER
        if u * n + v in self._customer_pairs:
            return Role.CUSTOMER
        raise TopologyError(f"AS {neighbor} is not a neighbor of AS {asn}")

    def degree(self, asn: int) -> int:
        """Total number of neighbors of an AS."""
        return int(self.degrees[self.index_of(asn)])

    # ------------------------------------------------------------------
    # ASN-level cached set views
    # ------------------------------------------------------------------
    def _set_view(
        self,
        cache: list[frozenset[int] | None],
        indptr: np.ndarray,
        indices: np.ndarray,
        asn: int,
    ) -> frozenset[int]:
        i = self.index_of(asn)
        view = cache[i]
        if view is None:
            row = indices[indptr[i]:indptr[i + 1]]
            view = frozenset(int(self.asn_array[j]) for j in row)
            cache[i] = view
        return view

    def neighbors(self, asn: int) -> frozenset[int]:
        """All neighbors of an AS (cached frozenset of ASNs)."""
        return self._set_view(self._nbr_sets, self.nbr_indptr, self.nbr_indices, asn)

    def customers(self, asn: int) -> frozenset[int]:
        """The customer set ``γ(X)`` (cached frozenset of ASNs)."""
        return self._set_view(self._cust_sets, self.cust_indptr, self.cust_indices, asn)

    def peers(self, asn: int) -> frozenset[int]:
        """The peer set ``ε(X)`` (cached frozenset of ASNs)."""
        return self._set_view(self._peer_sets, self.peer_indptr, self.peer_indices, asn)

    def providers(self, asn: int) -> frozenset[int]:
        """The provider set ``π(X)`` (cached frozenset of ASNs)."""
        return self._set_view(self._prov_sets, self.prov_indptr, self.prov_indices, asn)

    def __repr__(self) -> str:
        return (
            f"CompiledTopology(ases={self.n}, links={self.num_links}, "
            f"source_mutation_count={self.source_mutation_count})"
        )


#: Per-graph compile cache.  Weakly keyed so snapshots (e.g. the rolling
#: active graphs of a DynamicNetwork) do not accumulate.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[ASGraph, CompiledTopology]" = (
    weakref.WeakKeyDictionary()
)


def compile_topology(graph: ASGraph) -> CompiledTopology:
    """Return a compiled view of the graph, rebuilding only when stale.

    This is the canonical entry point of the invalidation contract:
    repeated calls on an unmutated graph return the same object, and the
    first call after any mutation compiles a fresh view.
    """
    compiled = _COMPILE_CACHE.get(graph)
    if compiled is None or compiled.is_stale(graph):
        compiled = CompiledTopology.compile(graph)
        _COMPILE_CACHE[graph] = compiled
    return compiled
