"""``repro.serve`` — the long-lived negotiation service.

One warm :class:`~repro.api.session.Session` per worker behind an
asyncio HTTP/JSON front end (stdlib only — no new runtime dependency),
scaled across processes by a pre-fork supervisor:

- :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio
  streams;
- :mod:`repro.serve.service` — versioned envelope routing onto the
  session, through a single-worker executor;
- :mod:`repro.serve.coalesce` — the cross-client scheduler packing
  concurrent negotiation requests into shared engine batches,
  bit-identically to the sequential path;
- :mod:`repro.serve.cache` — the two-tier result cache: per-worker LRU
  over the content-addressed disk store all workers share;
- :mod:`repro.serve.jobs` — the submit-then-poll async job API
  (directory-backed queue, crash-safe records, orphan requeue);
- :mod:`repro.serve.board` — per-worker stats snapshots merged into
  one cross-worker ``/stats`` view;
- :mod:`repro.serve.log` — the structured JSONL request log;
- :mod:`repro.serve.server` — sockets, graceful drain, and the
  ``repro serve`` entry point;
- :mod:`repro.serve.supervisor` — ``--workers N``: one bound socket,
  N forked workers, crash restarts with backoff, fan-out drain;
- :mod:`repro.serve.client` — the typed blocking client mirroring
  :class:`~repro.api.session.Session`'s surface.

``repro serve --help`` documents the knobs; the README's "Serving"
section shows the request shapes.
"""

from repro.serve.board import WorkerBoard
from repro.serve.cache import DiskResultStore, ResultCache
from repro.serve.client import ServeClient, ServeResponse
from repro.serve.jobs import JobRunner, JobStore
from repro.serve.server import (
    ReproServer,
    ServeConfig,
    run_server,
    serve_until_signal,
)
from repro.serve.service import ServeService
from repro.serve.supervisor import Supervisor, run_supervisor

__all__ = [
    "DiskResultStore",
    "JobRunner",
    "JobStore",
    "ReproServer",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "ServeResponse",
    "ServeService",
    "Supervisor",
    "WorkerBoard",
    "run_server",
    "run_supervisor",
    "serve_until_signal",
]
