"""``repro.serve`` — the long-lived negotiation service.

One warm :class:`~repro.api.session.Session` behind an asyncio
HTTP/JSON front end (stdlib only — no new runtime dependency):

- :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio
  streams;
- :mod:`repro.serve.service` — envelope routing onto the session,
  through a single-worker executor;
- :mod:`repro.serve.coalesce` — the cross-client scheduler packing
  concurrent negotiation requests into shared engine batches,
  bit-identically to the sequential path;
- :mod:`repro.serve.cache` — the fingerprint-keyed LRU cache of
  serialized response bytes;
- :mod:`repro.serve.log` — the structured JSONL request log;
- :mod:`repro.serve.server` — sockets, graceful drain, and the
  ``repro serve`` entry point;
- :mod:`repro.serve.client` — the blocking test/bench client.

``repro serve --help`` documents the knobs; the README's "Serving"
section shows the request shapes.
"""

from repro.serve.client import ServeClient, ServeResponse
from repro.serve.server import ReproServer, ServeConfig, run_server
from repro.serve.service import ServeService

__all__ = [
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeResponse",
    "ServeService",
    "run_server",
]
