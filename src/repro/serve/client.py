"""Tiny blocking client for ``repro serve`` (stdlib ``http.client``).

Tests, the CI smoke-load script, and ``benchmarks/bench_serve.py`` all
talk to the server through this class, so the request/response plumbing
is written once.  A client holds one keep-alive connection and is
**not** thread-safe — concurrent-load callers create one client per
thread, which is also what exercises the server's cross-client
coalescing.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping

__all__ = ["ServeClient", "ServeResponse"]


class ServeResponse:
    """Status + raw body of one exchange, with lazy JSON decoding."""

    def __init__(self, status: int, body: bytes) -> None:
        self.status = status
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServeResponse(status={self.status}, body={self.body[:80]!r})"


class ServeClient:
    """One keep-alive connection to a running ``repro serve``."""

    def __init__(self, host: str, port: int, *, timeout: float = 120.0) -> None:
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    def get(self, path: str) -> ServeResponse:
        self._connection.request("GET", path)
        return self._read()

    def post(self, path: str, payload: Mapping[str, Any] | None = None) -> ServeResponse:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        self._connection.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        return self._read()

    def _read(self) -> ServeResponse:
        response = self._connection.getresponse()
        return ServeResponse(response.status, response.read())

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
