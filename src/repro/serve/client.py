"""Typed blocking client for ``repro serve`` (stdlib ``http.client``).

:class:`ServeClient` mirrors :class:`~repro.api.session.Session`'s
surface, one method per route — ``topology()``, ``diversity()``,
``experiments()``, ``simulate()``, ``negotiate()`` — each taking the
same typed request dataclass and returning the same typed result, plus
a ``jobs`` namespace (``submit``/``poll``/``wait``/``cancel``) for the
async job API.  Tests, the CI smoke-load script, and
``benchmarks/bench_serve.py`` all talk to the server through this
class, so the request/response plumbing is written once.

Failures come back typed too: an ``error_result`` envelope is re-raised
as the :class:`~repro.errors.ReproError` subclass its ``(exit_code,
http_status)`` pair maps to in the shared
:data:`~repro.errors.STATUS_TABLE` (:func:`~repro.errors.
error_class_for`), so ``except ValidationError`` works the same against
a server as against a local session.

A client holds one keep-alive connection and is **not** thread-safe —
concurrent-load callers create one client per thread, which is also
what exercises the server's cross-client coalescing.  ``raw_get`` /
``raw_post`` / ``raw_delete`` expose the undecoded exchange for tests
that pin wire-level behavior (status codes, headers, exact bytes).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping

from repro.api.requests import (
    DiversityRequest,
    ExperimentsRequest,
    JobRequest,
    NegotiateRequest,
    SimulateRequest,
    TopologyRequest,
)
from repro.api.results import (
    DiversityResult,
    ExperimentsResult,
    JobStatusResult,
    NegotiateResult,
    SimulateResult,
    TopologyResult,
)
from repro.errors import ServiceError, error_class_for

__all__ = ["ServeClient", "ServeResponse"]


class ServeResponse:
    """Status + raw body + headers of one exchange, with lazy JSON."""

    def __init__(
        self, status: int, body: bytes, headers: Mapping[str, str] | None = None
    ) -> None:
        self.status = status
        self.body = body
        self.headers = {k.lower(): v for k, v in (headers or {}).items()}

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    @property
    def worker_pid(self) -> int | None:
        """The serving worker's pid (from ``X-Repro-Worker``)."""
        value = self.headers.get("x-repro-worker")
        return int(value) if value and value.isdigit() else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServeResponse(status={self.status}, body={self.body[:80]!r})"


class _JobsNamespace:
    """``client.jobs``: the submit-then-poll surface of the async API."""

    def __init__(self, client: "ServeClient") -> None:
        self._client = client

    def submit(
        self,
        workflow: str | JobRequest,
        request: Mapping[str, Any] | Any | None = None,
    ) -> JobStatusResult:
        """Submit a workflow for async execution; returns its first status.

        Accepts a prepared :class:`JobRequest`, or a workflow name plus
        either a typed request object or a bare payload mapping.
        """
        if isinstance(workflow, JobRequest):
            job = workflow
        else:
            if hasattr(request, "to_json_dict"):
                document: Mapping[str, Any] = request.to_json_dict()
            else:
                document = dict(request or {})
            job = JobRequest(workflow=workflow, request=document)
        response = self._client.raw_post("/v1/jobs", job.to_json_dict())
        payload = self._client._decoded(response, expected_status=202)
        return JobStatusResult.from_json_dict(payload)

    def poll(self, job_id: str) -> JobStatusResult:
        """One status observation of a job."""
        response = self._client.raw_get(f"/v1/jobs/{job_id}")
        return JobStatusResult.from_json_dict(self._client._decoded(response))

    def cancel(self, job_id: str) -> JobStatusResult:
        """Cancel a queued job; returns the resulting status."""
        response = self._client.raw_delete(f"/v1/jobs/{job_id}")
        return JobStatusResult.from_json_dict(self._client._decoded(response))

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        interval: float = 0.1,
        raise_on_failure: bool = True,
    ) -> JobStatusResult:
        """Poll until the job is terminal; return the final status.

        A ``failed`` job re-raises its recorded ``error_result`` as the
        typed exception the workflow would have raised locally (disable
        with ``raise_on_failure=False``).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.poll(job_id)
            if status.is_terminal:
                if status.state == "failed" and raise_on_failure:
                    raise _error_from_envelope(status.error or {})
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state} after {timeout:g}s"
                )
            time.sleep(interval)


def _error_from_envelope(document: Mapping[str, Any]) -> Exception:
    message = str(document.get("error", "unknown server error"))
    try:
        exit_code = int(document.get("exit_code", 1))
        http_status = int(document.get("http_status", 500))
    except (TypeError, ValueError):
        exit_code, http_status = 1, 500
    return error_class_for(exit_code, http_status)(message)


class ServeClient:
    """One keep-alive connection to a running ``repro serve``."""

    def __init__(self, host: str, port: int, *, timeout: float = 120.0) -> None:
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )
        self.jobs = _JobsNamespace(self)
        #: Pid of the worker that served the most recent response.
        self.last_worker_pid: int | None = None

    # ------------------------------------------------------------------
    # Raw exchanges (tests pin wire behavior through these)
    # ------------------------------------------------------------------
    def raw_get(self, path: str) -> ServeResponse:
        self._connection.request("GET", path)
        return self._read()

    def raw_post(
        self, path: str, payload: Mapping[str, Any] | None = None
    ) -> ServeResponse:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        self._connection.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        return self._read()

    def raw_delete(self, path: str) -> ServeResponse:
        self._connection.request("DELETE", path)
        return self._read()

    # Backwards-compatible aliases for the pre-typed client surface.
    get = raw_get
    post = raw_post

    def _read(self) -> ServeResponse:
        response = self._connection.getresponse()
        result = ServeResponse(
            response.status, response.read(), dict(response.getheaders())
        )
        if result.worker_pid is not None:
            self.last_worker_pid = result.worker_pid
        return result

    def _decoded(
        self, response: ServeResponse, *, expected_status: int = 200
    ) -> dict[str, Any]:
        """Decode an envelope; raise the typed error on failure statuses."""
        try:
            document = response.json()
        except (ValueError, UnicodeDecodeError) as error:
            raise ServiceError(
                f"server returned non-JSON body (status {response.status})"
            ) from error
        if not isinstance(document, dict):
            raise ServiceError(
                f"server returned a non-envelope body (status {response.status})"
            )
        if document.get("kind") == "error_result":
            raise _error_from_envelope(document)
        if response.status != expected_status:
            raise ServiceError(
                f"unexpected status {response.status} "
                f"(expected {expected_status})"
            )
        return document

    # ------------------------------------------------------------------
    # Typed routes: one method per workflow, mirroring Session
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """The decoded ``serve_health`` envelope."""
        return self._decoded(self.raw_get("/v1/health"))

    def stats(self) -> dict[str, Any]:
        """The decoded (merged, cross-worker) ``serve_stats`` envelope."""
        return self._decoded(self.raw_get("/v1/stats"))

    def topology(self, request: TopologyRequest | None = None) -> TopologyResult:
        return self._workflow("topology", request, TopologyResult)

    def diversity(self, request: DiversityRequest | None = None) -> DiversityResult:
        return self._workflow("diversity", request, DiversityResult)

    def experiments(
        self, request: ExperimentsRequest | None = None
    ) -> ExperimentsResult:
        return self._workflow("experiments", request, ExperimentsResult)

    def simulate(self, request: SimulateRequest | None = None) -> SimulateResult:
        return self._workflow("simulate", request, SimulateResult)

    def negotiate(self, request: NegotiateRequest | None = None) -> NegotiateResult:
        return self._workflow("negotiate", request, NegotiateResult)

    def _workflow(self, name: str, request: Any, result_cls: Any) -> Any:
        payload = None if request is None else request.to_json_dict()
        response = self.raw_post(f"/v1/{name}", payload)
        return result_cls.from_json_dict(self._decoded(response))

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
