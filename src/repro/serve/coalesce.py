"""Cross-client batch coalescing for negotiation requests.

The scheduler is the reason ``repro serve`` exists as a *service*
rather than a CLI-per-request: negotiation requests arriving within a
short window are packed into **one**
:meth:`~repro.api.session.Session.negotiate_many` call, which solves
every client's trials in a single vectorized
:class:`~repro.bargaining.engine.GameBatch` instead of one small batch
per client.  Requests group by
:meth:`~repro.api.requests.NegotiateRequest.coalesce_key` (distribution
name + choice-set cardinality) — the only parameters
:meth:`~repro.bargaining.engine.GameBatch.from_choice_sets` requires a
batch to share.

**Coalescing never changes results.** Each request's trials are drawn
from its own seeded RNG regardless of batchmates, and the engine's
kernels are row-independent, so a coalesced response is bit-identical
to the response the same request gets alone (pinned by the serve test
suite).  A group flushes when its window timer fires or when it reaches
``max_batch``, whichever comes first.  If a *mixed* batch fails, every
member is retried solo so one poison request cannot fail its
batchmates — and the solo retry is the sequential path, so isolation
costs no correctness.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Sequence
from dataclasses import dataclass, field

from repro.api.requests import NegotiateRequest
from repro.api.results import NegotiateResult

__all__ = ["CoalescingScheduler"]

#: ``solve`` signature: a packed cohort in, one result per request out.
Solver = Callable[[Sequence[NegotiateRequest]], Awaitable[list[NegotiateResult]]]


@dataclass
class _PendingGroup:
    """Requests of one coalesce key waiting for the window to close."""

    entries: list[tuple[NegotiateRequest, asyncio.Future]] = field(
        default_factory=list
    )
    timer: asyncio.TimerHandle | None = None


class CoalescingScheduler:
    """Packs concurrent negotiation requests into shared engine batches.

    ``window_s <= 0`` or ``max_batch <= 1`` disables coalescing: every
    request solves alone (the sequential path), which is also the
    baseline the byte-identity tests and the serve benchmark compare
    against.
    """

    def __init__(
        self, *, window_s: float, max_batch: int, solve: Solver
    ) -> None:
        self.window_s = window_s
        self.max_batch = max_batch
        self._solve = solve
        self._groups: dict[tuple[str, int], _PendingGroup] = {}
        self._inflight: set[asyncio.Task] = set()
        self._requests_total = 0
        self._batches_total = 0
        self._coalesced_requests = 0
        self._max_batch_size = 0
        self._solo_retries = 0

    @property
    def enabled(self) -> bool:
        """Whether requests may share batches at all."""
        return self.window_s > 0.0 and self.max_batch > 1

    async def submit(self, request: NegotiateRequest) -> tuple[NegotiateResult, int]:
        """Schedule one request; returns ``(result, batch_size)``.

        ``batch_size`` is how many requests shared the engine batch that
        produced this result (1 when coalescing is off or nobody else
        arrived in the window) — the request log records it.
        """
        self._requests_total += 1
        if not self.enabled:
            results = await self._run_solve([request])
            return results[0], 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = request.coalesce_key()
        group = self._groups.get(key)
        if group is None:
            group = _PendingGroup()
            self._groups[key] = group
            group.timer = loop.call_later(self.window_s, self._flush, key)
        group.entries.append((request, future))
        if len(group.entries) >= self.max_batch:
            self._flush(key)
        return await future

    def _flush(self, key: tuple[str, int]) -> None:
        """Close one group's window and start solving its batch."""
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        task = asyncio.get_running_loop().create_task(
            self._run_batch(group.entries)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(
        self, entries: list[tuple[NegotiateRequest, asyncio.Future]]
    ) -> None:
        requests = [request for request, _ in entries]
        size = len(requests)
        try:
            results = await self._run_solve(requests)
        except Exception as error:
            if size == 1:
                self._resolve(entries[0][1], error=error)
                return
            # Isolate the poison request: the solo path is the
            # sequential path, so healthy batchmates lose nothing.
            for request, future in entries:
                self._solo_retries += 1
                try:
                    solo = await self._run_solve([request])
                except Exception as solo_error:
                    self._resolve(future, error=solo_error)
                else:
                    self._resolve(future, result=(solo[0], 1))
            return
        for (_, future), result in zip(entries, results):
            self._resolve(future, result=(result, size))

    async def _run_solve(
        self, requests: Sequence[NegotiateRequest]
    ) -> list[NegotiateResult]:
        self._batches_total += 1
        size = len(requests)
        self._max_batch_size = max(self._max_batch_size, size)
        if size > 1:
            self._coalesced_requests += size
        return await self._solve(requests)

    @staticmethod
    def _resolve(
        future: asyncio.Future, *, result=None, error: Exception | None = None
    ) -> None:
        """Deliver to a waiter unless it already went away (disconnect)."""
        if future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    async def drain(self) -> None:
        """Flush every pending group and wait for all in-flight batches."""
        for key in list(self._groups):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def stats(self) -> dict[str, float | int | bool]:
        """Counters for ``/stats``: how much coalescing actually happened."""
        return {
            "enabled": self.enabled,
            "window_ms": self.window_s * 1000.0,
            "max_batch": self.max_batch,
            "requests": self._requests_total,
            "batches": self._batches_total,
            "coalesced_requests": self._coalesced_requests,
            "max_batch_size": self._max_batch_size,
            "solo_retries": self._solo_retries,
        }
