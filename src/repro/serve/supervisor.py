"""Pre-fork supervisor: one bound socket, N worker processes.

``repro serve --workers N`` (N ≥ 2) runs this module instead of a
single asyncio process:

1. the supervisor binds the listening socket **once** and prints the
   discovery line;
2. it forks N workers; each inherits the bound socket across
   ``fork()`` and runs the ordinary single-process server on it
   (:func:`~repro.serve.server.serve_until_signal` with
   ``sock=...``) — one shared kernel listen queue, every worker
   accepting from it.  Inherited-fd accept is chosen over
   ``SO_REUSEPORT`` deliberately: with one queue, connections queued
   behind a worker that dies are simply accepted by its siblings,
   which is what lets a SIGKILLed worker vanish without any client
   seeing a dropped connection;
3. it reaps dead workers and restarts them with exponential backoff
   (0.1 s doubling, capped at 5 s; reset once a worker survives 5 s),
   releasing job claims the dead worker held so another worker re-runs
   them;
4. SIGTERM/SIGINT fan out as SIGTERM to every worker, each drains its
   in-flight requests (coalesced batches and running jobs included),
   and the supervisor exits 0 once all workers are reaped.

Workers share state through the filesystem only — the content-addressed
result store, the job queue, and the stats board all live under one
``--state-dir`` (a supervisor-owned tempdir when unset) — so the
supervisor never proxies a byte of request traffic.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import os
import shutil
import signal
import socket
import sys
import tempfile
import time
import traceback

from repro.errors import ServiceError
from repro.serve.jobs import JobStore
from repro.serve.server import ServeConfig, serve_until_signal

__all__ = ["Supervisor", "run_supervisor"]

#: A worker dying sooner than this is an early death: backoff escalates.
STABLE_AFTER_S = 5.0
#: First restart delay; doubles per consecutive early death.
BACKOFF_BASE_S = 0.1
#: Restart delay ceiling.
BACKOFF_MAX_S = 5.0


def _arm_parent_death_signal() -> None:
    """Linux: have the kernel SIGTERM this worker when its parent dies.

    A SIGKILLed supervisor cannot fan out the drain, and an orphaned
    worker would keep accepting on the shared socket forever.
    ``PR_SET_PDEATHSIG`` closes that hole at the kernel level; the
    ``parent_pid`` watchdog in :func:`serve_until_signal` is the
    portable fallback (and covers the fork-to-prctl race).
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGTERM, 0, 0, 0)  # 1 == PR_SET_PDEATHSIG
    except (OSError, AttributeError):  # pragma: no cover - non-Linux
        pass


def _worker_main(config: ServeConfig, sock: socket.socket) -> int:
    """The body of one forked worker (never returns to the fork site)."""
    # The child inherited the supervisor's Python-level signal handlers;
    # reset them so the worker's own asyncio drain handlers (installed
    # by serve_until_signal) are the only ones in play.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    parent_pid = os.getppid()
    _arm_parent_death_signal()
    try:
        return asyncio.run(
            serve_until_signal(
                config, sock=sock, announce=False, parent_pid=parent_pid
            )
        )
    except KeyboardInterrupt:
        return 0


class Supervisor:
    """Owns the bound socket and the worker pool of one ``--workers N`` run."""

    def __init__(self, config: ServeConfig, sock: socket.socket) -> None:
        if config.state_dir is None:
            raise ServiceError("supervisor requires a resolved state_dir")
        self.config = config
        self.sock = sock
        self.jobs = JobStore(os.path.join(config.state_dir, "jobs"))
        #: pid → monotonic spawn time of every live worker.
        self.workers: dict[int, float] = {}
        self.restarts = 0
        self._early_deaths = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> int:
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = _worker_main(self.config, self.sock)
            except BaseException:  # noqa: BLE001 - the child must never
                # fall through into the supervisor's stack.
                traceback.print_exc()
            finally:
                # Skip atexit/stdio teardown shared with the parent.
                os._exit(code)
        self.workers[pid] = time.monotonic()
        return pid

    def _reap(self) -> None:
        """Collect every dead worker; requeue its jobs; restart it."""
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            born = self.workers.pop(pid, None)
            # Authoritative orphan release: any claim not held by a
            # currently live worker frees its job for the survivors.
            self.jobs.requeue_orphans(alive=set(self.workers))
            if self._stopping:
                continue
            lifetime = 0.0 if born is None else time.monotonic() - born
            if os.WIFSIGNALED(status):
                why = f"killed by signal {os.WTERMSIG(status)}"
            else:
                why = f"exited with code {os.WEXITSTATUS(status)}"
            if lifetime < STABLE_AFTER_S:
                self._early_deaths += 1
            else:
                self._early_deaths = 0
            delay = (
                min(BACKOFF_BASE_S * 2 ** (self._early_deaths - 1), BACKOFF_MAX_S)
                if self._early_deaths
                else 0.0
            )
            print(
                f"repro serve: worker {pid} {why} after {lifetime:.1f}s; "
                f"restarting{f' in {delay:.1f}s' if delay else ''}",
                file=sys.stderr,
                flush=True,
            )
            if delay:
                time.sleep(delay)
            if not self._stopping:
                self.restarts += 1
                self._spawn()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _on_signal(self, signum: int, frame: object) -> None:
        self._stopping = True

    def run(self) -> int:
        """Spawn the pool; babysit until a stop signal; drain; return 0."""
        previous = {
            signum: signal.signal(signum, self._on_signal)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            for _ in range(self.config.workers):
                self._spawn()
            while not self._stopping:
                self._reap()
                # A stop signal interrupts the sleep (PEP 475 restarts
                # it only after the handler ran, and the handler set
                # the flag the loop checks next).
                time.sleep(0.05)
            # Fan the drain out: every worker finishes its in-flight
            # requests and jobs, then exits 0.
            for pid in list(self.workers):
                with contextlib.suppress(ProcessLookupError):
                    os.kill(pid, signal.SIGTERM)
            for pid in list(self.workers):
                with contextlib.suppress(ChildProcessError):
                    os.waitpid(pid, 0)
                self.workers.pop(pid, None)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.sock.close()
        return 0


def run_supervisor(config: ServeConfig) -> int:
    """Blocking entry point of ``repro serve --workers N``; returns 0.

    Binds the socket, resolves the shared state dir (owning a tempdir
    when ``--state-dir`` was not given), prints the discovery line, and
    runs the supervision loop.
    """
    owns_state = config.state_dir is None
    state_dir = config.state_dir or tempfile.mkdtemp(prefix="repro-serve-state-")
    try:
        sock = socket.create_server(
            (config.host, config.port), backlog=128, reuse_port=False
        )
    except OSError as error:
        if owns_state:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise ServiceError(
            f"cannot bind {config.host}:{config.port}: "
            f"{error.strerror or error}"
        ) from error
    port = sock.getsockname()[1]
    worker_config = dataclasses.replace(config, port=port, state_dir=state_dir)
    print(
        f"repro serve: listening on http://{config.host}:{port} "
        f"(workers={config.workers})",
        flush=True,
    )
    try:
        return Supervisor(worker_config, sock).run()
    finally:
        if owns_state:
            shutil.rmtree(state_dir, ignore_errors=True)
