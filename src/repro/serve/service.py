"""Request routing and execution: HTTP envelopes → one warm session.

The service owns the pieces the server wires together:

- **one** :class:`~repro.api.session.Session`, driven through a
  single-worker executor so compute runs off the event loop while
  staying strictly serialized (the session's own lock makes even that
  serialization a guarantee, not an accident);
- the :class:`~repro.serve.coalesce.CoalescingScheduler` for
  negotiation requests;
- the :class:`~repro.serve.cache.ResultCache` of serialized envelope
  bytes, keyed by request/topology content fingerprints;
- the :class:`~repro.serve.log.RequestLog`.

Routes accept ``POST /<name>`` and ``POST /v1/<name>`` for the five
workflow envelopes (``topology``, ``diversity``, ``experiments``,
``simulate``, ``negotiate``), plus ``GET /health`` and ``GET /stats``.
A request body may be a full schema-versioned envelope or a bare
payload object (convenient for ``curl``); an empty body means "all
defaults".  Responses are always envelopes — results on success, an
``error_result`` (message + the CLI exit code + the HTTP status, from
the one :data:`~repro.errors.STATUS_TABLE`) on failure — serialized
exactly like ``--format json`` prints them, trailing newline included,
so a served response is byte-identical to the CLI's output for the
same request.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.api.requests import (
    DiversityRequest,
    ExperimentsRequest,
    NegotiateRequest,
    SimulateRequest,
    TopologyRequest,
)
from repro.api.results import NegotiateResult
from repro.api.session import Session
from repro.envelope import envelope
from repro.errors import (
    ReproError,
    ServiceUnavailableError,
    ValidationError,
    exit_code_for,
    http_status_for,
)
from repro.serve.cache import ResultCache, request_fingerprint
from repro.serve.coalesce import CoalescingScheduler
from repro.serve.http import HttpRequest
from repro.serve.log import RequestLog

__all__ = ["ROUTES", "ServeService", "serialize_envelope"]


def serialize_envelope(document: dict[str, Any]) -> bytes:
    """Envelope → response bytes, exactly as the CLI prints them."""
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _error_payload(message: str, *, exit_code: int, http_status: int) -> bytes:
    return serialize_envelope(
        envelope(
            "error_result",
            {
                "error": message,
                "exit_code": exit_code,
                "http_status": http_status,
            },
        )
    )


def _error_response(error: ReproError) -> tuple[int, bytes]:
    status = http_status_for(error)
    return status, _error_payload(
        str(error), exit_code=exit_code_for(error), http_status=status
    )


@dataclass(frozen=True)
class _Route:
    """One workflow route: its request type and cacheability rule."""

    request_cls: type
    workflow: str
    #: Side-effecting requests (file writes) must never be served from
    #: cache — a replayed body would silently skip the write.
    cacheable: Callable[[Any], bool]


ROUTES: dict[str, _Route] = {
    "topology": _Route(TopologyRequest, "topology", lambda r: r.output is None),
    "diversity": _Route(DiversityRequest, "diversity", lambda r: True),
    "experiments": _Route(ExperimentsRequest, "experiments", lambda r: True),
    "simulate": _Route(SimulateRequest, "simulate", lambda r: r.trace_out is None),
    "negotiate": _Route(NegotiateRequest, "negotiate", lambda r: True),
}


def _build_request(request_cls: type, body: bytes) -> Any:
    """Decode a body (envelope, bare payload, or empty) into a request."""
    text = body.decode("utf-8", errors="replace").strip()
    if not text:
        data: Any = {}
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"request body is not valid JSON: {error}"
            ) from error
    if not isinstance(data, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    if "kind" not in data and "schema_version" not in data:
        data = envelope(request_cls.kind, data)
    return request_cls.from_json_dict(data)


class ServeService:
    """Everything behind the socket: routing, caching, coalescing, logging."""

    def __init__(
        self,
        session: Session,
        *,
        coalesce_window_ms: float = 5.0,
        max_batch: int = 32,
        cache_entries: int | None = 256,
        request_log: RequestLog | None = None,
    ) -> None:
        self.session = session
        self.cache = ResultCache(cache_entries)
        self.coalescer = CoalescingScheduler(
            window_s=coalesce_window_ms / 1000.0,
            max_batch=max_batch,
            solve=self._solve_batch,
        )
        self.log = request_log if request_log is not None else RequestLog(None)
        #: Compute runs here, off the event loop but strictly serialized.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self.requests_total = 0
        self.active = 0
        self.draining = False

    # ------------------------------------------------------------------
    # Compute plumbing
    # ------------------------------------------------------------------
    async def _call(self, fn: Callable, *args: Any) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _solve_batch(
        self, requests: Sequence[NegotiateRequest]
    ) -> list[NegotiateResult]:
        return await self._call(self.session.negotiate_many, list(requests))

    # ------------------------------------------------------------------
    # HTTP entry point
    # ------------------------------------------------------------------
    async def handle(self, request: HttpRequest) -> tuple[int, bytes]:
        """Serve one parsed request; always returns a complete response."""
        started = time.perf_counter()
        queue_depth = self.active
        self.active += 1
        self.requests_total += 1
        kind: str | None = None
        cache_state: str | None = None
        batch_size: int | None = None
        try:
            status, body, kind, cache_state, batch_size = await self._route(
                request
            )
        except ReproError as error:
            status, body = _error_response(error)
        except Exception as error:  # noqa: BLE001 - a route bug must not
            # tear down the connection loop; answer 500 and keep serving.
            status, body = 500, _error_payload(
                f"internal error: {error}", exit_code=1, http_status=500
            )
        finally:
            self.active -= 1
        latency_ms = (time.perf_counter() - started) * 1000.0
        self.log.record(
            method=request.method,
            path=request.path,
            status=status,
            latency_ms=round(latency_ms, 3),
            queue_depth=queue_depth,
            kind=kind,
            cache=cache_state,
            batch_size=batch_size,
        )
        return status, body

    async def _route(
        self, request: HttpRequest
    ) -> tuple[int, bytes, str | None, str | None, int | None]:
        path = request.path
        if path.startswith("/v1/"):
            path = path[len("/v1") :]
        if path == "/health":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET")
            status = "draining" if self.draining else "ok"
            body = serialize_envelope(envelope("serve_health", {"status": status}))
            return 200, body, "serve_health", None, None
        if path == "/stats":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET")
            return 200, serialize_envelope(self.stats_payload()), (
                "serve_stats"
            ), None, None
        route = ROUTES.get(path.strip("/"))
        if route is None:
            known = ", ".join(sorted(ROUTES))
            body = _error_payload(
                f"unknown path {request.path!r}; routes: /health, /stats, "
                f"and POST /{{{known}}} (optionally under /v1)",
                exit_code=2,
                http_status=404,
            )
            return 404, body, None, None, None
        if request.method != "POST":
            return self._method_not_allowed(request, "POST")
        if self.draining:
            raise ServiceUnavailableError(
                "server is draining; not accepting new work"
            )
        typed = _build_request(route.request_cls, request.body)
        return await self._execute(route, typed)

    @staticmethod
    def _method_not_allowed(
        request: HttpRequest, allowed: str
    ) -> tuple[int, bytes, str | None, str | None, int | None]:
        body = _error_payload(
            f"method {request.method} not allowed for {request.path} "
            f"(use {allowed})",
            exit_code=2,
            http_status=405,
        )
        return 405, body, None, None, None

    async def _execute(
        self, route: _Route, typed: Any
    ) -> tuple[int, bytes, str, str, int | None]:
        """Run one typed workflow request, through the cache when allowed."""
        kind = route.request_cls.kind
        key: str | None = None
        if route.cacheable(typed):
            extra = None
            if isinstance(typed, DiversityRequest) and typed.topology is not None:
                # Key per-topology results on file *content*, so an
                # edited as-rel file misses instead of serving stale
                # bytes.  This also validates the path up front.
                fingerprint = await self._call(
                    self.session.topology_fingerprint, typed.topology
                )
                extra = {"topology_fingerprint": fingerprint}
            key = request_fingerprint(typed, extra=extra)
            cached = self.cache.lookup(key)
            if cached is not None:
                return 200, cached, kind, "hit", None
        batch_size: int | None = None
        if isinstance(typed, NegotiateRequest):
            result, batch_size = await self.coalescer.submit(typed)
        else:
            workflow = getattr(self.session, route.workflow)
            result = await self._call(workflow, typed)
        body = serialize_envelope(result.to_json_dict())
        if key is not None:
            self.cache.store(key, body)
            return 200, body, kind, "miss", batch_size
        return 200, body, kind, "bypass", batch_size

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict[str, Any]:
        """The ``serve_stats`` envelope served on ``/stats``."""
        return envelope(
            "serve_stats",
            {
                "requests_total": self.requests_total,
                "active_requests": self.active,
                "draining": self.draining,
                "result_cache": self.cache.stats(),
                "coalescing": self.coalescer.stats(),
                "session": self.session.cache_stats(),
                "log_records": self.log.records_written,
            },
        )

    async def aclose(self) -> None:
        """Drain the coalescer, stop the worker, close the log."""
        await self.coalescer.drain()
        self._executor.shutdown(wait=True)
        self.log.close()
