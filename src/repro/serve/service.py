"""Request routing and execution: HTTP envelopes → one warm session.

The service owns the pieces the server wires together:

- **one** :class:`~repro.api.session.Session`, driven through a
  single-worker executor so compute runs off the event loop while
  staying strictly serialized (the session's own lock makes even that
  serialization a guarantee, not an accident);
- the :class:`~repro.serve.coalesce.CoalescingScheduler` for
  negotiation requests;
- the two-tier :class:`~repro.serve.cache.ResultCache` of serialized
  envelope bytes — a per-process LRU over the content-addressed disk
  store every worker of a pre-fork supervisor shares;
- the :class:`~repro.serve.jobs.JobStore`/:class:`~repro.serve.jobs.
  JobRunner` pair behind the async job API;
- the :class:`~repro.serve.board.WorkerBoard` that merges per-worker
  counters into one ``/stats`` view;
- the :class:`~repro.serve.log.RequestLog`.

Routing is **versioned**: ``/v1/<name>`` is canonical for the five
workflow envelopes (``topology``, ``diversity``, ``experiments``,
``simulate``, ``negotiate``), the job API (``POST /v1/jobs``,
``GET``/``DELETE /v1/jobs/<id>``), ``GET /v1/health`` and ``GET
/v1/stats``.  The bare legacy paths still answer, but carry a
``Deprecation: true`` response header and ``"meta": {"deprecated":
true}`` in the envelope — the body is re-marked *after* the byte cache,
so cached bytes stay canonical and both forms are served from one
entry.

A request body may be a full schema-versioned envelope or a bare
payload object (convenient for ``curl``); an empty body means "all
defaults".  Responses are always envelopes — results on success, an
``error_result`` (message + the CLI exit code + the HTTP status, from
the one :data:`~repro.errors.STATUS_TABLE`) on failure — serialized
exactly like ``--format json`` prints them, trailing newline included,
so a served response is byte-identical to the CLI's output for the
same request.  Every response names its worker process in an
``X-Repro-Worker`` header (a framing header, never body bytes).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import re
import tempfile
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api.requests import (
    DiversityRequest,
    ExperimentsRequest,
    JobRequest,
    NegotiateRequest,
    SimulateRequest,
    TopologyRequest,
)
from repro.api.results import NegotiateResult
from repro.api.session import Session
from repro.envelope import envelope
from repro.errors import (
    ReproError,
    ServiceUnavailableError,
    ValidationError,
    exit_code_for,
    http_status_for,
)
from repro.serve.board import WorkerBoard
from repro.serve.cache import (
    DiskResultStore,
    ResultCache,
    merge_cache_stats,
    request_fingerprint,
)
from repro.serve.coalesce import CoalescingScheduler
from repro.serve.http import HttpRequest
from repro.serve.jobs import JobRunner, JobStore
from repro.serve.log import RequestLog

__all__ = ["ROUTES", "JOB_SESSION_WORKFLOWS", "ServeService", "serialize_envelope"]


def serialize_envelope(document: dict[str, Any]) -> bytes:
    """Envelope → response bytes, exactly as the CLI prints them."""
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _error_payload(message: str, *, exit_code: int, http_status: int) -> bytes:
    return serialize_envelope(
        envelope(
            "error_result",
            {
                "error": message,
                "exit_code": exit_code,
                "http_status": http_status,
            },
        )
    )


def _error_response(error: ReproError) -> tuple[int, bytes]:
    status = http_status_for(error)
    return status, _error_payload(
        str(error), exit_code=exit_code_for(error), http_status=status
    )


@dataclass(frozen=True)
class _Route:
    """One workflow route: its request type and cacheability rule."""

    request_cls: type
    workflow: str
    #: Side-effecting requests (file writes) must never be served from
    #: cache — a replayed body would silently skip the write.
    cacheable: Callable[[Any], bool]


ROUTES: dict[str, _Route] = {
    "topology": _Route(TopologyRequest, "topology", lambda r: r.output is None),
    "diversity": _Route(DiversityRequest, "diversity", lambda r: True),
    "experiments": _Route(ExperimentsRequest, "experiments", lambda r: True),
    # Population specs are referenced by path, whose contents the cache
    # key cannot see — population-carrying runs are never cached.
    "simulate": _Route(
        SimulateRequest,
        "simulate",
        lambda r: r.trace_out is None and r.population is None,
    ),
    "negotiate": _Route(NegotiateRequest, "negotiate", lambda r: True),
}

#: Job workflow name → the :class:`Session` method that runs it.
JOB_SESSION_WORKFLOWS: dict[str, str] = {
    "topology": "topology",
    "diversity": "diversity",
    "experiments": "experiments",
    "grc-all": "grc_all",
    "simulate": "simulate",
    "negotiate": "negotiate",
    "sweep": "sweep",
}


def _build_request(request_cls: type, body: bytes) -> Any:
    """Decode a body (envelope, bare payload, or empty) into a request."""
    text = body.decode("utf-8", errors="replace").strip()
    if not text:
        data: Any = {}
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"request body is not valid JSON: {error}"
            ) from error
    if not isinstance(data, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    if "kind" not in data and "schema_version" not in data:
        data = envelope(request_cls.kind, data)
    return request_cls.from_json_dict(data)


def _mark_deprecated(body: bytes) -> bytes:
    """Re-serialize a response envelope with ``meta.deprecated = true``."""
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):  # pragma: no cover
        return body
    if not isinstance(document, dict):  # pragma: no cover - always envelopes
        return body
    meta = dict(document.get("meta") or {})
    meta["deprecated"] = True
    document["meta"] = meta
    return serialize_envelope(document)


class ServeService:
    """Everything behind the socket: routing, caching, coalescing, jobs."""

    def __init__(
        self,
        session: Session,
        *,
        coalesce_window_ms: float = 5.0,
        max_batch: int = 32,
        cache_entries: int | None = 256,
        request_log: RequestLog | None = None,
        state_dir: str | os.PathLike[str] | None = None,
    ) -> None:
        self.session = session
        # The state dir is the cross-process substrate: shared result
        # store, job queue, worker board.  Without one a private
        # tempdir is used (single-process semantics, cleaned on close).
        self._state_tmp: tempfile.TemporaryDirectory | None = None
        if state_dir is None:
            self._state_tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            state_dir = self._state_tmp.name
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        store = (
            DiskResultStore(self.state_dir / "results-cache")
            if cache_entries != 0
            else None
        )
        self.cache = ResultCache(cache_entries, store=store)
        self.coalescer = CoalescingScheduler(
            window_s=coalesce_window_ms / 1000.0,
            max_batch=max_batch,
            solve=self._solve_batch,
        )
        self.jobs = JobStore(self.state_dir / "jobs")
        self.job_runner = JobRunner(self.jobs, self._execute_job)
        # A (re)starting worker releases claims of dead predecessors so
        # their jobs run again instead of hanging "running" forever.
        self.jobs.requeue_orphans()
        self.board = WorkerBoard(self.state_dir / "workers")
        self.log = request_log if request_log is not None else RequestLog(None)
        #: Compute runs here, off the event loop but strictly serialized.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self.requests_total = 0
        self.active = 0
        self.draining = False

    # ------------------------------------------------------------------
    # Compute plumbing
    # ------------------------------------------------------------------
    async def _call(self, fn: Callable, *args: Any) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _solve_batch(
        self, requests: Sequence[NegotiateRequest]
    ) -> list[NegotiateResult]:
        return await self._call(self.session.negotiate_many, list(requests))

    # ------------------------------------------------------------------
    # HTTP entry point
    # ------------------------------------------------------------------
    async def handle(
        self, request: HttpRequest
    ) -> tuple[int, bytes, dict[str, str]]:
        """Serve one parsed request: ``(status, body, extra headers)``."""
        started = time.perf_counter()
        queue_depth = self.active
        self.active += 1
        self.requests_total += 1
        kind: str | None = None
        cache_state: str | None = None
        batch_size: int | None = None
        try:
            status, body, kind, cache_state, batch_size = await self._route(
                request
            )
        except ReproError as error:
            status, body = _error_response(error)
        except Exception as error:  # noqa: BLE001 - a route bug must not
            # tear down the connection loop; answer 500 and keep serving.
            status, body = 500, _error_payload(
                f"internal error: {error}", exit_code=1, http_status=500
            )
        finally:
            self.active -= 1
        headers = {"X-Repro-Worker": str(self.board.pid)}
        if not request.path.startswith("/v1/") and status != 404:
            # Legacy unversioned path: same entry, marked.  The byte
            # cache holds only canonical bodies, so the marking happens
            # after cache lookup/store and both forms share one entry.
            body = _mark_deprecated(body)
            headers["Deprecation"] = "true"
        latency_ms = (time.perf_counter() - started) * 1000.0
        self.log.record(
            method=request.method,
            path=request.path,
            status=status,
            latency_ms=round(latency_ms, 3),
            queue_depth=queue_depth,
            kind=kind,
            cache=cache_state,
            batch_size=batch_size,
        )
        self.board.publish(self._snapshot())
        return status, body, headers

    async def _route(
        self, request: HttpRequest
    ) -> tuple[int, bytes, str | None, str | None, int | None]:
        path = request.path
        if path.startswith("/v1/"):
            path = path[len("/v1") :]
        if path == "/jobs" or path.startswith("/jobs/"):
            return await self._route_jobs(request, path)
        if path == "/health":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET")
            status = "draining" if self.draining else "ok"
            body = serialize_envelope(envelope("serve_health", {"status": status}))
            return 200, body, "serve_health", None, None
        if path == "/stats":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET")
            return 200, serialize_envelope(self.stats_payload()), (
                "serve_stats"
            ), None, None
        route = ROUTES.get(path.strip("/"))
        if route is None:
            known = ", ".join(sorted(ROUTES))
            body = _error_payload(
                f"unknown path {request.path!r}; routes: /v1/health, "
                f"/v1/stats, /v1/jobs, and POST /v1/{{{known}}}",
                exit_code=2,
                http_status=404,
            )
            return 404, body, None, None, None
        if request.method != "POST":
            return self._method_not_allowed(request, "POST")
        if self.draining:
            raise ServiceUnavailableError(
                "server is draining; not accepting new work"
            )
        typed = _build_request(route.request_cls, request.body)
        return await self._execute(route, typed)

    @staticmethod
    def _method_not_allowed(
        request: HttpRequest, allowed: str
    ) -> tuple[int, bytes, str | None, str | None, int | None]:
        body = _error_payload(
            f"method {request.method} not allowed for {request.path} "
            f"(use {allowed})",
            exit_code=2,
            http_status=405,
        )
        return 405, body, None, None, None

    async def _execute(
        self, route: _Route, typed: Any
    ) -> tuple[int, bytes, str, str, int | None]:
        """Run one typed workflow request, through the cache when allowed."""
        kind = route.request_cls.kind
        key: str | None = None
        if route.cacheable(typed):
            extra = None
            if isinstance(typed, DiversityRequest) and typed.topology is not None:
                # Key per-topology results on file *content*, so an
                # edited as-rel file misses instead of serving stale
                # bytes.  This also validates the path up front.
                fingerprint = await self._call(
                    self.session.topology_fingerprint, typed.topology
                )
                extra = {"topology_fingerprint": fingerprint}
            key = request_fingerprint(typed, extra=extra)
            cached = self.cache.lookup(key)
            if cached is not None:
                return 200, cached, kind, "hit", None
        batch_size: int | None = None
        if isinstance(typed, NegotiateRequest):
            result, batch_size = await self.coalescer.submit(typed)
        else:
            workflow = getattr(self.session, route.workflow)
            result = await self._call(workflow, typed)
        body = serialize_envelope(result.to_json_dict())
        if key is not None:
            self.cache.store(key, body)
            return 200, body, kind, "miss", batch_size
        return 200, body, kind, "bypass", batch_size

    # ------------------------------------------------------------------
    # The async job API
    # ------------------------------------------------------------------
    async def _route_jobs(
        self, request: HttpRequest, path: str
    ) -> tuple[int, bytes, str | None, str | None, int | None]:
        if path == "/jobs":
            if request.method != "POST":
                return self._method_not_allowed(request, "POST")
            if self.draining:
                raise ServiceUnavailableError(
                    "server is draining; not accepting new work"
                )
            typed = _build_request(JobRequest, request.body)
            job_id = self.jobs.submit(typed)
            self.job_runner.wake()
            status = self.jobs.status(job_id)
            assert status is not None
            body = serialize_envelope(status.to_json_dict())
            return 202, body, "job_request", None, None
        job_id = path[len("/jobs/") :]
        if not job_id or "/" in job_id:
            return 404, self._unknown_job(request.path), None, None, None
        if request.method == "GET":
            status = self.jobs.status(job_id)
        elif request.method == "DELETE":
            status = self.jobs.cancel(job_id)
        else:
            return self._method_not_allowed(request, "GET or DELETE")
        if status is None:
            return 404, self._unknown_job(request.path), None, None, None
        body = serialize_envelope(status.to_json_dict())
        return 200, body, "job_status_result", None, None

    @staticmethod
    def _unknown_job(path: str) -> bytes:
        return _error_payload(
            f"unknown job {path!r}", exit_code=2, http_status=404
        )

    async def _execute_job(
        self, request: JobRequest, *, progress: Callable[[dict[str, Any]], None]
    ) -> dict[str, Any]:
        """Run one claimed job to its result envelope (the runner's hook).

        Work goes through the same single-thread executor as the
        synchronous routes, so job compute serializes with request
        compute instead of racing the session.
        """
        typed = request.typed_request()
        method = getattr(self.session, JOB_SESSION_WORKFLOWS[request.workflow])
        if request.workflow == "sweep":
            on_message = _sweep_progress(progress)
            result = await self._call(
                lambda: method(typed, progress=on_message)
            )
        else:
            result = await self._call(method, typed)
        return result.to_json_dict()

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict[str, Any]:
        """This worker's counters, as published on the board."""
        return {
            "pid": self.board.pid,
            "requests_total": self.requests_total,
            "result_cache": self.cache.stats(),
            "coalescing": self.coalescer.stats(),
            "jobs_run": self.job_runner.jobs_run,
        }

    def stats_payload(self) -> dict[str, Any]:
        """The ``serve_stats`` envelope served on ``/stats``.

        Counters are merged across every worker that ever published on
        the board (this worker's live values replace its possibly stale
        snapshot), so any connection sees cluster-wide totals no matter
        which worker answers.
        """
        own = self._snapshot()
        others = [
            snapshot
            for pid, snapshot in self.board.read_all().items()
            if pid != self.board.pid
        ]
        merged = [own, *others]
        coalescing = dict(own["coalescing"])
        for snapshot in others:
            peer = snapshot.get("coalescing", {})
            for counter in (
                "requests",
                "batches",
                "coalesced_requests",
                "solo_retries",
            ):
                coalescing[counter] += int(peer.get(counter, 0))
            coalescing["max_batch_size"] = max(
                coalescing["max_batch_size"], int(peer.get("max_batch_size", 0))
            )
        return envelope(
            "serve_stats",
            {
                "requests_total": sum(
                    int(s.get("requests_total", 0)) for s in merged
                ),
                "active_requests": self.active,
                "draining": self.draining,
                "result_cache": merge_cache_stats(
                    [s.get("result_cache", {}) for s in merged]
                ),
                "coalescing": coalescing,
                "session": self.session.cache_stats(),
                "log_records": self.log.records_written,
                "jobs": self.jobs.counts(),
                "worker_pid": self.board.pid,
                "workers": {
                    str(s.get("pid", "?")): {
                        "requests_total": int(s.get("requests_total", 0)),
                        "jobs_run": int(s.get("jobs_run", 0)),
                    }
                    for s in merged
                },
            },
        )

    async def aclose(self) -> None:
        """Stop the job runner and coalescer, the worker, and the log."""
        await self.job_runner.aclose()
        await self.coalescer.drain()
        self._executor.shutdown(wait=True)
        self.log.close()
        if self._state_tmp is not None:
            with contextlib.suppress(OSError):
                self._state_tmp.cleanup()
            self._state_tmp = None


def _sweep_progress(
    progress: Callable[[dict[str, Any]], None],
) -> Callable[[str], None]:
    """Adapt the sweep's message callback into progress-dict updates."""
    state = {"completed": 0, "total": 0}

    def on_message(message: str) -> None:
        header = re.match(r"(\d+) shards: (\d+) cached, (\d+) to compute", message)
        if header:
            state["total"] = int(header.group(1))
            state["completed"] = int(header.group(2))
        elif message.startswith("done "):
            state["completed"] += 1
        progress({**state, "last": message})

    return on_message
