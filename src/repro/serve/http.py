"""Minimal HTTP/1.1 framing over asyncio streams.

``repro serve`` speaks just enough HTTP for its JSON API — request-line
+ headers + ``Content-Length`` body in, status + headers + body out,
with keep-alive — implemented directly on :mod:`asyncio` streams so the
server adds **no runtime dependency**.  Anything outside that subset
(chunked uploads, expect/continue, upgrades) is rejected with a clear
:class:`HttpProtocolError`, which the connection loop turns into a
``400`` and a closed connection.

The module is deliberately transport-only: it never looks inside the
body.  Routing, JSON decoding, and envelope semantics live in
:mod:`repro.serve.service`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "MAX_BODY_BYTES",
    "REASONS",
    "HttpProtocolError",
    "HttpRequest",
    "read_request",
    "response_bytes",
]

#: Reject request bodies larger than this (a negotiate envelope is <1 KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(Exception):
    """Malformed or unsupported HTTP framing; the connection closes."""


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: framing only, body bytes undecoded."""

    method: str
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def wants_keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as error:
        raise HttpProtocolError("header line too long") from error
    if line and not line.endswith(b"\n"):
        raise HttpProtocolError("truncated header line")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> HttpRequest | None:
    """Read one request; ``None`` on clean EOF before any bytes arrive."""
    start = await _read_line(reader)
    if not start:
        # Either EOF between keep-alive requests (fine) or a stray blank
        # line; both end the connection without an error response.
        return None
    parts = start.split()
    if len(parts) != 3:
        raise HttpProtocolError(f"malformed request line: {start[:80]!r}")
    method, target, version = (part.decode("latin-1") for part in parts)
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(f"unsupported protocol version {version!r}")
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpProtocolError("chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise HttpProtocolError(
            f"malformed Content-Length: {length_text!r}"
        ) from error
    if length < 0 or length > max_body:
        raise HttpProtocolError(
            f"request body of {length} bytes exceeds the {max_body}-byte limit"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise HttpProtocolError("request body ended early") from error
    return HttpRequest(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """Serialize one complete response (headers + body) to wire bytes.

    ``extra_headers`` are emitted verbatim after the framing headers —
    the service uses them for ``Deprecation`` on legacy unversioned
    paths and ``X-Repro-Worker`` (the serving worker's pid), neither of
    which may leak into the body bytes.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body
