"""The asyncio server: sockets, connection lifecycle, graceful drain.

``repro serve`` binds one listening socket and runs every connection on
the event loop; compute is delegated to the
:class:`~repro.serve.service.ServeService` executor.  The startup line

    ``repro serve: listening on http://HOST:PORT``

is printed (and flushed) once the socket is bound — with ``--port 0``
that is how tests, CI, and the benchmark discover the ephemeral port.

With ``--workers N`` (N ≥ 2) this module only delegates:
:func:`run_server` hands the config to the pre-fork supervisor
(:mod:`repro.serve.supervisor`), which binds the socket once, prints
the discovery line, and forks N workers that each run a
:class:`ReproServer` on the *inherited* socket (``start(sock=...,
announce=False)``) — one shared listen queue, so a killed worker's
pending connections are picked up by its siblings.

Shutdown (SIGTERM/SIGINT or :meth:`ReproServer.shutdown`) is a drain,
not an abort:

1. stop accepting connections and mark the service draining (new
   requests on kept-alive connections get ``503``);
2. wait until every in-flight request has produced and written its
   response — coalesced negotiation batches included;
3. stop the job runner after its in-flight job, flush the coalescer,
   stop the worker, close the request log (whose records are
   single-write lines, so the file ends on a line boundary);
4. cancel the now-idle keep-alive readers and close the session.

Exit code 0 on a drained shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket as socket_module
from dataclasses import dataclass

from repro.api.session import Session
from repro.errors import ValidationError
from repro.serve.http import (
    HttpProtocolError,
    read_request,
    response_bytes,
)
from repro.serve.log import RequestLog
from repro.serve.service import ServeService

__all__ = ["ServeConfig", "ReproServer", "run_server"]


@dataclass(frozen=True)
class ServeConfig:
    """Validated knobs of one server instance (CLI flags mirror fields)."""

    host: str = "127.0.0.1"
    port: int = 8000
    max_batch: int = 32
    coalesce_window_ms: float = 5.0
    cache_entries: int = 256
    request_log: str | None = None
    workers: int = 1
    state_dir: str | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValidationError(
                f"--port must be in [0, 65535], got {self.port}"
            )
        if self.max_batch < 1:
            raise ValidationError(
                f"--max-batch must be a positive integer, got {self.max_batch}"
            )
        if self.coalesce_window_ms < 0:
            raise ValidationError(
                f"--coalesce-window-ms must be non-negative, "
                f"got {self.coalesce_window_ms:g}"
            )
        if self.cache_entries < 0:
            raise ValidationError(
                f"--cache-entries must be non-negative, got {self.cache_entries}"
            )
        if self.workers < 1:
            raise ValidationError(
                f"--workers must be a positive integer, got {self.workers}"
            )


class ReproServer:
    """One listening socket in front of one :class:`ServeService`."""

    def __init__(self, config: ServeConfig, *, session: Session | None = None) -> None:
        self.config = config
        self.session = session if session is not None else Session()
        self.service = ServeService(
            self.session,
            coalesce_window_ms=config.coalesce_window_ms,
            max_batch=config.max_batch,
            cache_entries=config.cache_entries,
            request_log=RequestLog(config.request_log),
            state_dir=config.state_dir,
        )
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle: asyncio.Event = asyncio.Event()
        self._idle.set()
        self.port: int | None = None

    async def start(
        self,
        *,
        sock: socket_module.socket | None = None,
        announce: bool = True,
    ) -> None:
        """Bind (or adopt) the socket; print the discovery line.

        A supervisor worker passes the pre-bound listening socket it
        inherited across ``fork()`` as ``sock`` and sets
        ``announce=False`` — the supervisor already printed the
        discovery line, once, for the one shared socket.
        """
        if sock is not None:
            self._server = await asyncio.start_server(self._on_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self.service.job_runner.start()
        if announce:
            print(
                f"repro serve: listening on http://{self.config.host}:{self.port}",
                flush=True,
            )

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader)
            except HttpProtocolError as error:
                body = (json.dumps({"error": str(error)}) + "\n").encode("utf-8")
                with contextlib.suppress(ConnectionError):
                    writer.write(response_bytes(400, body, keep_alive=False))
                    await writer.drain()
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if request is None:
                return
            # The full request/response cycle counts as in-flight, so a
            # drain never truncates a response mid-write.
            self._inflight += 1
            self._idle.clear()
            try:
                status, body, headers = await self.service.handle(request)
                keep_alive = request.wants_keep_alive() and not self.service.draining
                writer.write(
                    response_bytes(
                        status, body, keep_alive=keep_alive, extra_headers=headers
                    )
                )
                await writer.drain()
            except ConnectionError:
                return
            finally:
                self._request_done()
            if not keep_alive:
                return

    def _request_done(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def shutdown(self) -> None:
        """Drain in-flight work, then tear everything down (idempotent)."""
        self.service.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # 1. Every accepted request finishes and writes its response.
        await self._idle.wait()
        # 2. Job runner/coalescer/executor/log shut down cleanly.
        await self.service.aclose()
        # 3. Remaining connections are idle keep-alive readers: cancel.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        self.session.close()


async def serve_until_signal(
    config: ServeConfig,
    session: Session | None = None,
    *,
    sock: socket_module.socket | None = None,
    announce: bool = True,
    parent_pid: int | None = None,
) -> int:
    """Run one server until SIGTERM/SIGINT, then drain; returns 0.

    This is both the single-process body of :func:`run_server` and the
    per-worker body a supervisor child runs on its inherited socket.
    A worker passes ``parent_pid`` (the supervisor's pid): if the
    supervisor ever dies without fanning out the drain — SIGKILLed,
    crashed — the worker notices its reparenting and drains itself,
    so no orphan keeps holding the shared socket.  (On Linux the
    kernel-level ``PR_SET_PDEATHSIG`` the supervisor arms fires first;
    this watchdog is the portable cover.)
    """
    server = ReproServer(config, session=session)
    await server.start(sock=sock, announce=announce)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # non-main thread / platform
            pass
    watchdog: asyncio.Task | None = None
    if parent_pid is not None:

        async def watch_parent() -> None:
            while os.getppid() == parent_pid:
                await asyncio.sleep(1.0)
            stop.set()

        watchdog = loop.create_task(watch_parent())
    try:
        await stop.wait()
    finally:
        if watchdog is not None:
            watchdog.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await watchdog
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.shutdown()
    return 0


def run_server(config: ServeConfig, *, session: Session | None = None) -> int:
    """Blocking entry point of ``repro serve``; returns the exit code."""
    if config.workers > 1:
        from repro.serve.supervisor import run_supervisor

        return run_supervisor(config)
    try:
        return asyncio.run(serve_until_signal(config, session))
    except KeyboardInterrupt:  # SIGINT raced the handler installation
        return 0
