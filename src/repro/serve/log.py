"""Structured JSONL request log of the serve subsystem.

One line per completed request, each a ``serve_log_record`` envelope
(so ``python -m repro.api.validate`` checks log files exactly like any
other envelope): method, path, status, latency, the queue depth when
the request arrived, the engine batch size it rode in (negotiation
only), and the cache disposition (``hit``/``miss``/``bypass``).

Every record is written as **one** ``write()`` call followed by a
``flush()``, and all writes happen on the event-loop thread — so a
reader tailing the file never sees an interleaved or truncated line,
and the graceful-shutdown drain (which waits for in-flight requests
before closing the log) leaves a file of complete lines.  That property
is pinned by the SIGTERM test in ``tests/serve/``.
"""

from __future__ import annotations

import json
import os
from typing import Any, IO

from repro.envelope import envelope
from repro.errors import OutputError

__all__ = ["RequestLog"]


class RequestLog:
    """Append-only JSONL writer; ``path=None`` disables logging."""

    def __init__(self, path: str | None) -> None:
        self.path = path
        self._stream: IO[str] | None = None
        self.records_written = 0
        if path is not None:
            try:
                self._stream = open(path, "a", encoding="utf-8")
            except OSError as error:
                raise OutputError(
                    f"cannot open request log {path}: {error.strerror or error}"
                ) from error

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def record(
        self,
        *,
        method: str,
        path: str,
        status: int,
        latency_ms: float,
        queue_depth: int,
        kind: str | None = None,
        cache: str | None = None,
        batch_size: int | None = None,
    ) -> None:
        """Append one complete record (single write + flush)."""
        if self._stream is None:
            return
        payload: dict[str, Any] = {
            "method": method,
            "path": path,
            "status": status,
            "latency_ms": latency_ms,
            "queue_depth": queue_depth,
            # Workers of one supervisor may share a log file; the pid
            # attributes every record to the process that served it.
            "pid": os.getpid(),
        }
        if kind is not None:
            payload["kind_handled"] = kind
        if cache is not None:
            payload["cache"] = cache
        if batch_size is not None:
            payload["batch_size"] = batch_size
        line = json.dumps(
            envelope("serve_log_record", payload),
            sort_keys=True,
            separators=(",", ":"),
        )
        self._stream.write(line + "\n")
        self._stream.flush()
        self.records_written += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None
