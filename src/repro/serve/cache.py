"""Fingerprint-keyed response cache of the serve subsystem.

The server caches **serialized envelope bytes**, not result objects:
a cache hit replays the exact bytes the miss produced, so cached and
computed responses are byte-identical by construction (the same
``json.dumps(..., indent=2, sort_keys=True)`` rendering the CLI's
``--format json`` uses).

Keys are content fingerprints, never identities:

- every key starts from the request's canonical envelope JSON
  (sorted keys, compact separators — field order cannot matter);
- per-topology results mix in the graph's
  :meth:`~repro.topology.graph.ASGraph.content_fingerprint`, so two
  requests naming the same ``as-rel`` path hit only while the file's
  *content* is unchanged — an edited topology changes the key instead
  of serving stale bytes.

Requests with filesystem side effects (``topology`` with ``output``,
``simulate`` with ``trace_out``) are never cached: replaying bytes must
never skip a write the client asked for.  Bounds and counters come from
:class:`~repro.core.caching.BoundedCache`; ``/stats`` surfaces them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.core.caching import BoundedCache

__all__ = ["ResultCache", "request_fingerprint"]


def request_fingerprint(
    request: Any, *, extra: Mapping[str, str] | None = None
) -> str:
    """Stable hex digest of a typed request (plus optional extra parts).

    ``extra`` mixes additional content identity into the key — the serve
    routes pass ``{"topology_fingerprint": ...}`` for requests that read
    an ``as-rel`` file.
    """
    document: dict[str, Any] = dict(request.to_json_dict())
    if extra:
        document["_fingerprint_extra"] = dict(extra)
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """LRU-bounded map from request fingerprints to response bytes."""

    def __init__(self, max_entries: int | None) -> None:
        self._cache = BoundedCache(max_entries)

    def lookup(self, key: str) -> bytes | None:
        """The cached body for ``key`` (counts a hit or a miss)."""
        return self._cache.get(key)

    def store(self, key: str, body: bytes) -> None:
        """Cache ``body`` under ``key`` (evicting LRU entries if full)."""
        self._cache.put(key, body)

    def stats(self) -> dict[str, int | None]:
        """Size/bound/hit/miss/eviction counters for ``/stats``."""
        return self._cache.stats()
