"""Fingerprint-keyed response cache of the serve subsystem.

The server caches **serialized envelope bytes**, not result objects:
a cache hit replays the exact bytes the miss produced, so cached and
computed responses are byte-identical by construction (the same
``json.dumps(..., indent=2, sort_keys=True)`` rendering the CLI's
``--format json`` uses).

Keys are content fingerprints, never identities:

- every key starts from the request's canonical envelope JSON
  (sorted keys, compact separators — field order cannot matter);
- per-topology results mix in the graph's
  :meth:`~repro.topology.graph.ASGraph.content_fingerprint`, so two
  requests naming the same ``as-rel`` path hit only while the file's
  *content* is unchanged — an edited topology changes the key instead
  of serving stale bytes.

Requests with filesystem side effects (``topology`` with ``output``,
``simulate`` with ``trace_out``) are never cached: replaying bytes must
never skip a write the client asked for.

The cache is **two-tier** since the pre-fork supervisor arrived:

- a per-worker in-memory LRU front (:class:`~repro.core.caching.
  BoundedCache`, same bounds and counters as before), and
- an optional shared :class:`DiskResultStore` behind it — a
  content-addressed byte store on disk, published with the same
  tmp-write + atomic-rename discipline as
  :class:`~repro.core.artifacts.ArtifactStore`, so a result computed
  by any worker process is a warm hit for all of them.

A *disk hit* is the cross-process event: a worker that computed a
result holds it in its own memory tier, so serving from disk means
some **other** worker (or a previous incarnation after a crash)
computed it.  ``/stats`` surfaces the tiered counters per worker and
merged across workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.caching import BoundedCache

__all__ = [
    "DiskResultStore",
    "ResultCache",
    "merge_cache_stats",
    "request_fingerprint",
]


def request_fingerprint(
    request: Any, *, extra: Mapping[str, str] | None = None
) -> str:
    """Stable hex digest of a typed request (plus optional extra parts).

    ``extra`` mixes additional content identity into the key — the serve
    routes pass ``{"topology_fingerprint": ...}`` for requests that read
    an ``as-rel`` file.
    """
    document: dict[str, Any] = dict(request.to_json_dict())
    if extra:
        document["_fingerprint_extra"] = dict(extra)
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class DiskResultStore:
    """Content-addressed on-disk byte store shared by all workers.

    Layout is ``root/<fp[:2]>/<fp>`` (two-hex-char fan-out keeps
    directory sizes flat at paper scale).  Publication is crash- and
    race-safe the same way :class:`~repro.core.artifacts.ArtifactStore`
    is: bytes land in a uniquely named temp file in the same directory,
    then a single atomic :func:`os.replace` installs them.  Two workers
    racing on one fingerprint both publish identical bytes (the key is
    a content hash of the request, the value a deterministic rendering
    of the result), so the loser's replace is a benign overwrite — no
    locks, no torn reads: a reader either misses or sees complete bytes.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"not a hex fingerprint: {key!r}")
        return self.root / key[:2] / key

    def get(self, key: str) -> bytes | None:
        """The stored bytes for ``key``, or ``None`` if never published."""
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, body: bytes) -> None:
        """Atomically publish ``body`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*") if _.suffix != ".tmp")


class ResultCache:
    """Fingerprint → response-bytes cache: memory LRU over a shared store.

    ``lookup`` consults the per-process LRU first, then the disk store
    (promoting disk hits into memory so repeat traffic stays off the
    filesystem); ``store`` publishes to both tiers.  Without a disk
    store the behavior is exactly the pre-supervisor single-process
    cache.
    """

    def __init__(
        self, max_entries: int | None, *, store: DiskResultStore | None = None
    ) -> None:
        self._cache = BoundedCache(max_entries)
        self._store = store
        self._disk_hits = 0
        self._disk_misses = 0
        self._store_writes = 0

    @property
    def disk_hits(self) -> int:
        return self._disk_hits

    def lookup(self, key: str) -> bytes | None:
        """The cached body for ``key`` (counts a hit or a miss per tier)."""
        body = self._cache.get(key)
        if body is not None or self._store is None:
            return body
        body = self._store.get(key)
        if body is None:
            self._disk_misses += 1
            return None
        self._disk_hits += 1
        self._cache.put(key, body)
        return body

    def store(self, key: str, body: bytes) -> None:
        """Cache ``body`` under ``key`` (memory LRU + shared disk store)."""
        self._cache.put(key, body)
        if self._store is not None:
            self._store.put(key, body)
            self._store_writes += 1

    def stats(self) -> dict[str, int | None]:
        """Tiered counters for ``/stats``.

        The memory-tier keys (``size``/``max_entries``/``hits``/
        ``misses``/``evictions``) keep their pre-supervisor meaning;
        ``disk_hits``/``disk_misses``/``store_writes`` count shared-store
        traffic (``disk_hits >= 1`` on a worker proves it served bytes
        computed by a different process).
        """
        merged: dict[str, int | None] = dict(self._cache.stats())
        merged["disk_hits"] = self._disk_hits
        merged["disk_misses"] = self._disk_misses
        merged["store_writes"] = self._store_writes
        return merged


def merge_cache_stats(
    snapshots: Iterable[Mapping[str, int | None]],
) -> dict[str, int | None]:
    """Sum per-worker cache counters into one merged ``/stats`` view.

    Counters add across workers; ``max_entries`` is a per-worker bound,
    not a total, so the merged view reports the common bound (they are
    all configured identically) rather than a sum.
    """
    merged: dict[str, int | None] = {
        "size": 0,
        "max_entries": None,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "disk_hits": 0,
        "disk_misses": 0,
        "store_writes": 0,
    }
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if key == "max_entries":
                merged["max_entries"] = value
            elif value is not None:
                merged[key] = int(merged.get(key) or 0) + int(value)
    return merged
