"""Per-worker stats snapshots: how ``/stats`` merges across processes.

Each worker process publishes a small JSON snapshot of its own counters
(requests served, cache tiers, coalescing) to
``<state>/workers/<pid>.json`` after every completed request — an
atomic tmp-write + :func:`os.replace`, so readers never observe a torn
snapshot.  Any worker answering ``GET /stats`` reads every snapshot and
merges the counters, giving clients one cross-worker view no matter
which worker the connection landed on (stale by at most each worker's
single in-flight request).

Snapshots of dead workers are deliberately kept: their requests and
cache traffic happened, so the merged totals keep counting them — a
restarted worker publishes under its new pid alongside.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["WorkerBoard"]


class WorkerBoard:
    """Atomic publish/read-all of per-worker counter snapshots."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()

    def publish(self, snapshot: dict[str, Any]) -> None:
        """Atomically replace this worker's snapshot."""
        path = self.root / f"{self.pid}.json"
        body = json.dumps(snapshot, sort_keys=True).encode("utf-8")
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{self.pid}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(tmp_name)
            raise

    def read_all(self) -> dict[int, dict[str, Any]]:
        """Every published snapshot, keyed by worker pid."""
        snapshots: dict[int, dict[str, Any]] = {}
        for path in sorted(self.root.glob("*.json")):
            try:
                pid = int(path.stem)
            except ValueError:
                continue
            try:
                snapshots[pid] = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # A worker may be mid-replace or freshly dead; skip.
                continue
        return snapshots
