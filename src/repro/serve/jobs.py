"""Asynchronous jobs: submit-then-poll execution over a shared directory.

``POST /v1/jobs`` exists because slow workflows (``sweep``,
``experiments``, long ``simulate`` runs — including
population-carrying heterogeneous-marketplace simulations, which are
never result-cached) should not occupy a keep-alive connection
start-to-finish: the submit returns a job id immediately and the
client polls ``GET /v1/jobs/<id>`` until the state is terminal.

All job state lives on the filesystem, one directory per job under the
server's shared state dir, written with crash-safe primitives only:

- ``job.json`` — the submitted ``job_request`` envelope, published with
  tmp-write + atomic :func:`os.replace` (a job either exists completely
  or not at all);
- ``events.jsonl`` — append-only lifecycle log (``queued``,
  ``claimed``, ``progress``, ``requeued``, ``cancelled``, ``done``,
  ``failed``), each line a single ``write()`` so readers never see a
  torn record (a truncated final line from a crash is skipped);
- ``claim`` — created with ``O_EXCL`` by the worker that picked the job
  up, holding its pid: the atomic create is the cross-process
  arbitration, no locks;
- ``result.json`` / ``error.json`` — the workflow's result (or
  ``error_result``) envelope, atomic-replaced; *presence* of the file
  is what makes the state terminal, so a crash mid-write can never
  produce a half-done job.

Because every transition is an atomic filesystem operation, a worker
killed mid-job leaves an inspectable record: the claim names a dead
pid, the events show how far it got.  The supervisor (and every worker
at startup) calls :meth:`JobStore.requeue_orphans`, which removes dead
claims so a live worker re-runs the job from its queued record.

Each worker process runs one :class:`JobRunner`: an asyncio loop that
claims queued jobs and executes them through the service's single
worker thread — job compute and synchronous requests serialize on the
same executor, so a running job never races the session.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import secrets
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.api.requests import JobRequest
from repro.api.results import JobStatusResult
from repro.envelope import envelope
from repro.errors import ReproError, ValidationError, exit_code_for, http_status_for

__all__ = ["JobStore", "JobRunner"]


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".job.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp_name)
        raise


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class JobStore:
    """Directory-backed job queue and status record, safe across processes."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths and low-level records
    # ------------------------------------------------------------------
    def _dir(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValidationError(f"malformed job id {job_id!r}")
        return self.root / job_id

    def _append_event(self, job_id: str, event: str, **extra: Any) -> None:
        record = {"event": event, "ts": time.time(), **extra}
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self._dir(job_id) / "events.jsonl", "a", encoding="utf-8") as f:
            f.write(line)
            f.flush()

    def _events(self, job_id: str) -> list[dict[str, Any]]:
        try:
            text = (self._dir(job_id) / "events.jsonl").read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        events = []
        for line in text.splitlines():
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                # A crash mid-append can truncate the final line; every
                # complete line before it is still valid.
                continue
        return events

    def _read_envelope(self, job_id: str, name: str) -> dict[str, Any] | None:
        try:
            return json.loads(
                (self._dir(job_id) / name).read_text(encoding="utf-8")
            )
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> str:
        """Persist a validated submission; returns the new job id.

        Ids sort by submission time (a zero-padded nanosecond prefix),
        so "claim the oldest queued job" is a directory listing.
        """
        job_id = f"{time.time_ns():019d}-{os.getpid()}-{secrets.token_hex(3)}"
        job_dir = self._dir(job_id)
        job_dir.mkdir(parents=True)
        document = json.dumps(request.to_json_dict(), sort_keys=True, indent=2)
        _atomic_write(job_dir / "job.json", (document + "\n").encode("utf-8"))
        self._append_event(job_id, "queued", workflow=request.workflow)
        return job_id

    def request_for(self, job_id: str) -> JobRequest | None:
        document = self._read_envelope(job_id, "job.json")
        if document is None:
            return None
        return JobRequest.from_json_dict(document)

    def status(self, job_id: str) -> JobStatusResult | None:
        """The current observation of one job (``None`` if unknown)."""
        document = self._read_envelope(job_id, "job.json")
        if document is None:
            return None
        workflow = str(document.get("workflow", ""))
        result = self._read_envelope(job_id, "result.json")
        error = self._read_envelope(job_id, "error.json")
        events = self._events(job_id)
        progress: dict[str, Any] = {}
        cancelled = False
        for event in events:
            if event.get("event") == "progress":
                progress.update(event.get("progress", {}))
            elif event.get("event") == "cancelled":
                cancelled = True
        if result is not None:
            state = "done"
        elif error is not None:
            state = "failed"
        elif cancelled:
            state = "cancelled"
        elif self._live_claim(job_id) is not None:
            state = "running"
        else:
            state = "queued"
        return JobStatusResult(
            job_id=job_id,
            workflow=workflow,
            state=state,
            progress=progress,
            result=result,
            error=error,
        )

    def _live_claim(self, job_id: str) -> int | None:
        """The pid holding the job's claim, or ``None`` (absent or dead)."""
        try:
            text = (self._dir(job_id) / "claim").read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            pid = int(text.strip() or "0")
        except ValueError:
            return None
        return pid if pid and _pid_alive(pid) else None

    def claim_next(self, *, pid: int | None = None) -> tuple[str, JobRequest] | None:
        """Atomically claim the oldest queued job for ``pid``.

        The ``O_EXCL`` create of the ``claim`` file is the arbitration:
        of any number of workers racing on a job, exactly one wins and
        the rest move on.
        """
        pid = os.getpid() if pid is None else pid
        for job_dir in sorted(self.root.iterdir()):
            if not job_dir.is_dir():
                continue
            job_id = job_dir.name
            if (job_dir / "result.json").exists() or (job_dir / "error.json").exists():
                continue
            if (job_dir / "claim").exists():
                continue
            status = self.status(job_id)
            if status is None or status.state != "queued":
                continue
            try:
                with open(job_dir / "claim", "x", encoding="utf-8") as f:
                    f.write(str(pid))
            except FileExistsError:
                continue
            request = self.request_for(job_id)
            if request is None:  # pragma: no cover - submit is atomic
                continue
            self._append_event(job_id, "claimed", pid=pid)
            return job_id, request
        return None

    def record_progress(self, job_id: str, progress: dict[str, Any]) -> None:
        """Append one progress observation (merged into the status view)."""
        self._append_event(job_id, "progress", progress=progress)

    def finish(self, job_id: str, result_envelope: dict[str, Any]) -> None:
        """Publish the result envelope; the job becomes ``done``."""
        body = json.dumps(result_envelope, sort_keys=True, indent=2) + "\n"
        _atomic_write(self._dir(job_id) / "result.json", body.encode("utf-8"))
        self._append_event(job_id, "done")

    def fail(self, job_id: str, error: BaseException) -> None:
        """Publish an ``error_result`` envelope; the job becomes ``failed``."""
        if isinstance(error, ReproError):
            exit_code, http_status = exit_code_for(error), http_status_for(error)
            message = str(error)
        else:
            exit_code, http_status = 1, 500
            message = f"internal error: {error}"
        document = envelope(
            "error_result",
            {"error": message, "exit_code": exit_code, "http_status": http_status},
        )
        body = json.dumps(document, sort_keys=True, indent=2) + "\n"
        _atomic_write(self._dir(job_id) / "error.json", body.encode("utf-8"))
        self._append_event(job_id, "failed")

    def cancel(self, job_id: str) -> JobStatusResult | None:
        """Cancel a queued job; running/terminal jobs are left unchanged.

        Returns the post-cancel observation (``None`` if the job is
        unknown).  A running workflow executes on a worker thread and
        cannot be interrupted safely, so ``DELETE`` on a running job is
        a no-op the returned state makes visible.
        """
        status = self.status(job_id)
        if status is None:
            return None
        if status.state == "queued":
            self._append_event(job_id, "cancelled")
            return self.status(job_id)
        return status

    # ------------------------------------------------------------------
    # Recovery and introspection
    # ------------------------------------------------------------------
    def requeue_orphans(self, *, alive: Iterable[int] | None = None) -> list[str]:
        """Release claims held by dead workers; returns the requeued ids.

        ``alive`` is the supervisor's authoritative set of worker pids;
        when omitted, liveness is probed with ``kill(pid, 0)`` (what a
        worker scanning at startup can do).
        """
        alive_set = None if alive is None else {int(pid) for pid in alive}
        requeued: list[str] = []
        for job_dir in sorted(self.root.iterdir()):
            claim = job_dir / "claim"
            if not claim.exists():
                continue
            if (job_dir / "result.json").exists() or (job_dir / "error.json").exists():
                continue
            try:
                pid = int(claim.read_text(encoding="utf-8").strip() or "0")
            except (ValueError, OSError):
                pid = 0
            holder_alive = (
                pid in alive_set if alive_set is not None else pid and _pid_alive(pid)
            )
            if holder_alive:
                continue
            with contextlib.suppress(FileNotFoundError):
                claim.unlink()
            self._append_event(job_dir.name, "requeued", dead_pid=pid)
            requeued.append(job_dir.name)
        return requeued

    def counts(self) -> dict[str, int]:
        """Jobs per state, for ``/stats``."""
        counts = {s: 0 for s in ("queued", "running", "done", "failed", "cancelled")}
        for job_dir in self.root.iterdir():
            if not job_dir.is_dir():
                continue
            status = self.status(job_dir.name)
            if status is not None:
                counts[status.state] += 1
        return counts


class JobRunner:
    """One worker's claim-and-execute loop over a shared :class:`JobStore`.

    ``execute`` runs the typed workflow request to a result envelope
    (the service provides it, routing through the same single worker
    thread synchronous requests use); ``progress`` callbacks from the
    workflow land in the job's event log as they happen.
    """

    #: How often an idle runner re-scans for jobs queued by *other*
    #: workers (same-process submissions wake it immediately).
    poll_interval_s = 0.2

    def __init__(
        self,
        store: JobStore,
        execute: Callable[..., Any],
    ) -> None:
        self.store = store
        self._execute = execute
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._stopping = False
        self.jobs_run = 0

    def start(self) -> None:
        """Start the claim loop on the running event loop."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    def wake(self) -> None:
        """Nudge the loop (called on same-process submissions)."""
        self._wake.set()

    async def _run(self) -> None:
        while not self._stopping:
            claimed = self.store.claim_next()
            if claimed is None:
                self._wake.clear()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=self.poll_interval_s
                    )
                continue
            job_id, request = claimed
            await self._run_one(job_id, request)

    async def _run_one(self, job_id: str, request: JobRequest) -> None:
        try:
            result_envelope = await self._execute(
                request,
                progress=lambda update: self.store.record_progress(job_id, update),
            )
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 - a failed job must
            # become a failed *record*, not a dead runner.
            self.store.fail(job_id, error)
        else:
            self.store.finish(job_id, result_envelope)
        self.jobs_run += 1

    async def aclose(self) -> None:
        """Stop claiming; wait for the in-flight job to finish."""
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
