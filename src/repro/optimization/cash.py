"""Agreement optimization via cash compensation (§IV-B).

Instead of limiting flow volumes, the two parties agree on a cash
payment ``Π_{D→E}`` that compensates the party benefiting less (or even
losing) from the agreement.  The optimization problem (Eq. 10)

``max (u_D − Π)(u_E + Π)  s.t.  u_D − Π ≥ 0,  u_E + Π ≥ 0``

has a solution if and only if the joint surplus ``u_D + u_E`` is
non-negative, in which case the Nash bargaining solution (Eq. 11)

``Π_{D→E} = u_D − (u_D + u_E)/2``

is optimal: both parties end up with exactly half the surplus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agreements.scenario import AgreementScenario
from repro.agreements.utility import joint_utilities
from repro.economics.business import ASBusiness
from repro.optimization.nash import nash_bargaining_transfer


@dataclass(frozen=True)
class CashCompensationResult:
    """Outcome of a cash-compensation negotiation between two parties."""

    party_x: int
    party_y: int
    utility_x: float
    utility_y: float
    concluded: bool
    transfer_x_to_y: float

    @property
    def joint_surplus(self) -> float:
        """Joint surplus ``u_X + u_Y`` of the agreement."""
        return self.utility_x + self.utility_y

    @property
    def post_utility_x(self) -> float:
        """X's utility after the transfer (zero when not concluded)."""
        if not self.concluded:
            return 0.0
        return self.utility_x - self.transfer_x_to_y

    @property
    def post_utility_y(self) -> float:
        """Y's utility after the transfer (zero when not concluded)."""
        if not self.concluded:
            return 0.0
        return self.utility_y + self.transfer_x_to_y

    @property
    def nash_product(self) -> float:
        """Nash product of the post-transfer utilities."""
        return self.post_utility_x * self.post_utility_y


def optimize_cash_compensation(
    party_x: int,
    party_y: int,
    utility_x: float,
    utility_y: float,
) -> CashCompensationResult:
    """Solve Eq. (10) for known agreement utilities.

    The agreement is concluded exactly when the joint surplus is
    non-negative; the optimal transfer is the Nash bargaining solution.
    """
    surplus = utility_x + utility_y
    if surplus < 0.0:
        return CashCompensationResult(
            party_x=party_x,
            party_y=party_y,
            utility_x=utility_x,
            utility_y=utility_y,
            concluded=False,
            transfer_x_to_y=0.0,
        )
    transfer = nash_bargaining_transfer(utility_x, utility_y)
    return CashCompensationResult(
        party_x=party_x,
        party_y=party_y,
        utility_x=utility_x,
        utility_y=utility_y,
        concluded=True,
        transfer_x_to_y=transfer,
    )


def negotiate_cash_agreement(
    scenario: AgreementScenario,
    businesses: dict[int, ASBusiness],
) -> CashCompensationResult:
    """Evaluate a scenario's utilities and apply cash-compensation optimization.

    The utilities entering the negotiation are the expected agreement
    utilities of the two parties given the scenario's traffic estimates
    (the paper notes these are *estimates* — the flow-volume method of
    §IV-A trades this flexibility for predictability).
    """
    utilities = joint_utilities(scenario, businesses)
    party_x, party_y = scenario.agreement.parties
    return optimize_cash_compensation(
        party_x, party_y, utilities[party_x], utilities[party_y]
    )
