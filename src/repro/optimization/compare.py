"""Comparison of the two agreement-qualification methods (§IV-C).

The paper compares flow-volume targets and cash compensation along three
axes: predictability (enforceable volume limits), flexibility (cash
agreements conclude whenever the joint surplus is non-negative, volume
agreements may collapse to zero), and achievable joint utility.  This
module runs both methods on the same scenario and reports the
comparison, which is also the basis of the method-comparison ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agreements.scenario import AgreementScenario
from repro.economics.business import ASBusiness
from repro.optimization.cash import CashCompensationResult, negotiate_cash_agreement
from repro.optimization.flow_volume import FlowVolumeResult, optimize_flow_volume_targets


@dataclass(frozen=True)
class MethodComparison:
    """Side-by-side outcome of the two qualification methods on one scenario."""

    cash: CashCompensationResult
    flow_volume: FlowVolumeResult

    @property
    def cash_concluded(self) -> bool:
        """Whether the cash-compensation agreement is concluded."""
        return self.cash.concluded

    @property
    def flow_volume_concluded(self) -> bool:
        """Whether the flow-volume agreement is concluded."""
        return self.flow_volume.concluded

    @property
    def cash_joint_utility(self) -> float:
        """Joint post-transfer utility under cash compensation."""
        if not self.cash.concluded:
            return 0.0
        return self.cash.post_utility_x + self.cash.post_utility_y

    @property
    def flow_volume_joint_utility(self) -> float:
        """Joint utility at the flow-volume optimum."""
        if not self.flow_volume.concluded:
            return 0.0
        return self.flow_volume.joint_utility

    @property
    def cash_fairness_gap(self) -> float:
        """|u_X − u_Y| after the cash transfer (0 under the Nash solution)."""
        if not self.cash.concluded:
            return 0.0
        return abs(self.cash.post_utility_x - self.cash.post_utility_y)

    @property
    def flow_volume_fairness_gap(self) -> float:
        """|u_X − u_Y| at the flow-volume optimum."""
        if not self.flow_volume.concluded:
            return 0.0
        return abs(self.flow_volume.utility_x - self.flow_volume.utility_y)

    @property
    def flexibility_advantage_cash(self) -> bool:
        """True when only the cash method manages to conclude the agreement.

        This is the §IV-C observation: a cash agreement can always be
        concluded when the joint surplus is positive, whereas the
        flow-volume program may only admit the all-zero solution.
        """
        return self.cash_concluded and not self.flow_volume_concluded

    def summary(self) -> dict[str, float | bool]:
        """Flat summary dictionary, convenient for benchmark reporting."""
        return {
            "cash_concluded": self.cash_concluded,
            "flow_volume_concluded": self.flow_volume_concluded,
            "cash_joint_utility": self.cash_joint_utility,
            "flow_volume_joint_utility": self.flow_volume_joint_utility,
            "cash_fairness_gap": self.cash_fairness_gap,
            "flow_volume_fairness_gap": self.flow_volume_fairness_gap,
            "flexibility_advantage_cash": self.flexibility_advantage_cash,
        }


def compare_methods(
    scenario: AgreementScenario,
    businesses: dict[int, ASBusiness],
    *,
    restarts: int = 4,
    seed: int = 0,
) -> MethodComparison:
    """Run both qualification methods on the same scenario."""
    cash = negotiate_cash_agreement(scenario, businesses)
    flow_volume = optimize_flow_volume_targets(
        scenario, businesses, restarts=restarts, seed=seed
    )
    return MethodComparison(cash=cash, flow_volume=flow_volume)
