"""Nash bargaining primitives (§IV).

The paper qualifies agreements so that the *Nash product* of the two
parties' utilities is maximized, which yields Pareto-optimal and fair
outcomes, and uses the *Nash bargaining solution* to split the joint
surplus of cash-compensation agreements.
"""

from __future__ import annotations

from dataclasses import dataclass


def nash_product(utility_x: float, utility_y: float) -> float:
    """The Nash product ``u_X · u_Y`` of two agreement utilities.

    The product is only meaningful on the bargaining set where both
    utilities are non-negative; callers enforce that constraint.
    """
    return utility_x * utility_y


def nash_bargaining_transfer(utility_x: float, utility_y: float) -> float:
    """Cash transfer ``Π_{X→Y}`` of the Nash bargaining solution (Eq. 11).

    ``Π_{X→Y} = u_X − (u_X + u_Y) / 2``: the party that gains more pays
    the other so both end up with exactly half of the joint surplus.  A
    negative value means ``Y`` pays ``X``.
    """
    return utility_x - (utility_x + utility_y) / 2.0


@dataclass(frozen=True)
class BargainingOutcome:
    """Post-bargaining utilities of the two parties plus the transfer."""

    utility_x: float
    utility_y: float
    transfer_x_to_y: float

    @property
    def post_utility_x(self) -> float:
        """Utility of X after paying/receiving the transfer."""
        return self.utility_x - self.transfer_x_to_y

    @property
    def post_utility_y(self) -> float:
        """Utility of Y after paying/receiving the transfer."""
        return self.utility_y + self.transfer_x_to_y

    @property
    def nash_product(self) -> float:
        """Nash product of the post-transfer utilities."""
        return self.post_utility_x * self.post_utility_y

    @property
    def is_individually_rational(self) -> bool:
        """Whether both parties end up with non-negative utility."""
        return self.post_utility_x >= 0.0 and self.post_utility_y >= 0.0

    @property
    def fairness_gap(self) -> float:
        """Absolute difference of the post-transfer utilities (0 = perfectly fair)."""
        return abs(self.post_utility_x - self.post_utility_y)


def nash_bargaining_solution(utility_x: float, utility_y: float) -> BargainingOutcome:
    """Apply the Nash bargaining solution to a pair of agreement utilities."""
    transfer = nash_bargaining_transfer(utility_x, utility_y)
    return BargainingOutcome(
        utility_x=utility_x, utility_y=utility_y, transfer_x_to_y=transfer
    )


def is_pareto_improvement(
    candidate: tuple[float, float], reference: tuple[float, float]
) -> bool:
    """Whether ``candidate`` Pareto-dominates ``reference``.

    True when no party is worse off and at least one is strictly better
    off.  Used in tests to certify that optimized agreements are
    Pareto-optimal (no feasible candidate dominates them).
    """
    no_worse = candidate[0] >= reference[0] and candidate[1] >= reference[1]
    strictly_better = candidate[0] > reference[0] or candidate[1] > reference[1]
    return no_worse and strictly_better
