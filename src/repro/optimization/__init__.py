"""Optimization of mutuality-based agreements (§IV).

Two qualification methods make an agreement Pareto-optimal and fair:
flow-volume targets (a nonlinear program, §IV-A) and cash compensation
(the Nash bargaining solution, §IV-B), plus a comparison harness for the
trade-offs discussed in §IV-C.
"""

from repro.optimization.cash import (
    CashCompensationResult,
    negotiate_cash_agreement,
    optimize_cash_compensation,
)
from repro.optimization.compare import MethodComparison, compare_methods
from repro.optimization.flow_volume import (
    FlowVolumeResult,
    SegmentTargets,
    optimize_flow_volume_targets,
)
from repro.optimization.nash import (
    BargainingOutcome,
    is_pareto_improvement,
    nash_bargaining_solution,
    nash_bargaining_transfer,
    nash_product,
)

__all__ = [
    "nash_product",
    "nash_bargaining_transfer",
    "nash_bargaining_solution",
    "BargainingOutcome",
    "is_pareto_improvement",
    "CashCompensationResult",
    "optimize_cash_compensation",
    "negotiate_cash_agreement",
    "SegmentTargets",
    "FlowVolumeResult",
    "optimize_flow_volume_targets",
    "MethodComparison",
    "compare_methods",
]
