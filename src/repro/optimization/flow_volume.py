"""Agreement optimization via flow-volume targets (§IV-A, Eq. 9).

The flow-volume method qualifies a mutuality-based agreement by fixing,
for every new path segment ``P``, the total flow allowance ``f^(a)_P``
and the amount of newly attracted customer traffic ``Δf^(a)_P`` so that
the Nash product of the two parties' agreement utilities is maximized
subject to

- (I)   economic viability: ``Δr ≥ Δc`` (equivalently ``u ≥ 0``) for both
        parties,
- (II)  all agreement-induced customer traffic fits into the allowance:
        ``f^(a)_P ≥ Σ_Z Δf^(a)_{Z,P}``,
- (III) attracted traffic cannot exceed customer demand:
        ``Δf^(a)_{Z,P} ≤ Δf^max_{Z,P}``.

The scenario supplied by the caller defines the *maximum available*
rerouted traffic and the demand ceilings; the optimizer scales both per
segment.  Constraint (II) holds by construction because the allowance is
parameterized as rerouted + attracted volume.  The program is solved
with SLSQP from several starting points (the objective is generally
non-concave).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.agreements.scenario import AgreementScenario, SegmentTraffic
from repro.agreements.utility import joint_utilities
from repro.economics.business import ASBusiness


@dataclass(frozen=True)
class SegmentTargets:
    """Negotiated volume targets for one path segment."""

    path: tuple[int, int, int]
    rerouted_volume: float
    attracted_volume: float

    @property
    def total_allowance(self) -> float:
        """Total flow allowance ``f^(a)_P`` for the segment."""
        return self.rerouted_volume + self.attracted_volume


@dataclass(frozen=True)
class FlowVolumeResult:
    """Outcome of the flow-volume optimization."""

    party_x: int
    party_y: int
    utility_x: float
    utility_y: float
    targets: tuple[SegmentTargets, ...]
    scenario: AgreementScenario
    concluded: bool

    @property
    def nash_product(self) -> float:
        """Nash product of the two utilities at the optimum."""
        return self.utility_x * self.utility_y

    @property
    def joint_utility(self) -> float:
        """Sum of both utilities at the optimum."""
        return self.utility_x + self.utility_y


def _scenario_from_factors(
    scenario: AgreementScenario, factors: np.ndarray
) -> AgreementScenario:
    """Scale every segment's rerouted/attracted traffic by the factor vector.

    The factor vector interleaves (rerouted_factor, attracted_factor) per
    segment in the order of ``scenario.segments``.  Attracted volumes are
    scaled relative to their demand ceilings ``Δf^max``.
    """
    scaled_segments: list[SegmentTraffic] = []
    for index, traffic in enumerate(scenario.segments):
        rerouted_factor = float(np.clip(factors[2 * index], 0.0, 1.0))
        attracted_factor = float(np.clip(factors[2 * index + 1], 0.0, 1.0))
        rerouted = {k: v * rerouted_factor for k, v in traffic.rerouted.items()}
        attracted = {
            customer: attracted_factor * traffic.attracted_limit(customer)
            for customer in set(traffic.attracted) | set(traffic.attracted_limits)
        }
        scaled_segments.append(
            SegmentTraffic(
                segment=traffic.segment,
                rerouted=rerouted,
                attracted=attracted,
                attracted_limits=dict(traffic.attracted_limits),
            )
        )
    return scenario.with_segments(scaled_segments)


def optimize_flow_volume_targets(
    scenario: AgreementScenario,
    businesses: dict[int, ASBusiness],
    *,
    restarts: int = 4,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> FlowVolumeResult:
    """Solve the flow-volume nonlinear program of Eq. (9).

    Returns the volume targets that maximize the Nash product of the two
    parties' utilities subject to both utilities being non-negative.  If
    no strictly positive allocation is viable, all targets collapse to
    zero and ``concluded`` is ``False`` — the situation §IV-C describes
    where the flow-volume method cannot conclude an agreement that cash
    compensation might still rescue.
    """
    party_x, party_y = scenario.agreement.parties
    num_segments = len(scenario.segments)
    if num_segments == 0:
        empty = scenario.with_segments([])
        return FlowVolumeResult(
            party_x=party_x,
            party_y=party_y,
            utility_x=0.0,
            utility_y=0.0,
            targets=(),
            scenario=empty,
            concluded=False,
        )

    def utilities_at(factors: np.ndarray) -> tuple[float, float]:
        candidate = _scenario_from_factors(scenario, factors)
        utilities = joint_utilities(candidate, businesses)
        return utilities[party_x], utilities[party_y]

    def negative_nash_product(factors: np.ndarray) -> float:
        ux, uy = utilities_at(factors)
        return -(ux * uy)

    constraints = [
        {"type": "ineq", "fun": lambda f: utilities_at(f)[0]},
        {"type": "ineq", "fun": lambda f: utilities_at(f)[1]},
    ]
    bounds = [(0.0, 1.0)] * (2 * num_segments)

    rng = np.random.default_rng(seed)
    starts = [np.full(2 * num_segments, 0.5), np.ones(2 * num_segments)]
    for _ in range(max(0, restarts - len(starts))):
        starts.append(rng.uniform(0.0, 1.0, size=2 * num_segments))

    best_factors = np.zeros(2 * num_segments)
    best_product = -np.inf
    for start in starts:
        result = minimize(
            negative_nash_product,
            start,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 200, "ftol": 1e-10},
        )
        candidate = np.clip(result.x, 0.0, 1.0)
        ux, uy = utilities_at(candidate)
        if ux < -tolerance or uy < -tolerance:
            continue
        product = ux * uy
        if product > best_product:
            best_product = product
            best_factors = candidate

    if not np.isfinite(best_product):
        # No feasible point found by the solver: fall back to the
        # all-zero allocation, which is always feasible (no change).
        best_factors = np.zeros(2 * num_segments)
        best_product = 0.0

    optimal_scenario = _scenario_from_factors(scenario, best_factors)
    utilities = joint_utilities(optimal_scenario, businesses)
    targets = tuple(
        SegmentTargets(
            path=traffic.segment.path,
            rerouted_volume=traffic.rerouted_volume,
            attracted_volume=traffic.attracted_volume,
        )
        for traffic in optimal_scenario.segments
    )
    total_allowance = sum(target.total_allowance for target in targets)
    concluded = (
        total_allowance > tolerance
        and utilities[party_x] >= -tolerance
        and utilities[party_y] >= -tolerance
    )
    return FlowVolumeResult(
        party_x=party_x,
        party_y=party_y,
        utility_x=utilities[party_x],
        utility_y=utilities[party_y],
        targets=targets,
        scenario=optimal_scenario,
        concluded=concluded,
    )
