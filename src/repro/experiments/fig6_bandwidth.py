"""Experiment: Fig. 6 — bandwidth of additional MA paths.

Uses the same synthetic topology and MA enumeration as the other
path-diversity experiments and the degree-gravity capacity model of the
paper.  For every analyzed AS pair it counts the MA paths whose
bottleneck bandwidth exceeds the maximum / median / minimum bandwidth of
the GRC paths (Fig. 6a) and reports the relative bandwidth increase for
the benefiting pairs (Fig. 6b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.experiments.fig3_paths import PathDiversityConfig
from repro.experiments.reporting import (
    PaperComparison,
    SectionSeries,
    SectionTable,
    metric_value,
    render_figure_body,
)
from repro.paths.bandwidth import BandwidthResult, analyze_bandwidth
from repro.topology.bandwidth import degree_gravity_capacities
from repro.topology.generator import GeneratedTopology

if TYPE_CHECKING:
    from repro.experiments.context import DiversityContext


@dataclass(frozen=True)
class Fig6Config:
    """Parameters of the Fig. 6 experiment.

    ``sampling_seed`` seeds the AS-pair sample of the bandwidth
    analysis; ``None`` falls back to the diversity seed (the historical
    behavior).  It exists so a runner-level ``--seed`` override reaches
    this figure explicitly, mirroring Fig. 5's ``geography_seed``.
    """

    diversity: PathDiversityConfig = PathDiversityConfig(sample_size=60)
    pair_sample_size: int = 60
    sampling_seed: int | None = None

    @property
    def effective_sampling_seed(self) -> int:
        """The seed the pair sampling actually uses."""
        if self.sampling_seed is not None:
            return self.sampling_seed
        return self.diversity.seed


@dataclass
class Fig6Result:
    """Full result of the Fig. 6 experiment."""

    bandwidth: BandwidthResult
    topology: GeneratedTopology
    num_agreements: int

    def comparisons(self) -> list[PaperComparison]:
        """Headline paper-vs-measured comparisons."""
        result = self.bandwidth
        increase_cdf = result.increase_cdf()
        median_increase = increase_cdf.median if increase_cdf.count > 0 else float("nan")
        return [
            PaperComparison(
                metric="AS pairs gaining ≥1 path above the GRC maximum bandwidth",
                paper_value="≈ 35%",
                measured_value=f"{result.fraction_of_pairs_improving('max', 1):.0%}",
            ),
            PaperComparison(
                metric="median relative bandwidth increase among benefiting pairs",
                paper_value="≈ 150%",
                measured_value=f"{median_increase:.0%}",
            ),
        ]

    def table(self) -> SectionTable:
        """The Fig. 6a condition counts as a structured table."""
        rows = []
        for condition in ("max", "median", "min"):
            cdf = self.bandwidth.count_cdf(condition)
            rows.append(
                (
                    f"> GRC {condition}",
                    f"{cdf.fraction_at_least(1):.0%}",
                    f"{cdf.fraction_at_least(5):.0%}",
                    f"{cdf.fraction_at_least(10):.0%}",
                    f"{cdf.mean:.1f}",
                )
            )
        return SectionTable(
            headers=("condition", "≥1 path", "≥5 paths", "≥10 paths", "mean #paths"),
            rows=tuple(rows),
        )

    def series(self) -> tuple[SectionSeries, ...]:
        """The Fig. 6b relative-increase CDF with its raw values."""
        return (
            SectionSeries(
                "relative bandwidth increase", *self.bandwidth.increase_cdf().series()
            ),
        )

    def metrics(self) -> dict[str, float | int | None]:
        """Headline numbers of the experiment, JSON-safe."""
        increase = self.bandwidth.increase_cdf()
        return {
            "num_agreements": self.num_agreements,
            "pairs_above_grc_max": metric_value(
                self.bandwidth.fraction_of_pairs_improving("max", 1)
            ),
            "pairs_above_grc_min": metric_value(
                self.bandwidth.fraction_of_pairs_improving("min", 1)
            ),
            "median_increase": (
                metric_value(increase.median) if increase.count > 0 else None
            ),
        }

    def report(self) -> str:
        """Text report with the Fig. 6a condition counts and Fig. 6b increase CDF."""
        return render_figure_body(self.table(), "", self.series())


def run_fig6(
    config: Fig6Config | None = None,
    *,
    context: "DiversityContext | None" = None,
) -> Fig6Result:
    """Run the Fig. 6 experiment.

    Shares the topology, compiled path engine, and MA path index with
    the other figures when the combined runner passes a ``context``;
    only the degree-gravity capacity model is figure-specific.
    """
    from repro.experiments.context import context_for

    config = config or Fig6Config()
    diversity = config.diversity
    ctx = context_for(diversity, context)
    capacities = degree_gravity_capacities(ctx.topology.graph)
    bandwidth = analyze_bandwidth(
        ctx.topology.graph,
        capacities,
        index=ctx.index,
        sample_size=config.pair_sample_size,
        seed=config.effective_sampling_seed,
        engine=ctx.engine,
    )
    return Fig6Result(
        bandwidth=bandwidth, topology=ctx.topology, num_agreements=len(ctx.agreements)
    )
