"""Run every experiment of the paper's evaluation and print a combined report.

``python -m repro.experiments.runner`` regenerates the data behind all
figures (with reduced default sizes; pass ``--full`` for paper-scale
trial counts) and prints paper-vs-measured comparison tables, the same
content that EXPERIMENTS.md records.

A sequential run shares one :class:`DiversityContext` (topology,
compiled path engine, MA enumeration and path index) across Figs. 3–6
instead of rebuilding it per figure.  ``--jobs N`` opts into
process-parallel figure execution: each section runs in its own worker
process (rebuilding its own context — cheaper than shipping compiled
arrays across process boundaries) and the results are merged in the
fixed section order, so seeded output is byte-identical to a
sequential run.
"""

from __future__ import annotations

import argparse
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.experiments.fig2_pod import Fig2Config, run_fig2
from repro.experiments.fig3_paths import PathDiversityConfig, run_fig3
from repro.experiments.fig4_destinations import run_fig4
from repro.experiments.fig5_geodistance import Fig5Config, run_fig5
from repro.experiments.fig6_bandwidth import Fig6Config, run_fig6
from repro.experiments.reporting import format_comparisons
from repro.routing.convergence import analyze_gadget
from repro.topology.fixtures import bad_gadget_topology, disagree_topology


@dataclass(frozen=True)
class RunnerConfig:
    """Sizes of the combined experiment run.

    ``seed`` overrides the per-experiment default seeds so a full run is
    reproducible end-to-end from a single number (``repro experiments
    --seed N``); ``None`` keeps each experiment's own default.
    ``trials`` overrides the Fig. 2 trial count (``repro experiments
    --trials 200`` reaches the paper scale without touching ``--full``,
    which also enlarges every topology-based figure).
    """

    full: bool = False
    seed: int | None = None
    trials: int | None = None

    def fig2(self) -> Fig2Config:
        """Fig. 2 configuration (200 trials at full scale, as in the paper)."""
        if self.full:
            config = Fig2Config(trials=200)
        else:
            config = Fig2Config(choice_counts=(10, 20, 30, 40, 50), trials=25)
        if self.seed is not None:
            config = replace(config, seed=self.seed)
        if self.trials is not None:
            config = replace(config, trials=self.trials)
        return config

    def diversity(self) -> PathDiversityConfig:
        """Shared Fig. 3/4 configuration."""
        if self.full:
            config = PathDiversityConfig(sample_size=500)
        else:
            config = PathDiversityConfig(
                num_tier2=40, num_tier3=120, num_stubs=400, sample_size=150
            )
        if self.seed is not None:
            config = replace(config, seed=self.seed)
        return config

    def fig5(self) -> Fig5Config:
        """Fig. 5 configuration."""
        base = self.diversity()
        config = Fig5Config(diversity=base, pair_sample_size=80 if self.full else 40)
        if self.seed is not None:
            config = replace(config, geography_seed=self.seed)
        return config

    def fig6(self) -> Fig6Config:
        """Fig. 6 configuration."""
        base = self.diversity()
        config = Fig6Config(diversity=base, pair_sample_size=80 if self.full else 40)
        if self.seed is not None:
            config = replace(config, sampling_seed=self.seed)
        return config


# ----------------------------------------------------------------------
# Sections.  Each is a module-level function of (config, context) so the
# parallel path can pickle and dispatch them; the tuple fixes the merge
# order, which is what keeps seeded output byte-identical under --jobs.
# ----------------------------------------------------------------------
def _section_stability(config: RunnerConfig, context=None) -> str:
    """§II stability comparison: DISAGREE and BAD GADGET under BGP."""
    disagree = analyze_gadget(disagree_topology())
    bad = analyze_gadget(bad_gadget_topology())
    lines = [
        "== §II — BGP stability gadgets ==",
        (
            f"DISAGREE: converged under every schedule = {disagree.always_converged}, "
            f"distinct stable states = {disagree.distinct_stable_states} "
            "(paper: converges, but non-deterministically)"
        ),
        (
            f"BAD GADGET: oscillation detected = {bad.any_oscillation}, "
            f"converged = {bad.always_converged} "
            "(paper: persistent route oscillations)"
        ),
        "PAN forwarding along source-selected paths is loop-free by construction "
        "(see repro.routing.forwarding and its tests).",
    ]
    return "\n".join(lines)


def _section_fig2(config: RunnerConfig, context=None) -> str:
    fig2 = run_fig2(config.fig2())
    return (
        format_comparisons("Fig. 2 — Price of Dishonesty", fig2.comparisons())
        + "\n\n"
        + fig2.report()
    )


def _section_fig3(config: RunnerConfig, context=None) -> str:
    fig3 = run_fig3(config.diversity(), context=context)
    return (
        format_comparisons("Fig. 3 — length-3 paths per AS", fig3.comparisons())
        + "\n\n"
        + fig3.report()
    )


def _section_fig4(config: RunnerConfig, context=None) -> str:
    fig4 = run_fig4(config.diversity(), context=context)
    return (
        format_comparisons("Fig. 4 — nearby destinations per AS", fig4.comparisons())
        + "\n\n"
        + fig4.report()
    )


def _section_fig5(config: RunnerConfig, context=None) -> str:
    fig5 = run_fig5(config.fig5(), context=context)
    return (
        format_comparisons("Fig. 5 — geodistance of MA paths", fig5.comparisons())
        + "\n\n"
        + fig5.report()
    )


def _section_fig6(config: RunnerConfig, context=None) -> str:
    fig6 = run_fig6(config.fig6(), context=context)
    return (
        format_comparisons("Fig. 6 — bandwidth of MA paths", fig6.comparisons())
        + "\n\n"
        + fig6.report()
    )


#: The report sections in output order.
_SECTIONS = (
    _section_stability,
    _section_fig2,
    _section_fig3,
    _section_fig4,
    _section_fig5,
    _section_fig6,
)

#: Sections that consume the shared diversity context.
_CONTEXT_SECTIONS = frozenset(
    {_section_fig3, _section_fig4, _section_fig5, _section_fig6}
)


def _run_section(index: int, config: RunnerConfig) -> str:
    """Worker entry point for process-parallel execution."""
    return _SECTIONS[index](config)


def run_all(config: RunnerConfig | None = None, *, jobs: int = 1) -> str:
    """Run every experiment and return the combined text report.

    ``jobs`` > 1 runs the sections in that many worker processes.  The
    merge order is the fixed section order regardless of completion
    order, and every section is deterministic given its config, so the
    report is byte-identical to a sequential run.
    """
    config = config or RunnerConfig()
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")

    if jobs == 1:
        from repro.experiments.context import DiversityContext

        context = DiversityContext.build(config.diversity())
        sections = [
            section(config, context) if section in _CONTEXT_SECTIONS else section(config)
            for section in _SECTIONS
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(_SECTIONS))) as executor:
            futures = [
                executor.submit(_run_section, index, config)
                for index in range(len(_SECTIONS))
            ]
            sections = [future.result() for future in futures]

    return "\n\n" + "\n\n\n".join(sections) + "\n"


def _stability_section() -> str:
    """Backward-compatible alias for the §II stability section."""
    return _section_stability(RunnerConfig())


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run paper-scale trial counts and sample sizes (slower)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed every experiment for an end-to-end reproducible run",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Fig. 2 trials per cardinality (200 = paper scale; defaults "
        "to the run scale's own trial count)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the figure sections in N worker processes (deterministic "
        "merge order; default: sequential)",
    )
    arguments = parser.parse_args()
    if arguments.jobs < 1:
        parser.error(f"--jobs must be a positive integer, got {arguments.jobs}")
    if arguments.trials is not None and arguments.trials < 1:
        parser.error(f"--trials must be a positive integer, got {arguments.trials}")
    print(
        run_all(
            RunnerConfig(
                full=arguments.full, seed=arguments.seed, trials=arguments.trials
            ),
            jobs=arguments.jobs,
        )
    )


if __name__ == "__main__":
    main()
