"""Run every experiment of the paper's evaluation and print a combined report.

``python -m repro.experiments.runner`` regenerates the data behind all
figures (with reduced default sizes; pass ``--full`` for paper-scale
trial counts) and prints paper-vs-measured comparison tables, the same
content that EXPERIMENTS.md records.  The entry point is a thin alias
of ``repro experiments`` — both route through the one CLI adapter in
:mod:`repro.api.adapter`.

Sections return structured :class:`~repro.experiments.reporting.SectionResult`
values (comparisons, tables, CDF series, headline metrics); the text
report is a pure rendering of them (:func:`run_all` keeps returning the
combined text for backward compatibility, :func:`run_sections` is the
structured form the API session consumes).

A sequential run shares one :class:`DiversityContext` (topology,
compiled path engine, MA enumeration and path index) across Figs. 3–6
instead of rebuilding it per figure.  ``--jobs N`` opts into
process-parallel figure execution: the parent publishes the compiled
topology once into the memory-mapped artifact store
(:mod:`repro.core.artifacts`), each section runs in its own worker
process and opens that artifact zero-copy instead of recompiling, and
the results are merged in the fixed section order, so seeded output is
byte-identical to a sequential run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.experiments.fig2_pod import Fig2Config, run_fig2
from repro.experiments.fig3_paths import PathDiversityConfig, run_fig3
from repro.experiments.fig4_destinations import run_fig4
from repro.experiments.fig5_geodistance import Fig5Config, run_fig5
from repro.experiments.fig6_bandwidth import Fig6Config, run_fig6
from repro.experiments.reporting import (
    SectionResult,
    render_report,
    render_section,
)
from repro.routing.convergence import analyze_gadget
from repro.topology.fixtures import bad_gadget_topology, disagree_topology


@dataclass(frozen=True)
class RunnerConfig:
    """Sizes of the combined experiment run.

    ``seed`` overrides the per-experiment default seeds so a full run is
    reproducible end-to-end from a single number (``repro experiments
    --seed N``); ``None`` keeps each experiment's own default.
    ``trials`` overrides the Fig. 2 trial count (``repro experiments
    --trials 200`` reaches the paper scale without touching ``--full``,
    which also enlarges every topology-based figure).
    """

    full: bool = False
    seed: int | None = None
    trials: int | None = None

    def fig2(self) -> Fig2Config:
        """Fig. 2 configuration (200 trials at full scale, as in the paper)."""
        if self.full:
            config = Fig2Config(trials=200)
        else:
            config = Fig2Config(choice_counts=(10, 20, 30, 40, 50), trials=25)
        if self.seed is not None:
            config = replace(config, seed=self.seed)
        if self.trials is not None:
            config = replace(config, trials=self.trials)
        return config

    def diversity(self) -> PathDiversityConfig:
        """Shared Fig. 3/4 configuration."""
        if self.full:
            config = PathDiversityConfig(sample_size=500)
        else:
            config = PathDiversityConfig(
                num_tier2=40, num_tier3=120, num_stubs=400, sample_size=150
            )
        if self.seed is not None:
            config = replace(config, seed=self.seed)
        return config

    def fig5(self) -> Fig5Config:
        """Fig. 5 configuration."""
        base = self.diversity()
        config = Fig5Config(diversity=base, pair_sample_size=80 if self.full else 40)
        if self.seed is not None:
            config = replace(config, geography_seed=self.seed)
        return config

    def fig6(self) -> Fig6Config:
        """Fig. 6 configuration."""
        base = self.diversity()
        config = Fig6Config(diversity=base, pair_sample_size=80 if self.full else 40)
        if self.seed is not None:
            config = replace(config, sampling_seed=self.seed)
        return config


# ----------------------------------------------------------------------
# Sections.  Each is a module-level function of (config, context)
# returning a SectionResult, so the parallel path can pickle and
# dispatch them; the tuple fixes the merge order, which is what keeps
# seeded output byte-identical under --jobs.
# ----------------------------------------------------------------------
def _section_stability(config: RunnerConfig, context=None) -> SectionResult:
    """§II stability comparison: DISAGREE and BAD GADGET under BGP."""
    disagree = analyze_gadget(disagree_topology())
    bad = analyze_gadget(bad_gadget_topology())
    return SectionResult(
        key="stability",
        title="§II — BGP stability gadgets",
        preamble=(
            (
                f"DISAGREE: converged under every schedule = {disagree.always_converged}, "
                f"distinct stable states = {disagree.distinct_stable_states} "
                "(paper: converges, but non-deterministically)"
            ),
            (
                f"BAD GADGET: oscillation detected = {bad.any_oscillation}, "
                f"converged = {bad.always_converged} "
                "(paper: persistent route oscillations)"
            ),
            "PAN forwarding along source-selected paths is loop-free by construction "
            "(see repro.routing.forwarding and its tests).",
        ),
        metrics={
            "disagree_always_converged": bool(disagree.always_converged),
            "disagree_distinct_stable_states": int(disagree.distinct_stable_states),
            "bad_gadget_any_oscillation": bool(bad.any_oscillation),
            "bad_gadget_always_converged": bool(bad.always_converged),
        },
    )


def _section_fig2(config: RunnerConfig, context=None) -> SectionResult:
    fig2 = run_fig2(
        config.fig2(), engine=context.negotiation if context is not None else None
    )
    return SectionResult(
        key="fig2",
        title="Fig. 2 — Price of Dishonesty",
        comparisons=tuple(fig2.comparisons()),
        table=fig2.table(),
        metrics=fig2.metrics(),
    )


def _section_fig3(config: RunnerConfig, context=None) -> SectionResult:
    fig3 = run_fig3(config.diversity(), context=context)
    return SectionResult(
        key="fig3",
        title="Fig. 3 — length-3 paths per AS",
        comparisons=tuple(fig3.comparisons()),
        table=fig3.table(),
        series_caption=fig3.SERIES_CAPTION,
        series=fig3.series(),
        metrics=fig3.metrics(),
    )


def _section_fig4(config: RunnerConfig, context=None) -> SectionResult:
    fig4 = run_fig4(config.diversity(), context=context)
    return SectionResult(
        key="fig4",
        title="Fig. 4 — nearby destinations per AS",
        comparisons=tuple(fig4.comparisons()),
        table=fig4.table(),
        series_caption=fig4.SERIES_CAPTION,
        series=fig4.series(),
        metrics=fig4.metrics(),
    )


def _section_fig5(config: RunnerConfig, context=None) -> SectionResult:
    fig5 = run_fig5(config.fig5(), context=context)
    return SectionResult(
        key="fig5",
        title="Fig. 5 — geodistance of MA paths",
        comparisons=tuple(fig5.comparisons()),
        table=fig5.table(),
        series=fig5.series(),
        metrics=fig5.metrics(),
    )


def _section_fig6(config: RunnerConfig, context=None) -> SectionResult:
    fig6 = run_fig6(config.fig6(), context=context)
    return SectionResult(
        key="fig6",
        title="Fig. 6 — bandwidth of MA paths",
        comparisons=tuple(fig6.comparisons()),
        table=fig6.table(),
        series=fig6.series(),
        metrics=fig6.metrics(),
    )


#: The report sections in output order.
_SECTIONS = (
    _section_stability,
    _section_fig2,
    _section_fig3,
    _section_fig4,
    _section_fig5,
    _section_fig6,
)

#: Sections that consume the shared diversity context.
_CONTEXT_SECTIONS = frozenset(
    {_section_fig2, _section_fig3, _section_fig4, _section_fig5, _section_fig6}
)


def _run_section(
    index: int, config: RunnerConfig, artifact_dir: str | None = None
) -> SectionResult:
    """Worker entry point for process-parallel execution.

    With an ``artifact_dir`` the worker opens the parent-published
    compiled-topology artifact through the store (a zero-copy mmap of
    pages shared with every sibling worker) instead of compiling its
    own; per-process memoization in ``context_for`` still applies when
    several sections land on the same worker.
    """
    section = _SECTIONS[index]
    if section not in _CONTEXT_SECTIONS:
        return section(config)
    from repro.core.artifacts import ArtifactStore
    from repro.experiments.context import context_for

    store = ArtifactStore(artifact_dir) if artifact_dir is not None else None
    ctx = context_for(config.diversity(), None, store=store)
    return section(config, ctx)


def _publish_diversity_artifact(config: RunnerConfig, artifact_dir: str | None) -> str:
    """Publish the run's compiled topology into the artifact store.

    Returns the store root to hand to workers.  Publishing is
    idempotent and content-addressed, so repeated runs of the same
    seeded configuration hit the existing artifact instead of
    recompiling.
    """
    from repro.core.artifacts import ArtifactStore
    from repro.topology.generator import generate_topology

    diversity = config.diversity()
    graph = generate_topology(
        num_tier1=diversity.num_tier1,
        num_tier2=diversity.num_tier2,
        num_tier3=diversity.num_tier3,
        num_stubs=diversity.num_stubs,
        seed=diversity.seed,
    ).graph
    store = ArtifactStore(artifact_dir)
    store.ensure(graph)
    return str(store.root)


def run_sections(
    config: RunnerConfig | None = None,
    *,
    jobs: int = 1,
    context=None,
    artifact_dir: str | None = None,
) -> tuple[SectionResult, ...]:
    """Run every experiment and return the structured section results.

    ``jobs`` > 1 runs the sections in that many worker processes; the
    merge order is the fixed section order regardless of completion
    order, and every section is deterministic given its config, so the
    rendered report is byte-identical to a sequential run.  Before
    dispatch the parent publishes the run's compiled topology into the
    artifact store (``artifact_dir``, default
    :func:`repro.core.artifacts.default_store_root`); workers open it
    via mmap instead of recompiling.  ``context`` lets a caller that
    already holds a matching
    :class:`~repro.experiments.context.DiversityContext` (the API
    session) share it with the sequential path; mismatched or absent
    contexts fall back to a fresh build.
    """
    config = config or RunnerConfig()
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")

    if jobs == 1:
        from repro.experiments.context import context_for

        ctx = context_for(config.diversity(), context)
        return tuple(
            section(config, ctx) if section in _CONTEXT_SECTIONS else section(config)
            for section in _SECTIONS
        )

    store_root = _publish_diversity_artifact(config, artifact_dir)
    with ProcessPoolExecutor(max_workers=min(jobs, len(_SECTIONS))) as executor:
        futures = [
            executor.submit(_run_section, index, config, store_root)
            for index in range(len(_SECTIONS))
        ]
        return tuple(future.result() for future in futures)


def run_all(config: RunnerConfig | None = None, *, jobs: int = 1) -> str:
    """Run every experiment and return the combined text report.

    The text is a pure rendering of :func:`run_sections` — byte-identical
    to the pre-redesign report (golden tests pin this).
    """
    return render_report(run_sections(config, jobs=jobs))


def _stability_section() -> str:
    """Backward-compatible alias for the §II stability section text."""
    return render_section(_section_stability(RunnerConfig()))


def main(argv=None) -> None:
    """Command-line entry point: an alias of ``repro experiments``.

    The argparse surface and validation live in one place —
    :mod:`repro.api.adapter` — shared with the ``repro`` CLI.
    """
    import sys

    from repro.api.adapter import run_experiments_command

    sys.exit(run_experiments_command(argv))


if __name__ == "__main__":
    main()
