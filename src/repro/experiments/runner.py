"""Run every experiment of the paper's evaluation and print a combined report.

``python -m repro.experiments.runner`` regenerates the data behind all
figures (with reduced default sizes; pass ``--full`` for paper-scale
trial counts) and prints paper-vs-measured comparison tables, the same
content that EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace

from repro.experiments.fig2_pod import Fig2Config, run_fig2
from repro.experiments.fig3_paths import PathDiversityConfig, run_fig3
from repro.experiments.fig4_destinations import run_fig4
from repro.experiments.fig5_geodistance import Fig5Config, run_fig5
from repro.experiments.fig6_bandwidth import Fig6Config, run_fig6
from repro.experiments.reporting import format_comparisons
from repro.routing.convergence import analyze_gadget
from repro.topology.fixtures import bad_gadget_topology, disagree_topology


@dataclass(frozen=True)
class RunnerConfig:
    """Sizes of the combined experiment run.

    ``seed`` overrides the per-experiment default seeds so a full run is
    reproducible end-to-end from a single number (``repro experiments
    --seed N``); ``None`` keeps each experiment's own default.
    """

    full: bool = False
    seed: int | None = None

    def fig2(self) -> Fig2Config:
        """Fig. 2 configuration (200 trials at full scale, as in the paper)."""
        if self.full:
            config = Fig2Config(trials=200)
        else:
            config = Fig2Config(choice_counts=(10, 20, 30, 40, 50), trials=25)
        if self.seed is not None:
            config = replace(config, seed=self.seed)
        return config

    def diversity(self) -> PathDiversityConfig:
        """Shared Fig. 3/4 configuration."""
        if self.full:
            config = PathDiversityConfig(sample_size=500)
        else:
            config = PathDiversityConfig(
                num_tier2=40, num_tier3=120, num_stubs=400, sample_size=150
            )
        if self.seed is not None:
            config = replace(config, seed=self.seed)
        return config

    def fig5(self) -> Fig5Config:
        """Fig. 5 configuration."""
        base = self.diversity()
        config = Fig5Config(diversity=base, pair_sample_size=80 if self.full else 40)
        if self.seed is not None:
            config = replace(config, geography_seed=self.seed)
        return config

    def fig6(self) -> Fig6Config:
        """Fig. 6 configuration."""
        base = self.diversity()
        return Fig6Config(diversity=base, pair_sample_size=80 if self.full else 40)


def run_all(config: RunnerConfig | None = None) -> str:
    """Run every experiment and return the combined text report."""
    config = config or RunnerConfig()
    sections = []

    stability = _stability_section()
    sections.append(stability)

    fig2 = run_fig2(config.fig2())
    sections.append(
        format_comparisons("Fig. 2 — Price of Dishonesty", fig2.comparisons())
        + "\n\n"
        + fig2.report()
    )

    fig3 = run_fig3(config.diversity())
    sections.append(
        format_comparisons("Fig. 3 — length-3 paths per AS", fig3.comparisons())
        + "\n\n"
        + fig3.report()
    )

    fig4 = run_fig4(config.diversity())
    sections.append(
        format_comparisons("Fig. 4 — nearby destinations per AS", fig4.comparisons())
        + "\n\n"
        + fig4.report()
    )

    fig5 = run_fig5(config.fig5())
    sections.append(
        format_comparisons("Fig. 5 — geodistance of MA paths", fig5.comparisons())
        + "\n\n"
        + fig5.report()
    )

    fig6 = run_fig6(config.fig6())
    sections.append(
        format_comparisons("Fig. 6 — bandwidth of MA paths", fig6.comparisons())
        + "\n\n"
        + fig6.report()
    )

    return "\n\n" + "\n\n\n".join(sections) + "\n"


def _stability_section() -> str:
    """§II stability comparison: DISAGREE and BAD GADGET under BGP."""
    disagree = analyze_gadget(disagree_topology())
    bad = analyze_gadget(bad_gadget_topology())
    lines = [
        "== §II — BGP stability gadgets ==",
        (
            f"DISAGREE: converged under every schedule = {disagree.always_converged}, "
            f"distinct stable states = {disagree.distinct_stable_states} "
            "(paper: converges, but non-deterministically)"
        ),
        (
            f"BAD GADGET: oscillation detected = {bad.any_oscillation}, "
            f"converged = {bad.always_converged} "
            "(paper: persistent route oscillations)"
        ),
        "PAN forwarding along source-selected paths is loop-free by construction "
        "(see repro.routing.forwarding and its tests).",
    ]
    return "\n".join(lines)


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run paper-scale trial counts and sample sizes (slower)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed every experiment for an end-to-end reproducible run",
    )
    arguments = parser.parse_args()
    print(run_all(RunnerConfig(full=arguments.full, seed=arguments.seed)))


if __name__ == "__main__":
    main()
