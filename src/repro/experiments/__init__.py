"""Experiment harness: one module per figure of the paper's evaluation.

Each module exposes a ``run_*`` function producing a structured result
with ``table()``/``series()``/``metrics()`` accessors (the figure's
series as structured data), a ``comparisons()`` method (paper-quoted
numbers next to the reproduced measurements), and a ``report()`` method
that renders the text form through the pure renderers in
:mod:`repro.experiments.reporting`.  :mod:`repro.experiments.runner`
runs everything at once, returning
:class:`~repro.experiments.reporting.SectionResult` values
(:func:`~repro.experiments.runner.run_sections`) or their combined text
rendering (:func:`~repro.experiments.runner.run_all`).
"""

from repro.experiments.fig2_pod import Fig2Config, Fig2Result, run_fig2
from repro.experiments.fig3_paths import Fig3Result, PathDiversityConfig, run_fig3
from repro.experiments.fig4_destinations import Fig4Result, run_fig4
from repro.experiments.fig5_geodistance import Fig5Config, Fig5Result, run_fig5
from repro.experiments.fig6_bandwidth import Fig6Config, Fig6Result, run_fig6
from repro.experiments.reporting import (
    PaperComparison,
    SectionResult,
    SectionSeries,
    SectionTable,
    format_comparisons,
    format_table,
    render_report,
    render_section,
)
from repro.experiments.runner import RunnerConfig, run_all, run_sections

__all__ = [
    "Fig2Config",
    "Fig2Result",
    "run_fig2",
    "PathDiversityConfig",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Config",
    "Fig5Result",
    "run_fig5",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
    "PaperComparison",
    "SectionResult",
    "SectionTable",
    "SectionSeries",
    "format_table",
    "format_comparisons",
    "render_report",
    "render_section",
    "RunnerConfig",
    "run_all",
    "run_sections",
]
