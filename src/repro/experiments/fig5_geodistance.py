"""Experiment: Fig. 5 — geodistance of additional MA paths.

Builds the synthetic topology plus a synthetic geographic embedding
(the GeoLite2/CAIDA-geo substitution, see DESIGN.md), enumerates all
MAs, and compares, per analyzed AS pair, the geodistance of the new MA
paths against the minimum / median / maximum geodistance of the GRC
paths (Fig. 5a), plus the relative geodistance reduction among the
benefiting pairs (Fig. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.experiments.fig3_paths import PathDiversityConfig
from repro.experiments.reporting import (
    PaperComparison,
    SectionSeries,
    SectionTable,
    metric_value,
    render_figure_body,
)
from repro.paths.geodistance import GeodistanceResult, analyze_geodistance
from repro.topology.generator import GeneratedTopology
from repro.topology.geography import SyntheticGeographyGenerator

if TYPE_CHECKING:
    from repro.experiments.context import DiversityContext


@dataclass(frozen=True)
class Fig5Config:
    """Parameters of the Fig. 5 experiment."""

    diversity: PathDiversityConfig = PathDiversityConfig(sample_size=60)
    pair_sample_size: int = 60
    geography_seed: int = 11


@dataclass
class Fig5Result:
    """Full result of the Fig. 5 experiment."""

    geodistance: GeodistanceResult
    topology: GeneratedTopology
    num_agreements: int

    def comparisons(self) -> list[PaperComparison]:
        """Headline paper-vs-measured comparisons."""
        result = self.geodistance
        reduction_cdf = result.reduction_cdf()
        median_reduction = (
            reduction_cdf.median if reduction_cdf.count > 0 else float("nan")
        )
        return [
            PaperComparison(
                metric="AS pairs gaining ≥1 path below the GRC minimum geodistance",
                paper_value="≈ 50%",
                measured_value=f"{result.fraction_of_pairs_improving('min', 1):.0%}",
            ),
            PaperComparison(
                metric="AS pairs gaining ≥5 paths below the GRC minimum geodistance",
                paper_value="≈ 25%",
                measured_value=f"{result.fraction_of_pairs_improving('min', 5):.0%}",
            ),
            PaperComparison(
                metric="median relative geodistance reduction among benefiting pairs",
                paper_value="≈ 24%",
                measured_value=f"{median_reduction:.0%}",
            ),
        ]

    def table(self) -> SectionTable:
        """The Fig. 5a condition counts as a structured table."""
        rows = []
        for condition in ("max", "median", "min"):
            cdf = self.geodistance.count_cdf(condition)
            rows.append(
                (
                    f"< GRC {condition}",
                    f"{cdf.fraction_at_least(1):.0%}",
                    f"{cdf.fraction_at_least(5):.0%}",
                    f"{cdf.fraction_at_least(10):.0%}",
                    f"{cdf.mean:.1f}",
                )
            )
        return SectionTable(
            headers=("condition", "≥1 path", "≥5 paths", "≥10 paths", "mean #paths"),
            rows=tuple(rows),
        )

    def series(self) -> tuple[SectionSeries, ...]:
        """The Fig. 5b relative-reduction CDF with its raw values."""
        return (
            SectionSeries(
                "relative geodistance reduction",
                *self.geodistance.reduction_cdf().series(),
            ),
        )

    def metrics(self) -> dict[str, float | int | None]:
        """Headline numbers of the experiment, JSON-safe."""
        reduction = self.geodistance.reduction_cdf()
        return {
            "num_agreements": self.num_agreements,
            "pairs_below_grc_min": metric_value(
                self.geodistance.fraction_of_pairs_improving("min", 1)
            ),
            "pairs_below_grc_min_5": metric_value(
                self.geodistance.fraction_of_pairs_improving("min", 5)
            ),
            "median_reduction": (
                metric_value(reduction.median) if reduction.count > 0 else None
            ),
        }

    def report(self) -> str:
        """Text report with the Fig. 5a condition counts and Fig. 5b reduction CDF."""
        return render_figure_body(self.table(), "", self.series())


def run_fig5(
    config: Fig5Config | None = None,
    *,
    context: "DiversityContext | None" = None,
) -> Fig5Result:
    """Run the Fig. 5 experiment.

    Shares the topology, compiled path engine, and MA path index with
    the other figures when the combined runner passes a ``context``;
    only the geographic embedding is figure-specific.
    """
    from repro.experiments.context import context_for

    config = config or Fig5Config()
    diversity = config.diversity
    ctx = context_for(diversity, context)
    embedding = SyntheticGeographyGenerator(seed=config.geography_seed).embed(
        ctx.topology.graph
    )
    geodistance = analyze_geodistance(
        ctx.topology.graph,
        embedding,
        index=ctx.index,
        sample_size=config.pair_sample_size,
        seed=diversity.seed,
        engine=ctx.engine,
    )
    return Fig5Result(
        geodistance=geodistance, topology=ctx.topology, num_agreements=len(ctx.agreements)
    )
