"""Experiment: Fig. 3 — length-3 paths per AS under MA conclusion degrees.

Builds a synthetic Internet-like topology (the CAIDA substitution, see
DESIGN.md), enumerates all maximal mutuality-based agreements, and
computes, for a random sample of ASes, the number of length-3 paths
under the six conclusion scenarios of the paper (GRC, MA* Top 1/5/50,
MA*, MA).  The §VI-A headline statistics (average / maximum additional
paths) are reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.experiments.reporting import (
    PaperComparison,
    SectionSeries,
    SectionTable,
    metric_value,
    render_figure_body,
)
from repro.paths.diversity import DEFAULT_SCENARIOS, DiversityResult, analyze_path_diversity
from repro.topology.generator import GeneratedTopology, TopologyParameters

if TYPE_CHECKING:
    from repro.experiments.context import DiversityContext


@dataclass(frozen=True)
class PathDiversityConfig:
    """Parameters shared by the Fig. 3 and Fig. 4 experiments."""

    num_tier1: int = 8
    num_tier2: int = 30
    num_tier3: int = 100
    num_stubs: int = 350
    sample_size: int = 200
    seed: int = 2021

    def topology_parameters(self) -> TopologyParameters:
        """Topology-generator parameters for this configuration."""
        return TopologyParameters(
            num_tier1=self.num_tier1,
            num_tier2=self.num_tier2,
            num_tier3=self.num_tier3,
            num_stubs=self.num_stubs,
            seed=self.seed,
        )


@dataclass
class Fig3Result:
    """Full result of the Fig. 3 experiment."""

    diversity: DiversityResult
    topology: GeneratedTopology
    num_agreements: int
    scenarios: tuple[str, ...] = field(default=DEFAULT_SCENARIOS)

    def comparisons(self) -> list[PaperComparison]:
        """Headline paper-vs-measured comparisons (shape, not absolute scale)."""
        grc_max = self.diversity.path_cdf("GRC").maximum
        ma_cdf = self.diversity.path_cdf("MA")
        ma_star_cdf = self.diversity.path_cdf("MA*")
        top1_cdf = self.diversity.path_cdf("MA* (Top 1)")
        summary = self.diversity.additional_path_summary()
        fraction_exceeding_grc_max = ma_cdf.fraction_above(grc_max)
        return [
            PaperComparison(
                metric="ASes exceeding the GRC maximum path count once all MAs concluded",
                paper_value="20% exceed 45k (the GRC max)",
                measured_value=f"{fraction_exceeding_grc_max:.0%} exceed {grc_max:.0f}",
                note="absolute counts differ on the synthetic topology",
            ),
            PaperComparison(
                metric="average additional length-3 paths per AS",
                paper_value="22,891 (max 196,796)",
                measured_value=f"{summary['mean']:.0f} (max {summary['max']:.0f})",
            ),
            PaperComparison(
                metric="MA* close to MA (most gains are directly negotiated)",
                paper_value="CDFs nearly coincide",
                measured_value=(
                    f"mean MA* = {ma_star_cdf.mean:.0f} vs mean MA = {ma_cdf.mean:.0f}"
                ),
            ),
            PaperComparison(
                metric="a single MA already yields large gains",
                paper_value="Top-1 gains several thousand paths",
                measured_value=(
                    f"mean Top-1 gain = "
                    f"{top1_cdf.mean - self.diversity.path_cdf('GRC').mean:.0f} paths"
                ),
            ),
        ]

    #: Caption above the CDF series block of the text report.
    SERIES_CAPTION = "CDF series (paths, fraction of ASes):"

    def table(self) -> SectionTable:
        """The per-scenario distribution as a structured table."""
        rows = []
        for scenario in self.scenarios:
            cdf = self.diversity.path_cdf(scenario)
            rows.append(
                (scenario, f"{cdf.mean:.0f}", f"{cdf.median:.0f}", f"{cdf.maximum:.0f}")
            )
        return SectionTable(
            headers=("scenario", "mean paths", "median paths", "max paths"),
            rows=tuple(rows),
        )

    def series(self) -> tuple[SectionSeries, ...]:
        """The per-scenario CDF series with their raw values."""
        return tuple(
            SectionSeries(scenario, *self.diversity.path_cdf(scenario).series())
            for scenario in self.scenarios
        )

    def metrics(self) -> dict[str, float | int | None]:
        """Headline numbers of the experiment, JSON-safe."""
        extra = self.diversity.additional_path_summary()
        return {
            "num_agreements": self.num_agreements,
            "grc_mean_paths": metric_value(self.diversity.path_cdf("GRC").mean),
            "ma_star_mean_paths": metric_value(self.diversity.path_cdf("MA*").mean),
            "ma_mean_paths": metric_value(self.diversity.path_cdf("MA").mean),
            "additional_paths_mean": metric_value(extra["mean"]),
            "additional_paths_max": metric_value(extra["max"]),
        }

    def report(self) -> str:
        """Text report with the per-scenario distribution and the CDF series."""
        return render_figure_body(self.table(), self.SERIES_CAPTION, self.series())


def run_fig3(
    config: PathDiversityConfig | None = None,
    *,
    context: "DiversityContext | None" = None,
) -> Fig3Result:
    """Run the Fig. 3 experiment.

    ``context`` lets the combined runner share one topology, compiled
    path engine, and MA enumeration across Figs. 3–6; standalone calls
    build their own.
    """
    from repro.experiments.context import context_for

    config = config or PathDiversityConfig()
    ctx = context_for(config, context)
    diversity = analyze_path_diversity(
        ctx.topology.graph,
        sample_size=config.sample_size,
        seed=config.seed,
        engine=ctx.engine,
        index=ctx.index,
    )
    return Fig3Result(
        diversity=diversity, topology=ctx.topology, num_agreements=len(ctx.agreements)
    )
