"""Experiment: Fig. 4 — destinations reachable over length-3 paths.

Same workload as Fig. 3 (the two figures share the analysis pass in the
paper as well); the reported quantity is the number of destinations
reachable over length-3 paths under the six MA-conclusion scenarios,
plus the §VI-A headline statistics on additionally reachable
destinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.fig3_paths import PathDiversityConfig
from repro.experiments.reporting import (
    PaperComparison,
    SectionSeries,
    SectionTable,
    metric_value,
    render_figure_body,
)
from repro.paths.diversity import DEFAULT_SCENARIOS, DiversityResult, analyze_path_diversity
from repro.topology.generator import GeneratedTopology

if TYPE_CHECKING:
    from repro.experiments.context import DiversityContext


@dataclass
class Fig4Result:
    """Full result of the Fig. 4 experiment."""

    diversity: DiversityResult
    topology: GeneratedTopology
    num_agreements: int
    scenarios: tuple[str, ...] = field(default=DEFAULT_SCENARIOS)

    def comparisons(self) -> list[PaperComparison]:
        """Headline paper-vs-measured comparisons."""
        grc_cdf = self.diversity.destination_cdf("GRC")
        ma_cdf = self.diversity.destination_cdf("MA")
        summary = self.diversity.additional_destination_summary()
        # The paper anchors the comparison at 5,000 destinations on the
        # real topology; on the synthetic topology the analogous anchor
        # is the GRC median.
        anchor = grc_cdf.median
        return [
            PaperComparison(
                metric="ASes reaching more destinations than the GRC median once all MAs concluded",
                paper_value="40% → 57% reach >5,000 destinations",
                measured_value=(
                    f"{grc_cdf.fraction_above(anchor):.0%} → "
                    f"{ma_cdf.fraction_above(anchor):.0%} reach >{anchor:.0f}"
                ),
                note="anchor rescaled to the synthetic topology",
            ),
            PaperComparison(
                metric="average additionally reachable destinations per AS",
                paper_value="2,181 (max 7,144)",
                measured_value=f"{summary['mean']:.0f} (max {summary['max']:.0f})",
            ),
            PaperComparison(
                metric="destination gains are more broadly distributed than path gains",
                paper_value="yes",
                measured_value=(
                    "yes"
                    if _relative_spread(self.diversity, "destinations")
                    <= _relative_spread(self.diversity, "paths")
                    else "no"
                ),
                note="compared via max/mean ratio of the additional gains",
            ),
        ]

    #: Caption above the CDF series block of the text report.
    SERIES_CAPTION = "CDF series (destinations, fraction of ASes):"

    def table(self) -> SectionTable:
        """The per-scenario distribution as a structured table."""
        rows = []
        for scenario in self.scenarios:
            cdf = self.diversity.destination_cdf(scenario)
            rows.append(
                (scenario, f"{cdf.mean:.0f}", f"{cdf.median:.0f}", f"{cdf.maximum:.0f}")
            )
        return SectionTable(
            headers=(
                "scenario",
                "mean destinations",
                "median destinations",
                "max destinations",
            ),
            rows=tuple(rows),
        )

    def series(self) -> tuple[SectionSeries, ...]:
        """The per-scenario CDF series with their raw values."""
        return tuple(
            SectionSeries(scenario, *self.diversity.destination_cdf(scenario).series())
            for scenario in self.scenarios
        )

    def metrics(self) -> dict[str, float | int | None]:
        """Headline numbers of the experiment, JSON-safe."""
        extra = self.diversity.additional_destination_summary()
        return {
            "num_agreements": self.num_agreements,
            "grc_mean_destinations": metric_value(
                self.diversity.destination_cdf("GRC").mean
            ),
            "ma_mean_destinations": metric_value(
                self.diversity.destination_cdf("MA").mean
            ),
            "additional_destinations_mean": metric_value(extra["mean"]),
            "additional_destinations_max": metric_value(extra["max"]),
        }

    def report(self) -> str:
        """Text report with the per-scenario distribution and the CDF series."""
        return render_figure_body(self.table(), self.SERIES_CAPTION, self.series())


def _relative_spread(diversity: DiversityResult, kind: str) -> float:
    """Max/mean ratio of the additional gains (a simple spread measure)."""
    if kind == "paths":
        summary = diversity.additional_path_summary()
    else:
        summary = diversity.additional_destination_summary()
    if summary["mean"] <= 0.0:
        return float("inf")
    return summary["max"] / summary["mean"]


def run_fig4(
    config: PathDiversityConfig | None = None,
    *,
    context: "DiversityContext | None" = None,
) -> Fig4Result:
    """Run the Fig. 4 experiment.

    Shares the topology, compiled path engine, and MA enumeration with
    the other figures when the combined runner passes a ``context``.
    """
    from repro.experiments.context import context_for

    config = config or PathDiversityConfig()
    ctx = context_for(config, context)
    diversity = analyze_path_diversity(
        ctx.topology.graph,
        sample_size=config.sample_size,
        seed=config.seed,
        engine=ctx.engine,
        index=ctx.index,
    )
    return Fig4Result(
        diversity=diversity, topology=ctx.topology, num_agreements=len(ctx.agreements)
    )
