"""Experiment: Fig. 2 — Price of Dishonesty vs. choice-set size.

For the two uniform utility distributions ``U(1)`` (uniform on
``[−1, 1]²``) and ``U(2)`` (uniform on ``[−1/2, 1]²``), and for several
choice-set cardinalities ``W``, the experiment generates random choice
sets, finds the equilibrium of the induced bargaining game, and records
the minimum and mean Price of Dishonesty over the trials.  The paper
reports that the PoD drops with more choices and flattens out around
``W ≈ 50`` at roughly 10 % (minimum over trials).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bargaining.distributions import (
    JointUtilityDistribution,
    paper_distribution_u1,
    paper_distribution_u2,
)
from repro.bargaining.engine import NegotiationEngine
from repro.bargaining.mechanism import BoscoService
from repro.experiments.reporting import (
    PaperComparison,
    SectionTable,
    metric_value,
    render_figure_body,
)


@dataclass(frozen=True)
class Fig2Config:
    """Parameters of the Fig. 2 experiment.

    The paper uses 200 trials per cardinality; the default here is lower
    so that the benchmark finishes quickly — pass ``trials=200`` (now
    reachable as ``repro experiments --trials 200``) for the full
    reproduction.  ``backend`` selects the
    :class:`~repro.bargaining.mechanism.BoscoService` evaluation path:
    the batched engine (default) or the naive per-trial reference; both
    produce byte-identical seeded tables.
    """

    choice_counts: tuple[int, ...] = (10, 20, 30, 40, 50, 60)
    trials: int = 40
    seed: int = 7
    backend: str = "batched"


@dataclass(frozen=True)
class Fig2Row:
    """One point of a Fig. 2 series."""

    distribution: str
    num_choices: int
    min_pod: float
    mean_pod: float
    mean_equilibrium_choices: float


@dataclass
class Fig2Result:
    """Full result of the Fig. 2 experiment."""

    rows: list[Fig2Row] = field(default_factory=list)

    def series(self, distribution: str, statistic: str) -> list[tuple[int, float]]:
        """(W, PoD) series for one distribution and one statistic (min / mean)."""
        attribute = {"min": "min_pod", "mean": "mean_pod"}[statistic]
        return [
            (row.num_choices, getattr(row, attribute))
            for row in self.rows
            if row.distribution == distribution
        ]

    def best_pod(self, distribution: str) -> float:
        """Lowest minimum PoD reached for a distribution across all W."""
        values = [row.min_pod for row in self.rows if row.distribution == distribution]
        return min(values) if values else float("nan")

    def comparisons(self) -> list[PaperComparison]:
        """Headline paper-vs-measured comparisons."""
        comparisons = []
        for name in ("U(1)", "U(2)"):
            comparisons.append(
                PaperComparison(
                    metric=f"min PoD at largest W, {name}",
                    paper_value="≈ 0.10",
                    measured_value=f"{self.best_pod(name):.3f}",
                    note="paper: ~10% for both distributions around W=50",
                )
            )
        improving = all(
            self.series(name, "mean")[-1][1] <= self.series(name, "mean")[0][1] + 0.02
            for name in ("U(1)", "U(2)")
            if self.series(name, "mean")
        )
        comparisons.append(
            PaperComparison(
                metric="PoD improves (or saturates) with more choices",
                paper_value="yes",
                measured_value="yes" if improving else "no",
                note="compared on the mean-PoD series, first vs. largest W",
            )
        )
        return comparisons

    def table(self) -> SectionTable:
        """The Fig. 2 series as a structured, render-ready table."""
        rows = tuple(
            (
                row.distribution,
                str(row.num_choices),
                f"{row.min_pod:.3f}",
                f"{row.mean_pod:.3f}",
                f"{row.mean_equilibrium_choices:.1f}",
            )
            for row in self.rows
        )
        return SectionTable(
            headers=("distribution", "W", "min PoD", "mean PoD", "avg equilibrium choices"),
            rows=rows,
        )

    def metrics(self) -> dict[str, float | int | None]:
        """Headline numbers of the experiment, JSON-safe."""
        return {
            "best_pod_u1": metric_value(self.best_pod("U(1)")),
            "best_pod_u2": metric_value(self.best_pod("U(2)")),
            "num_rows": len(self.rows),
        }

    def report(self) -> str:
        """Text report mirroring the Fig. 2 series."""
        return render_figure_body(self.table(), "", ())


def run_fig2(
    config: Fig2Config | None = None, *, engine: NegotiationEngine | None = None
) -> Fig2Result:
    """Run the Fig. 2 experiment.

    All ``trials`` random choice-set trials of each cardinality are
    evaluated in one :class:`~repro.bargaining.engine.NegotiationEngine`
    batch (unless ``config.backend`` selects the reference path).  An
    ``engine`` can be passed in so consumers hold a single instance per
    run (sweep shards pass their ``DiversityContext``'s); the engine is
    stateless today, so this is a structural seam rather than a cache.
    """
    config = config or Fig2Config()
    distributions: list[tuple[str, JointUtilityDistribution]] = [
        ("U(1)", paper_distribution_u1()),
        ("U(2)", paper_distribution_u2()),
    ]
    result = Fig2Result()
    for name, distribution in distributions:
        service = BoscoService(
            distribution, seed=config.seed, backend=config.backend, engine=engine
        )
        for num_choices in config.choice_counts:
            statistics = service.pod_statistics(num_choices, trials=config.trials)
            result.rows.append(
                Fig2Row(
                    distribution=name,
                    num_choices=num_choices,
                    min_pod=statistics["min"],
                    mean_pod=statistics["mean"],
                    mean_equilibrium_choices=statistics["mean_equilibrium_choices"],
                )
            )
    return result
