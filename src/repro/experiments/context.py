"""Shared per-run context for the path-diversity experiments (Figs. 3–6).

Figs. 3, 4, 5, and 6 all start from the same expensive artifacts: the
synthetic topology of a :class:`PathDiversityConfig`, its compiled
:class:`~repro.core.CompiledTopology`, the batched
:class:`~repro.core.PathEngine`, the enumerated mutuality-based
agreements, and the MA path index.  Before the compiled core existed,
every figure rebuilt all of them from scratch; a combined run paid four
times for identical work.  :class:`DiversityContext` builds them once
and is threaded through ``run_fig3``/``run_fig4``/``run_fig5``/
``run_fig6`` by the combined runner (each ``run_figN`` still builds its
own context when called standalone, so the public entry points keep
their one-argument signatures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import enumerate_mutuality_agreements
from repro.bargaining.engine import NegotiationEngine
from repro.core import CompiledTopology, PathEngine, compile_topology, path_engine_for
from repro.core.artifacts import ArtifactStore
from repro.paths.ma_paths import MAPathIndex, build_ma_path_index
from repro.topology.generator import GeneratedTopology, generate_topology

if TYPE_CHECKING:  # avoids a runtime cycle with fig3_paths
    from repro.experiments.fig3_paths import PathDiversityConfig


@dataclass
class DiversityContext:
    """Everything Figs. 3–6 share for one diversity configuration."""

    config: "PathDiversityConfig"
    topology: GeneratedTopology
    compiled: CompiledTopology
    engine: PathEngine
    agreements: list[Agreement] = field(default_factory=list)
    index: MAPathIndex = field(default_factory=MAPathIndex)
    #: Shared batched-bargaining engine.  Unlike the path engine it is
    #: currently stateless (cheap to construct, nothing memoized), so
    #: sharing it is a structural seam, not a speedup: consumers hold
    #: one engine per run the way they hold one PathEngine, and any
    #: state the engine grows later (scratch buffers, kernel caches)
    #: is shared for free.
    negotiation: NegotiationEngine = field(default_factory=NegotiationEngine)

    @classmethod
    def build(
        cls,
        config: "PathDiversityConfig",
        *,
        store: ArtifactStore | None = None,
    ) -> "DiversityContext":
        """Generate the topology and derive every shared artifact once.

        With a ``store``, the compiled topology comes from the
        memory-mapped artifact store instead of an in-process compile:
        the first builder publishes the artifact, every later process —
        parallel runner workers, sweep shards — opens it zero-copy and
        shares the physical pages.  The engine's results are identical
        either way (the compiled arrays are element-equal by the
        artifact contract), so store-backed and in-process contexts are
        interchangeable.
        """
        topology = generate_topology(
            num_tier1=config.num_tier1,
            num_tier2=config.num_tier2,
            num_tier3=config.num_tier3,
            num_stubs=config.num_stubs,
            seed=config.seed,
        )
        graph = topology.graph
        if store is not None:
            compiled, _ = store.ensure(graph)
            engine = PathEngine(compiled)
        else:
            compiled = compile_topology(graph)
            engine = path_engine_for(graph)
        agreements = list(enumerate_mutuality_agreements(graph))
        index = build_ma_path_index(agreements)
        return cls(
            config=config,
            topology=topology,
            compiled=compiled,
            engine=engine,
            agreements=agreements,
            index=index,
        )

    def matches(self, config: "PathDiversityConfig") -> bool:
        """Whether this context was built for the given configuration."""
        return self.config == config


#: Single-slot per-process context memo.  Under ``--jobs N`` the figure
#: sections run as independent tasks; when two sections land on the same
#: worker process this lets the second reuse the first's context instead
#: of rebuilding topology + MA enumeration from scratch.  One slot is
#: enough (a run uses one diversity config) and bounds memory.
_LAST_BUILT: list[DiversityContext] = []


def _memo_still_valid(built: DiversityContext) -> bool:
    # Detached (artifact-backed) compiled views have no mutable source;
    # the memoized context's graph is private to it, so the view stays
    # valid for as long as the memo matches the config.
    if built.compiled.detached:
        return True
    return not built.compiled.is_stale(built.topology.graph)


def context_for(
    config: "PathDiversityConfig",
    context: DiversityContext | None,
    *,
    store: ArtifactStore | None = None,
) -> DiversityContext:
    """Reuse ``context`` when it matches ``config``, else build afresh.

    The mismatch path exists so a caller can never silently run a figure
    against the wrong topology: passing a stale context falls back to a
    correct (if slower) fresh build instead of producing wrong numbers.
    Fresh builds are memoized per process (one slot), so repeated calls
    for the same configuration — the parallel runner's workers — build
    once.  ``store`` is forwarded to fresh builds only; a matching
    existing context is reused regardless of how its topology was
    compiled (both kinds answer identically).
    """
    if context is not None and context.matches(config):
        return context
    if (
        _LAST_BUILT
        and _LAST_BUILT[0].matches(config)
        and _memo_still_valid(_LAST_BUILT[0])
    ):
        return _LAST_BUILT[0]
    built = DiversityContext.build(config, store=store)
    _LAST_BUILT[:] = [built]
    return built
