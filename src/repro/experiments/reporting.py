"""Reporting helpers for the experiment harness.

Every experiment module produces (a) the raw series that correspond to a
figure of the paper and (b) a small set of *headline comparisons*:
quantities the paper states in the text, next to the value measured in
this reproduction.  Because the path-diversity experiments run on a
synthetic topology (see DESIGN.md), absolute values differ; the
comparisons are about the qualitative shape — who wins, and roughly by
how much.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperComparison:
    """One paper-quoted quantity next to the reproduced measurement."""

    metric: str
    paper_value: str
    measured_value: str
    note: str = ""


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparisons(title: str, comparisons: list[PaperComparison]) -> str:
    """Render the paper-vs-measured comparison table of an experiment."""
    rows = [
        [c.metric, c.paper_value, c.measured_value, c.note] for c in comparisons
    ]
    table = format_table(["metric", "paper", "measured", "note"], rows)
    return f"== {title} ==\n{table}"


def format_cdf_series(
    name: str, xs: tuple[float, ...], ys: tuple[float, ...], *, max_points: int = 12
) -> str:
    """Render a down-sampled CDF series as one table row block."""
    if not xs:
        return f"{name}: (empty)"
    count = len(xs)
    if count <= max_points:
        indices = list(range(count))
    else:
        step = (count - 1) / (max_points - 1)
        indices = sorted({int(round(i * step)) for i in range(max_points)})
    points = ", ".join(f"({xs[i]:.3g}, {ys[i]:.2f})" for i in indices)
    return f"{name}: {points}"
