"""Reporting: structured section results and their pure text renderers.

Every experiment module produces (a) the raw series that correspond to a
figure of the paper and (b) a small set of *headline comparisons*:
quantities the paper states in the text, next to the value measured in
this reproduction.  Because the path-diversity experiments run on a
synthetic topology (see DESIGN.md), absolute values differ; the
comparisons are about the qualitative shape — who wins, and roughly by
how much.

Since the API redesign, experiment sections return a structured
:class:`SectionResult` (comparisons, table, CDF series, machine-readable
metrics) and *all* text formatting lives here, in pure functions of the
structured data: :func:`render_section` / :func:`render_report` turn
section results into the exact report text the combined runner always
printed, so the JSON envelope and the byte-identical text report are two
views of one value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.envelope import envelope, expect_envelope, require_keys


@dataclass(frozen=True)
class PaperComparison:
    """One paper-quoted quantity next to the reproduced measurement."""

    metric: str
    paper_value: str
    measured_value: str
    note: str = ""

    def to_json_dict(self) -> dict[str, str]:
        """Flat JSON form (no envelope: always nested inside a section)."""
        return {
            "metric": self.metric,
            "paper_value": self.paper_value,
            "measured_value": self.measured_value,
            "note": self.note,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "PaperComparison":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            metric=data["metric"],
            paper_value=data["paper_value"],
            measured_value=data["measured_value"],
            note=data.get("note", ""),
        )


@dataclass(frozen=True)
class SectionTable:
    """A rendered-cell table: headers plus rows of pre-formatted cells.

    Cells are strings on purpose — the experiment decides the number
    formatting (``f"{mean:.0f}"`` vs ``f"{fraction:.0%}"``), the
    renderer only decides alignment.  This is what keeps the text
    report byte-identical while the same value round-trips through
    JSON.
    """

    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form."""
        return {"headers": list(self.headers), "rows": [list(r) for r in self.rows]}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SectionTable":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            headers=tuple(data["headers"]),
            rows=tuple(tuple(row) for row in data["rows"]),
        )


@dataclass(frozen=True)
class SectionSeries:
    """One named (x, y) series — a CDF of a figure, kept as raw floats."""

    name: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form."""
        return {"name": self.name, "xs": list(self.xs), "ys": list(self.ys)}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SectionSeries":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            name=data["name"],
            xs=tuple(float(x) for x in data["xs"]),
            ys=tuple(float(y) for y in data["ys"]),
        )


@dataclass(frozen=True)
class SectionResult:
    """The structured outcome of one report section of the combined run.

    ``key`` is the stable machine identifier (``stability``, ``fig2`` …
    ``fig6``); ``metrics`` carries the headline numbers of the section
    as JSON-safe scalars (non-finite floats are recorded as ``None``).
    The free-text ``preamble`` exists for prose sections (§II) that have
    no comparison table.
    """

    key: str
    title: str
    comparisons: tuple[PaperComparison, ...] = ()
    preamble: tuple[str, ...] = ()
    table: SectionTable | None = None
    series_caption: str = ""
    series: tuple[SectionSeries, ...] = ()
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope of the section."""
        return envelope(
            "section_result",
            {
                "key": self.key,
                "title": self.title,
                "comparisons": [c.to_json_dict() for c in self.comparisons],
                "preamble": list(self.preamble),
                "table": None if self.table is None else self.table.to_json_dict(),
                "series_caption": self.series_caption,
                "series": [s.to_json_dict() for s in self.series],
                "metrics": dict(self.metrics),
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SectionResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "section_result")
        require_keys(payload, "section_result", ("key", "title"))
        table = payload.get("table")
        return cls(
            key=payload["key"],
            title=payload["title"],
            comparisons=tuple(
                PaperComparison.from_json_dict(c) for c in payload.get("comparisons", ())
            ),
            preamble=tuple(payload.get("preamble", ())),
            table=None if table is None else SectionTable.from_json_dict(table),
            series_caption=payload.get("series_caption", ""),
            series=tuple(
                SectionSeries.from_json_dict(s) for s in payload.get("series", ())
            ),
            metrics=dict(payload.get("metrics", {})),
        )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparisons(title: str, comparisons: list[PaperComparison]) -> str:
    """Render the paper-vs-measured comparison table of an experiment."""
    rows = [
        [c.metric, c.paper_value, c.measured_value, c.note] for c in comparisons
    ]
    table = format_table(["metric", "paper", "measured", "note"], rows)
    return f"== {title} ==\n{table}"


def format_cdf_series(
    name: str, xs: tuple[float, ...], ys: tuple[float, ...], *, max_points: int = 12
) -> str:
    """Render a down-sampled CDF series as one table row block."""
    if not xs:
        return f"{name}: (empty)"
    count = len(xs)
    if count <= max_points:
        indices = list(range(count))
    else:
        step = (count - 1) / (max_points - 1)
        indices = sorted({int(round(i * step)) for i in range(max_points)})
    points = ", ".join(f"({xs[i]:.3g}, {ys[i]:.2f})" for i in indices)
    return f"{name}: {points}"


def metric_value(value: float) -> float | None:
    """A metrics-dict value: NaN/inf become ``None`` (strict-JSON safe)."""
    number = float(value)
    return number if math.isfinite(number) else None


# ----------------------------------------------------------------------
# Pure renderers: SectionResult -> the exact pre-redesign report text.
# ----------------------------------------------------------------------
def render_figure_body(
    table: SectionTable | None,
    series_caption: str,
    series: tuple[SectionSeries, ...],
) -> str:
    """Render a figure's body (its table and CDF series) as text.

    This is the pure-function form of what the figure results'
    ``report()`` methods produce; they delegate here so one renderer
    defines the byte layout.
    """
    blocks: list[str] = []
    if table is not None:
        blocks.append(format_table(list(table.headers), [list(r) for r in table.rows]))
    if series:
        text = "\n".join(format_cdf_series(s.name, s.xs, s.ys) for s in series)
        if series_caption:
            text = f"{series_caption}\n{text}"
        blocks.append(text)
    return "\n\n".join(blocks)


def render_section(section: SectionResult) -> str:
    """Render one section exactly as the combined report prints it."""
    if section.comparisons:
        head = format_comparisons(section.title, list(section.comparisons))
    else:
        head = "\n".join([f"== {section.title} ==", *section.preamble])
    body = render_figure_body(section.table, section.series_caption, section.series)
    if not body:
        return head
    return f"{head}\n\n{body}"


def render_report(sections: tuple[SectionResult, ...] | list[SectionResult]) -> str:
    """Render the combined experiment report from its structured sections.

    Byte-identical to the text :func:`repro.experiments.runner.run_all`
    has always returned: a leading blank block, sections separated by a
    blank line + separator line, and a trailing newline.
    """
    return "\n\n" + "\n\n\n".join(render_section(s) for s in sections) + "\n"
