"""Reproduction of *Enabling Novel Interconnection Agreements with
Path-Aware Networking Architectures* (Scherrer, Legner, Perrig, Schmid —
DSN 2021).

The package is organized in layers, bottom-up:

- :mod:`repro.topology` — AS-level topology substrate: mixed graphs with
  provider–customer and peering links, a CAIDA-compatible serialization
  format, a synthetic Internet-like topology generator, geographic
  embedding, and degree-gravity link capacities.
- :mod:`repro.core` — the compiled performance substrate: array-compiled
  topology snapshots with O(1) role tests and the batched GRC length-3
  path engine every analysis layer shares.
- :mod:`repro.economics` — the AS business model of §III-A: pricing
  functions, internal-cost functions, traffic vectors, and AS utility.
- :mod:`repro.agreements` — interconnection agreements (§III-B): classic
  peering agreements and the paper's novel mutuality-based agreements,
  together with agreement-utility computation.
- :mod:`repro.optimization` — Pareto-optimal and fair agreement
  qualification (§IV): flow-volume targets and cash compensation.
- :mod:`repro.bargaining` — the BOSCO bargaining mechanism (§V).
- :mod:`repro.routing` — routing substrates (§II): a BGP path-vector
  simulator with policy-induced oscillation gadgets and a PAN/SCION-like
  simulator with source-selected forwarding paths.
- :mod:`repro.paths` — the path-diversity analyses of §VI.
- :mod:`repro.experiments` — the harness that regenerates every figure of
  the paper's evaluation.
- :mod:`repro.api` — the typed public surface: a reusable
  :class:`~repro.api.Session`, validated request dataclasses, result
  dataclasses with schema-versioned JSON envelopes, and the one CLI
  adapter (imported on demand; ``import repro.api``).
"""

from repro.topology import ASGraph, Relationship
from repro.core import CompiledTopology, PathEngine, compile_topology, path_engine_for
from repro.agreements import AccessOffer, Agreement
from repro.economics import ASBusiness, PricingFunction

__version__ = "1.1.0"

__all__ = [
    "ASGraph",
    "Relationship",
    "CompiledTopology",
    "compile_topology",
    "PathEngine",
    "path_engine_for",
    "Agreement",
    "AccessOffer",
    "ASBusiness",
    "PricingFunction",
    "__version__",
]
