"""The public error taxonomy of the reproduction.

Every failure that crosses the public API surface (:mod:`repro.api`) or
the CLI is an instance of :class:`ReproError`.  The taxonomy is small
and stable:

- :class:`ValidationError` — the caller's request is malformed (a
  negative seed, a non-positive job count, an unknown scenario, a
  malformed sweep spec).  Mapped to process exit code ``2``, the same
  convention ``argparse`` uses for usage errors.
- :class:`OutputError` — the work succeeded but a result could not be
  delivered (an unwritable trace file or topology path).  Mapped to
  exit code ``1``.
- :class:`EnvelopeError` — a JSON envelope fails its schema contract
  (wrong ``kind``, missing or incompatible ``schema_version``,
  malformed payload).  A :class:`ValidationError`, so exit code ``2``.

The classes live in this leaf module (not inside :mod:`repro.api`) so
lower layers — :mod:`repro.experiments`, :mod:`repro.simulation`,
:mod:`repro.sweep` — can raise and translate them without importing the
API package that itself imports those layers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "OutputError",
    "EnvelopeError",
    "exit_code_for",
]


class ReproError(Exception):
    """Base class of every error the public API raises deliberately.

    ``exit_code`` is the stable process exit code a CLI adapter maps the
    error to; subclasses override it.
    """

    exit_code: int = 1


class ValidationError(ReproError, ValueError):
    """The request itself is invalid; nothing was run.

    Raised by the typed request constructors in
    :mod:`repro.api.requests`, so Python-API callers get exactly the
    same rejections (and messages) as CLI users.
    """

    exit_code = 2


class OutputError(ReproError, OSError):
    """The computation succeeded but an output could not be written."""

    exit_code = 1


class EnvelopeError(ValidationError):
    """A JSON envelope does not satisfy the schema contract."""


def exit_code_for(error: BaseException) -> int:
    """The stable process exit code for an error (1 for unknown ones)."""
    if isinstance(error, ReproError):
        return error.exit_code
    return 1
