"""The public error taxonomy of the reproduction.

Every failure that crosses the public API surface (:mod:`repro.api`),
the CLI, or the ``repro serve`` HTTP front end is an instance of
:class:`ReproError`.  The taxonomy is small and stable:

- :class:`ValidationError` — the caller's request is malformed (a
  negative seed, a non-positive job count, an unknown scenario, a
  malformed sweep spec).  Mapped to process exit code ``2``, the same
  convention ``argparse`` uses for usage errors, and to HTTP ``400``.
- :class:`OutputError` — the work succeeded but a result could not be
  delivered (an unwritable trace file or topology path).  Mapped to
  exit code ``1`` and HTTP ``500``.
- :class:`EnvelopeError` — a JSON envelope fails its schema contract
  (wrong ``kind``, missing or incompatible ``schema_version``,
  malformed payload).  A :class:`ValidationError`, so exit code ``2``
  and HTTP ``400``.
- :class:`ServiceError` — the service side failed: a request hit a
  server that cannot serve it (a closed session, a failed equilibrium
  search, an unbindable listen address).  Exit code ``1``, HTTP
  ``500``; its :class:`ServiceUnavailableError` subclass (a draining
  server rejecting new work) maps to HTTP ``503``.

:data:`STATUS_TABLE` is the **single** error→(exit code, HTTP status)
mapping: :func:`exit_code_for` (the CLI adapters) and
:func:`http_status_for` (the ``repro serve`` responder) are two reads
of the same rows, so the process exit code and the HTTP status of a
given failure can never drift apart.

The classes live in this leaf module (not inside :mod:`repro.api`) so
lower layers — :mod:`repro.experiments`, :mod:`repro.simulation`,
:mod:`repro.sweep`, :mod:`repro.serve` — can raise and translate them
without importing the API package that itself imports those layers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "OutputError",
    "EnvelopeError",
    "ServiceError",
    "ServiceUnavailableError",
    "STATUS_TABLE",
    "error_class_for",
    "exit_code_for",
    "http_status_for",
]


class ReproError(Exception):
    """Base class of every error the public API raises deliberately.

    ``exit_code`` is the stable process exit code a CLI adapter maps
    the error to and ``http_status`` the response status the serve
    layer uses; both are reads of :data:`STATUS_TABLE`.
    """

    @property
    def exit_code(self) -> int:
        return exit_code_for(self)

    @property
    def http_status(self) -> int:
        return http_status_for(self)


class ValidationError(ReproError, ValueError):
    """The request itself is invalid; nothing was run.

    Raised by the typed request constructors in
    :mod:`repro.api.requests`, so Python-API callers get exactly the
    same rejections (and messages) as CLI users.
    """


class OutputError(ReproError, OSError):
    """The computation succeeded but an output could not be written."""


class EnvelopeError(ValidationError):
    """A JSON envelope does not satisfy the schema contract."""


class ServiceError(ReproError, RuntimeError):
    """The service side failed; the request may be valid.

    Raised for server-side conditions: a workflow invoked on a closed
    :class:`~repro.api.session.Session`, a negotiation whose equilibrium
    search converged for no trial, a ``repro serve`` listener that
    cannot bind its address.
    """


class ServiceUnavailableError(ServiceError):
    """The service is up but refusing new work (draining for shutdown)."""


#: The one error→(exit code, HTTP status) mapping, most specific class
#: first.  Both :func:`exit_code_for` and :func:`http_status_for` walk
#: these rows, and anything that is no :class:`ReproError` falls back
#: to ``(1, 500)`` — an unexpected internal failure.
STATUS_TABLE: tuple[tuple[type[ReproError], int, int], ...] = (
    (ServiceUnavailableError, 1, 503),
    (ServiceError, 1, 500),
    (EnvelopeError, 2, 400),
    (ValidationError, 2, 400),
    (OutputError, 1, 500),
    (ReproError, 1, 500),
)

_FALLBACK = (1, 500)


def _status_row(error: BaseException) -> tuple[int, int]:
    for error_type, exit_code, http_status in STATUS_TABLE:
        if isinstance(error, error_type):
            return (exit_code, http_status)
    return _FALLBACK


def exit_code_for(error: BaseException) -> int:
    """The stable process exit code for an error (1 for unknown ones)."""
    return _status_row(error)[0]


def http_status_for(error: BaseException) -> int:
    """The HTTP response status for an error (500 for unknown ones)."""
    return _status_row(error)[1]


#: The class a typed client raises for a given status pair.  Several
#: taxonomy members share a row (EnvelopeError/ValidationError both map
#: to (2, 400); ServiceError/OutputError to (1, 500)) — the codes alone
#: cannot tell them apart, so the client re-raises the *canonical*
#: member of each group: the one whose ``except`` clause a caller would
#: reach for first.
_CLIENT_CLASS_PREFERENCE: tuple[type["ReproError"], ...] = (
    ServiceUnavailableError,
    ValidationError,
    ServiceError,
)


def error_class_for(exit_code: int, http_status: int) -> type[ReproError]:
    """The error class a ``(exit_code, http_status)`` pair maps back to.

    This is the client-side read of :data:`STATUS_TABLE`: an
    ``error_result`` envelope carries the two codes, and a typed client
    (:class:`repro.serve.client.ServeClient`) re-raises the matching
    class, so a served failure surfaces as an exception of the same
    taxonomy the underlying workflow raised.  Pairs shared by several
    classes resolve to the canonical member (``(2, 400)`` →
    :class:`ValidationError`, ``(1, 500)`` → :class:`ServiceError`);
    unknown pairs fall back to :class:`ReproError`.
    """
    for error_type in _CLIENT_CLASS_PREFERENCE:
        row = _status_row(error_type(""))
        if row == (exit_code, http_status):
            return error_type
    for error_type, row_exit_code, row_http_status in STATUS_TABLE:
        if (row_exit_code, row_http_status) == (exit_code, http_status):
            return error_type
    return ReproError
