"""Batched mixed-cohort negotiation over heterogeneous mechanisms.

The simulation lifecycle packs every negotiation due at one virtual
instant into a single flush.  In a homogeneous marketplace the whole
flush is one :meth:`~repro.bargaining.mechanism.BoscoService.negotiate_many`
call; in a heterogeneous population the cohort spans several published
mechanisms (one per distinct choice-set cardinality ``W``), so the
flush is decided as **order-preserving sub-batches**: entries are
grouped by mechanism key, each group runs one batched engine call, and
the outcomes are scattered back into request order.

Both paths — :func:`decide_mixed_cohort` (sub-batched) and
:func:`decide_sequential` (one scalar ``negotiate`` per entry, the
reference) — are contracted to be **bit-identical**, never
approximately equal; a property test pins the equality and
``benchmarks/bench_marketplace.py`` asserts the batched path's ≥2×
speedup at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bargaining.mechanism import (
    BoscoService,
    MechanismInformation,
    NegotiationOutcome,
)

__all__ = ["CohortEntry", "decide_mixed_cohort", "decide_sequential"]


@dataclass(frozen=True)
class CohortEntry:
    """One negotiation of a mixed cohort: mechanism key + both utilities.

    ``key`` selects the published mechanism (the lifecycle keys on the
    choice-set cardinality ``W``); utilities are already normalized
    into the mechanism's distribution support.
    """

    key: int
    utility_x: float
    utility_y: float


def _check_keys(
    mechanisms: Mapping[int, MechanismInformation], entries: Sequence[CohortEntry]
) -> None:
    unknown = {entry.key for entry in entries} - set(mechanisms)
    if unknown:
        raise ValueError(
            f"cohort references unpublished mechanism(s) {sorted(unknown)}; "
            f"published: {sorted(mechanisms)}"
        )


def decide_mixed_cohort(
    mechanisms: Mapping[int, MechanismInformation],
    entries: Sequence[CohortEntry],
) -> list[NegotiationOutcome]:
    """Decide a mixed cohort with one batched call per mechanism key.

    Outcomes are returned in entry order.  Each sub-batch preserves
    the relative order of its entries, and sub-batches are executed in
    sorted key order — the outcome of an entry depends only on its own
    mechanism and utilities, so grouping changes nothing but speed.
    """
    _check_keys(mechanisms, entries)
    groups: dict[int, list[int]] = {}
    for index, entry in enumerate(entries):
        groups.setdefault(entry.key, []).append(index)
    outcomes: list[NegotiationOutcome | None] = [None] * len(entries)
    for key in sorted(groups):
        indices = groups[key]
        batch = BoscoService.negotiate_many(
            mechanisms[key],
            [entries[i].utility_x for i in indices],
            [entries[i].utility_y for i in indices],
        )
        for index, outcome in zip(indices, batch):
            outcomes[index] = outcome
    return [outcome for outcome in outcomes if outcome is not None]


def decide_sequential(
    mechanisms: Mapping[int, MechanismInformation],
    entries: Sequence[CohortEntry],
) -> list[NegotiationOutcome]:
    """The per-agent reference path: one scalar negotiation per entry."""
    _check_keys(mechanisms, entries)
    return [
        BoscoService.negotiate(mechanisms[entry.key], entry.utility_x, entry.utility_y)
        for entry in entries
    ]
