"""Heterogeneous agent populations for the marketplace simulation.

The subsystem has three layers:

- :mod:`repro.agents.behaviors` / :mod:`repro.agents.registry` — named,
  parameterized behavior profiles (honest, dishonest, adaptive,
  budget-constrained, regional pricing) with introspectable schemas;
- :mod:`repro.agents.population` — declarative JSON population specs
  mapping profiles onto AS sets (by role, region, degree, explicit
  ASNs, seeded fractions), resolved deterministically against a
  topology;
- :mod:`repro.agents.negotiator` — order-preserving sub-batched
  negotiation of mixed cohorts, bit-identical to the per-agent scalar
  reference.
"""

from repro.agents.behaviors import (
    NUM_REGIONS,
    REGION_NAMES,
    REGION_PRICE_TIERS,
    AdaptiveBehavior,
    AgentBehavior,
    AgentState,
    BudgetBehavior,
    DishonestBehavior,
    RegionalBehavior,
)
from repro.agents.negotiator import (
    CohortEntry,
    decide_mixed_cohort,
    decide_sequential,
)
from repro.agents.population import (
    GroupMatch,
    Population,
    PopulationGroup,
    PopulationSpec,
    assign_regions,
    default_population_spec,
)
from repro.agents.registry import (
    BEHAVIORS,
    behavior_catalog,
    behavior_parameters,
    build_behavior,
    register_behavior,
)

__all__ = [
    "NUM_REGIONS",
    "REGION_NAMES",
    "REGION_PRICE_TIERS",
    "AgentBehavior",
    "AgentState",
    "DishonestBehavior",
    "AdaptiveBehavior",
    "BudgetBehavior",
    "RegionalBehavior",
    "BEHAVIORS",
    "register_behavior",
    "build_behavior",
    "behavior_parameters",
    "behavior_catalog",
    "GroupMatch",
    "PopulationGroup",
    "PopulationSpec",
    "Population",
    "assign_regions",
    "default_population_spec",
    "CohortEntry",
    "decide_mixed_cohort",
    "decide_sequential",
]
