"""Pluggable agent behaviors for the heterogeneous marketplace.

The paper's marketplace results (Figs. 2–6, the Eq. 7 utility model,
the §VI Price of Dishonesty) all assume a single strategy profile
shared by every AS.  This module generalizes that setting to a
*population*: every AS carries a named, parameterized
:class:`AgentBehavior` that hooks into the agreement lifecycle at four
points —

- **reporting** — the utility the agent feeds into the published BOSCO
  equilibrium strategy (honest agents report their true Eq. 7 utility;
  dishonest agents shade it, realizing the Fig. 2 Price of Dishonesty
  at population scale);
- **spending** — a cap on the cash compensation an agent will commit to
  (budget-constrained buyers veto agreements whose negotiated transfer
  exceeds their remaining budget);
- **pricing** — a per-agent multiplier on the marketplace unit price
  (regional tiers keyed off the synthetic geography's hub regions);
- **learning** — a post-billing update (adaptive agents grow more
  cautious after terms that realized negative utility, and relax
  again after profitable ones).

Behaviors are frozen dataclasses: their constructor parameters *are*
their schema (see :mod:`repro.agents.registry`), and equal parameters
compare equal — which keeps resolved populations hashable and seeded
runs byte-reproducible.  Every behavior owns per-AS mutable state in an
:class:`AgentState`, never on the behavior instance itself, so one
behavior instance can serve thousands of ASes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ClassVar

from repro.errors import ValidationError
from repro.topology.geography import DEFAULT_REGION_HUBS

#: Number of geographic regions agents can belong to — one per synthetic
#: geography hub (see :data:`repro.topology.geography.DEFAULT_REGION_HUBS`).
NUM_REGIONS = len(DEFAULT_REGION_HUBS)

#: Human-readable region names, index-aligned with ``DEFAULT_REGION_HUBS``.
REGION_NAMES: tuple[str, ...] = (
    "new-york",
    "bay-area",
    "frankfurt",
    "london",
    "singapore",
    "tokyo",
    "sao-paulo",
    "delhi",
)

#: Baseline per-region price tiers (transit is priced differently across
#: markets; the spread loosely follows published IP transit price
#: indices: mature markets cheap, under-served regions at a premium).
REGION_PRICE_TIERS: tuple[float, ...] = (
    0.90,  # new-york
    0.95,  # bay-area
    0.90,  # frankfurt
    0.95,  # london
    1.05,  # singapore
    1.00,  # tokyo
    1.20,  # sao-paulo
    1.15,  # delhi
)


@dataclass
class AgentState:
    """Mutable per-AS lifecycle state owned by a behavior.

    Counters feed the per-profile ``profile_metrics`` trace records
    (uptake, realized utility, default rate, misreporting); the scalar
    fields (``caution``, ``budget_remaining``) are the levers adaptive
    and budget-constrained behaviors actually move.
    """

    asn: int
    profile: str
    region: int
    caution: float = 0.0
    budget_remaining: float = math.inf
    negotiations: int = 0
    concluded: int = 0
    vetoed: int = 0
    billed_terms: int = 0
    defaulted_terms: int = 0
    utility_total: float = 0.0
    misreport_total: float = 0.0
    pod_total: float = 0.0
    spend_total: float = 0.0


@dataclass(frozen=True)
class AgentBehavior:
    """The honest baseline profile — and the hook surface of all others.

    Subclasses override individual hooks; everything not overridden
    behaves exactly like the paper's single-profile marketplace, so a
    population of pure :class:`AgentBehavior` agents reproduces the
    homogeneous ``marketplace`` scenario's economics.
    """

    profile: ClassVar[str] = "honest"
    description: ClassVar[str] = (
        "reports its true Eq. 7 utility and accepts any negotiated transfer"
    )

    #: Preferred BOSCO choice-set cardinality ``W`` (0 = the
    #: marketplace default).  A pair negotiates under the smaller of the
    #: two parties' preferences, and each distinct ``W`` gets its own
    #: published mechanism — the sub-batching axis of mixed cohorts.
    num_choices: int = field(
        default=0, metadata={"doc": "preferred choice-set size W (0 = marketplace default)"}
    )

    def __post_init__(self) -> None:
        if self.num_choices < 0:
            raise ValidationError(
                f"num_choices must be non-negative (0 = marketplace default), "
                f"got {self.num_choices}"
            )

    # -- lifecycle hooks ------------------------------------------------
    def new_state(self, asn: int, region: int) -> AgentState:
        """Fresh per-AS state at marketplace start."""
        return AgentState(asn=asn, profile=self.profile, region=region)

    def reported_utility(self, true_utility: float, state: AgentState) -> float:
        """The utility fed into the equilibrium strategy (honest: the truth)."""
        return true_utility

    def max_spend(self, state: AgentState) -> float:
        """Largest cash transfer the agent will commit to right now."""
        return math.inf

    def commit_spend(self, amount: float, state: AgentState) -> None:
        """Book a committed transfer against the agent's budget."""
        state.spend_total += amount

    def price_multiplier(self, state: AgentState) -> float:
        """Multiplier on the marketplace unit price when this agent bills."""
        return 1.0

    def on_billing(self, realized_utility: float, state: AgentState) -> None:
        """Post-billing learning update (default: none)."""


@dataclass(frozen=True)
class DishonestBehavior(AgentBehavior):
    """Strategically understates its utility to claim more of the surplus.

    The population-scale generalization of Fig. 2's dishonest party:
    the agent reports ``u - shade * |u|``, pushing its equilibrium claim
    toward demanding compensation.  The published Price of Dishonesty
    bounds what this is worth (§V-C); the per-profile metrics make the
    realized cost observable in a mixed population.
    """

    profile: ClassVar[str] = "dishonest"
    description: ClassVar[str] = (
        "understates utility by a fixed shade to claim surplus (Fig. 2 at scale)"
    )

    shade: float = field(
        default=0.25, metadata={"doc": "fraction of |utility| shaved off the report"}
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.shade < 1.0:
            raise ValidationError(
                f"shade must be in [0, 1), got {self.shade:g}"
            )

    def reported_utility(self, true_utility: float, state: AgentState) -> float:
        return true_utility - self.shade * abs(true_utility)


@dataclass(frozen=True)
class AdaptiveBehavior(AgentBehavior):
    """Learns a caution level from billing outcomes.

    Starts from ``initial_caution`` and shades reports like the
    dishonest profile, but the shade moves: a billed term that realized
    negative utility raises caution by ``learning_rate`` (the agent
    demands more compensation next time), a profitable term relaxes it
    by half a step.  Caution is clamped to ``[0, max_caution]``.
    """

    profile: ClassVar[str] = "adaptive"
    description: ClassVar[str] = (
        "adjusts its reporting threshold from realized billing outcomes"
    )

    learning_rate: float = field(
        default=0.1, metadata={"doc": "caution step per losing billed term"}
    )
    initial_caution: float = field(
        default=0.0, metadata={"doc": "starting shade on reported utility"}
    )
    max_caution: float = field(
        default=0.9, metadata={"doc": "upper clamp on the learned shade"}
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValidationError(
                f"learning_rate must be in (0, 1], got {self.learning_rate:g}"
            )
        if not 0.0 <= self.initial_caution <= self.max_caution:
            raise ValidationError(
                f"initial_caution must be in [0, max_caution], "
                f"got {self.initial_caution:g}"
            )
        if not 0.0 < self.max_caution < 1.0:
            raise ValidationError(
                f"max_caution must be in (0, 1), got {self.max_caution:g}"
            )

    def new_state(self, asn: int, region: int) -> AgentState:
        return AgentState(
            asn=asn, profile=self.profile, region=region, caution=self.initial_caution
        )

    def reported_utility(self, true_utility: float, state: AgentState) -> float:
        return true_utility - state.caution * abs(true_utility)

    def on_billing(self, realized_utility: float, state: AgentState) -> None:
        if realized_utility < 0.0:
            state.caution = min(self.max_caution, state.caution + self.learning_rate)
        else:
            state.caution = max(0.0, state.caution - 0.5 * self.learning_rate)


@dataclass(frozen=True)
class BudgetBehavior(AgentBehavior):
    """Caps total cash compensation committed across agreement terms.

    Reports honestly, but vetoes any concluded negotiation whose
    transfer would overdraw the remaining budget — the agreement then
    fails exactly as an unconcluded one does (the pair retries later).
    Committed transfers are deducted on activation.
    """

    profile: ClassVar[str] = "budget"
    description: ClassVar[str] = (
        "honest buyer that vetoes transfers exceeding its remaining budget"
    )

    budget: float = field(
        default=50.0, metadata={"doc": "total cash transfer budget across all terms"}
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (math.isfinite(self.budget) and self.budget >= 0.0):
            raise ValidationError(
                f"budget must be a non-negative finite number, got {self.budget!r}"
            )

    def new_state(self, asn: int, region: int) -> AgentState:
        return AgentState(
            asn=asn, profile=self.profile, region=region, budget_remaining=self.budget
        )

    def max_spend(self, state: AgentState) -> float:
        return state.budget_remaining

    def commit_spend(self, amount: float, state: AgentState) -> None:
        state.budget_remaining -= amount
        state.spend_total += amount


@dataclass(frozen=True)
class RegionalBehavior(AgentBehavior):
    """Prices traffic on a regional tier keyed off the topology geography.

    The agent's billing price is the marketplace unit price scaled by
    its region's tier (:data:`REGION_PRICE_TIERS`), with ``intensity``
    interpolating between flat pricing (0) and the full tier spread (1+).
    """

    profile: ClassVar[str] = "regional"
    description: ClassVar[str] = (
        "bills at a regional price tier derived from the geographic embedding"
    )

    intensity: float = field(
        default=1.0, metadata={"doc": "0 = flat pricing, 1 = full regional tier spread"}
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (math.isfinite(self.intensity) and self.intensity >= 0.0):
            raise ValidationError(
                f"intensity must be a non-negative finite number, got {self.intensity!r}"
            )

    def price_multiplier(self, state: AgentState) -> float:
        tier = REGION_PRICE_TIERS[state.region % NUM_REGIONS]
        return 1.0 + self.intensity * (tier - 1.0)
