"""Declarative population specs: mapping behavior profiles onto AS sets.

A population spec is a plain JSON document::

    {
      "name": "mixed-market",
      "seed": 7,
      "default_profile": "honest",
      "groups": [
        {"profile": "dishonest", "params": {"shade": 0.3},
         "match": {"role": "stub", "fraction": 0.25}},
        {"profile": "budget", "params": {"budget": 40},
         "match": {"asns": [7, 9]}},
        {"profile": "regional", "match": {"region": 4}},
        {"profile": "adaptive", "match": {"role": "transit", "min_degree": 3}}
      ]
    }

Groups are applied in order onto a default-profile baseline (later
groups override earlier ones), each selecting ASes by *role*
(``stub`` / ``transit`` / ``tier1`` / ``any``), geographic *region*
(hub index of the synthetic geography), degree bounds, or an explicit
ASN list — optionally thinned by a seeded ``fraction`` sample, so the
same spec resolved against the same topology always yields the same
assignment.  Validation runs through the
:class:`~repro.errors.ValidationError` taxonomy (CLI exit 2, HTTP 400),
with unknown keys, profiles, and parameters all named explicitly.

Region membership is derived per AS from a seeded hash
(:func:`assign_regions`), independent of graph iteration order — the
same idiom the stochastic failure model uses for per-link streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.agents.behaviors import NUM_REGIONS, AgentBehavior, AgentState
from repro.agents.registry import BEHAVIORS, build_behavior
from repro.errors import ValidationError
from repro.topology.graph import ASGraph

__all__ = [
    "ROLES",
    "assign_regions",
    "GroupMatch",
    "PopulationGroup",
    "PopulationSpec",
    "Population",
    "default_population_spec",
]

#: Topology roles a group can match on.
ROLES = ("any", "stub", "transit", "tier1")


def assign_regions(graph: ASGraph, *, seed: int = 0) -> dict[int, int]:
    """Seeded per-AS region assignment (hub index of the geography).

    Each AS draws its region from a generator keyed on ``(seed, asn)``,
    so assignments are independent of graph iteration order and stable
    under topology edits elsewhere.
    """
    return {
        asn: int(np.random.default_rng((seed, asn)).integers(0, NUM_REGIONS))
        for asn in graph
    }


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ValidationError(f"{what} must be a JSON object, got {value!r}")
    return value


def _reject_unknown(data: Mapping[str, Any], allowed: tuple[str, ...], what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValidationError(
            f"{what} has no field(s) {', '.join(sorted(repr(k) for k in unknown))}; "
            f"available: {', '.join(allowed)}"
        )


@dataclass(frozen=True)
class GroupMatch:
    """The AS selector of one population group."""

    role: str = "any"
    region: int | None = None
    min_degree: int | None = None
    max_degree: int | None = None
    asns: tuple[int, ...] = ()
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValidationError(
                f"unknown role {self.role!r}; available: {', '.join(ROLES)}"
            )
        if self.region is not None and not 0 <= self.region < NUM_REGIONS:
            raise ValidationError(
                f"region must be in [0, {NUM_REGIONS}), got {self.region}"
            )
        for name, bound in (("min_degree", self.min_degree), ("max_degree", self.max_degree)):
            if bound is not None and bound < 0:
                raise ValidationError(f"{name} must be non-negative, got {bound}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValidationError(
                f"fraction must be in (0, 1], got {self.fraction:g}"
            )
        object.__setattr__(self, "asns", tuple(sorted(set(self.asns))))

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "GroupMatch":
        data = _require_mapping(data, "population group 'match'")
        _reject_unknown(
            data,
            ("role", "region", "min_degree", "max_degree", "asns", "fraction"),
            "population group 'match'",
        )
        asns = data.get("asns", ())
        if not isinstance(asns, (list, tuple)) or any(
            isinstance(a, bool) or not isinstance(a, int) for a in asns
        ):
            raise ValidationError(f"'asns' must be a list of integers, got {asns!r}")
        return cls(
            role=data.get("role", "any"),
            region=data.get("region"),
            min_degree=data.get("min_degree"),
            max_degree=data.get("max_degree"),
            asns=tuple(asns),
            fraction=float(data.get("fraction", 1.0)),
        )

    def matches(self, graph: ASGraph, regions: Mapping[int, int], asn: int) -> bool:
        """Whether an AS passes every selector of this match."""
        if self.asns and asn not in self.asns:
            return False
        if self.role == "stub" and not graph.is_stub(asn):
            return False
        if self.role == "transit" and (graph.is_stub(asn) or asn in graph.tier1_ases()):
            return False
        if self.role == "tier1" and asn not in graph.tier1_ases():
            return False
        if self.region is not None and regions.get(asn) != self.region:
            return False
        degree = graph.degree(asn)
        if self.min_degree is not None and degree < self.min_degree:
            return False
        if self.max_degree is not None and degree > self.max_degree:
            return False
        return True


@dataclass(frozen=True)
class PopulationGroup:
    """One profile→AS-set mapping of a population spec."""

    profile: str
    params: tuple[tuple[str, Any], ...] = ()
    match: GroupMatch = field(default_factory=GroupMatch)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(sorted(self.params)))
        # Construction is validation: an invalid profile or parameter
        # set fails here, not at resolve time.
        self.behavior()

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "PopulationGroup":
        data = _require_mapping(data, "population group")
        _reject_unknown(data, ("profile", "params", "match"), "population group")
        if "profile" not in data:
            raise ValidationError(
                f"population group needs a 'profile'; "
                f"available: {', '.join(sorted(BEHAVIORS))}"
            )
        params = _require_mapping(data.get("params", {}), "population group 'params'")
        return cls(
            profile=data["profile"],
            params=tuple(params.items()),
            match=GroupMatch.from_mapping(data.get("match", {})),
        )

    def behavior(self) -> AgentBehavior:
        """The validated behavior instance this group assigns."""
        return build_behavior(self.profile, dict(self.params))

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "params": dict(self.params),
            "match": {
                "role": self.match.role,
                "region": self.match.region,
                "min_degree": self.match.min_degree,
                "max_degree": self.match.max_degree,
                "asns": list(self.match.asns),
                "fraction": self.match.fraction,
            },
        }


@dataclass(frozen=True)
class PopulationSpec:
    """A validated population document (construction is validation)."""

    name: str = "population"
    seed: int = 0
    default_profile: str = "honest"
    default_params: tuple[tuple[str, Any], ...] = ()
    groups: tuple[PopulationGroup, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("population spec needs a non-empty 'name'")
        if self.seed < 0:
            raise ValidationError(f"population seed must be non-negative, got {self.seed}")
        object.__setattr__(self, "default_params", tuple(sorted(self.default_params)))
        object.__setattr__(self, "groups", tuple(self.groups))
        build_behavior(self.default_profile, dict(self.default_params))

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "PopulationSpec":
        data = _require_mapping(data, "population spec")
        _reject_unknown(
            data,
            ("name", "seed", "default_profile", "default_params", "groups"),
            "population spec",
        )
        groups = data.get("groups", [])
        if not isinstance(groups, (list, tuple)):
            raise ValidationError(f"'groups' must be a list, got {groups!r}")
        default_params = _require_mapping(
            data.get("default_params", {}), "population 'default_params'"
        )
        return cls(
            name=data.get("name", "population"),
            seed=int(data.get("seed", 0)),
            default_profile=data.get("default_profile", "honest"),
            default_params=tuple(default_params.items()),
            groups=tuple(PopulationGroup.from_mapping(entry) for entry in groups),
        )

    @classmethod
    def load(cls, path: str | Path) -> "PopulationSpec":
        """Read and validate a population spec JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ValidationError(f"cannot read population spec {path}: {error}") from error
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"population spec {path} is not valid JSON: {error}"
            ) from error
        return cls.from_mapping(data)

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe form."""
        return {
            "name": self.name,
            "seed": self.seed,
            "default_profile": self.default_profile,
            "default_params": dict(self.default_params),
            "groups": [group.as_dict() for group in self.groups],
        }

    def resolve(
        self, graph: ASGraph, regions: Mapping[int, int] | None = None
    ) -> "Population":
        """Assign a behavior to every AS of ``graph`` (deterministic).

        Later groups override earlier ones; fractional matches are
        seeded per ``(spec seed, group index)``, so resolution is a
        pure function of (spec, topology).
        """
        if regions is None:
            regions = assign_regions(graph, seed=self.seed)
        default = build_behavior(self.default_profile, dict(self.default_params))
        behaviors: dict[int, AgentBehavior] = {asn: default for asn in sorted(graph)}
        for index, group in enumerate(self.groups):
            candidates = [
                asn for asn in sorted(graph) if group.match.matches(graph, regions, asn)
            ]
            if group.match.fraction < 1.0 and candidates:
                count = max(1, round(group.match.fraction * len(candidates)))
                rng = np.random.default_rng((self.seed, index))
                chosen = rng.choice(len(candidates), size=count, replace=False)
                candidates = [candidates[i] for i in sorted(int(c) for c in chosen)]
            behavior = group.behavior()
            for asn in candidates:
                behaviors[asn] = behavior
        return Population(
            name=self.name, behaviors=behaviors, regions=dict(regions), spec=self
        )


@dataclass(frozen=True)
class Population:
    """A spec resolved against a topology: per-AS behaviors and regions."""

    name: str
    behaviors: dict[int, AgentBehavior]
    regions: dict[int, int]
    spec: PopulationSpec | None = None

    def behavior_for(self, asn: int) -> AgentBehavior:
        """The behavior of an AS (honest baseline for unknown ASes)."""
        behavior = self.behaviors.get(asn)
        return behavior if behavior is not None else AgentBehavior()

    def region_of(self, asn: int) -> int:
        """The region (geography hub index) of an AS."""
        return self.regions.get(asn, 0)

    def new_state(self, asn: int) -> AgentState:
        """Fresh lifecycle state for an AS under its assigned behavior."""
        return self.behavior_for(asn).new_state(asn, self.region_of(asn))

    def choice_widths(self, default: int) -> tuple[int, ...]:
        """Distinct BOSCO cardinalities the population negotiates under."""
        widths = {
            behavior.num_choices or default for behavior in self.behaviors.values()
        }
        widths.add(default)
        return tuple(sorted(widths))

    def census(self) -> dict[str, int]:
        """Number of ASes per profile (sorted by profile name)."""
        counts: dict[str, int] = {}
        for asn in sorted(self.behaviors):
            profile = self.behaviors[asn].profile
            counts[profile] = counts.get(profile, 0) + 1
        return dict(sorted(counts.items()))


def default_population_spec(seed: int = 0) -> PopulationSpec:
    """The built-in mixed population of ``marketplace-heterogeneous``.

    Five profiles over the whole topology: an honest baseline, a
    dishonest cohort shading reports, budget-capped buyers, adaptive
    learners on transit ASes (negotiating under a smaller choice set,
    which exercises mixed-``W`` sub-batching), and regional pricers.
    """
    return PopulationSpec(
        name="builtin-mixed",
        seed=seed,
        default_profile="honest",
        groups=(
            PopulationGroup(
                profile="dishonest",
                params=(("shade", 0.25),),
                match=GroupMatch(fraction=0.3),
            ),
            PopulationGroup(
                profile="adaptive",
                params=(("learning_rate", 0.15), ("num_choices", 8)),
                match=GroupMatch(role="transit", fraction=0.5),
            ),
            PopulationGroup(
                profile="regional",
                params=(("intensity", 1.0),),
                match=GroupMatch(fraction=0.2),
            ),
            PopulationGroup(
                profile="budget",
                params=(("budget", 2.0),),
                match=GroupMatch(fraction=0.2),
            ),
        ),
    )
