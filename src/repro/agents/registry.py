"""The behavior registry: named profiles with introspectable schemas.

Behavior variants stay *data, not code*: a population spec names a
profile (``"dishonest"``) and passes parameters (``{"shade": 0.3}``),
and the registry builds the frozen behavior instance — validating the
profile name, the parameter names, and the parameter types with the
same :class:`~repro.errors.ValidationError` taxonomy (exit 2 / HTTP
400) the typed API requests use.

Because behaviors are dataclasses, their constructor signature *is*
their schema: :func:`behavior_catalog` derives the parameter listing
(name, type, default, doc) straight from the dataclass fields, which is
what ``repro agents list`` prints — populations are discoverable
without reading source.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.agents.behaviors import (
    AdaptiveBehavior,
    AgentBehavior,
    BudgetBehavior,
    DishonestBehavior,
    RegionalBehavior,
)
from repro.errors import ValidationError

__all__ = [
    "BEHAVIORS",
    "register_behavior",
    "build_behavior",
    "behavior_parameters",
    "behavior_catalog",
]

#: Registered behavior profiles, keyed by profile name.
BEHAVIORS: dict[str, type[AgentBehavior]] = {}


def register_behavior(behavior_cls: type[AgentBehavior]) -> type[AgentBehavior]:
    """Register a behavior class under its ``profile`` name."""
    name = behavior_cls.profile
    existing = BEHAVIORS.get(name)
    if existing is not None and existing is not behavior_cls:
        raise ValidationError(
            f"behavior profile {name!r} is already registered to "
            f"{existing.__name__}"
        )
    BEHAVIORS[name] = behavior_cls
    return behavior_cls


for _cls in (
    AgentBehavior,
    DishonestBehavior,
    AdaptiveBehavior,
    BudgetBehavior,
    RegionalBehavior,
):
    register_behavior(_cls)


def _behavior_class(profile: str) -> type[AgentBehavior]:
    try:
        return BEHAVIORS[profile]
    except KeyError:
        raise ValidationError(
            f"unknown behavior profile {profile!r}; "
            f"available: {', '.join(sorted(BEHAVIORS))}"
        ) from None


def behavior_parameters(profile: str) -> tuple[dict[str, Any], ...]:
    """The parameter schema of a profile: (name, type, default, doc) rows."""
    behavior_cls = _behavior_class(profile)
    rows = []
    for field in dataclasses.fields(behavior_cls):
        if not field.init:
            continue
        rows.append(
            {
                "name": field.name,
                "type": field.type if isinstance(field.type, str) else field.type.__name__,
                "default": field.default,
                "doc": field.metadata.get("doc", ""),
            }
        )
    return tuple(rows)


def build_behavior(profile: str, params: Mapping[str, Any] | None = None) -> AgentBehavior:
    """Build (and validate) a behavior instance from a profile + params.

    Unknown profiles and unknown parameter names raise
    :class:`ValidationError` naming the valid alternatives; value
    checks are the behavior constructor's own (also ValidationError).
    """
    behavior_cls = _behavior_class(profile)
    params = dict(params or {})
    allowed = {field.name for field in dataclasses.fields(behavior_cls) if field.init}
    unknown = set(params) - allowed
    if unknown:
        raise ValidationError(
            f"behavior profile {profile!r} has no parameter(s) "
            f"{', '.join(sorted(repr(key) for key in unknown))}; "
            f"available: {', '.join(sorted(allowed))}"
        )
    for field in dataclasses.fields(behavior_cls):
        if field.name not in params:
            continue
        value = params[field.name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(
                f"behavior parameter {field.name!r} of profile {profile!r} "
                f"must be a number, got {value!r}"
            )
        if field.type in ("int", int) and not isinstance(value, int):
            if float(value).is_integer():
                params[field.name] = int(value)
            else:
                raise ValidationError(
                    f"behavior parameter {field.name!r} of profile {profile!r} "
                    f"must be an integer, got {value!r}"
                )
    return behavior_cls(**params)


def behavior_catalog() -> tuple[dict[str, Any], ...]:
    """JSON-safe listing of every registered profile and its schema."""
    catalog = []
    for name in sorted(BEHAVIORS):
        behavior_cls = BEHAVIORS[name]
        catalog.append(
            {
                "profile": name,
                "description": behavior_cls.description,
                "parameters": [dict(row) for row in behavior_parameters(name)],
            }
        )
    return tuple(catalog)
