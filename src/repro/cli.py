"""Command-line interface of the reproduction — a thin API adapter.

These subcommands cover the workflows a downstream user needs:

``repro topology``
    Generate a synthetic Internet-like AS topology and write it in the
    CAIDA ``as-rel`` format (so it can be inspected, edited, or replaced
    by a real CAIDA snapshot).

``repro diversity``
    Run the §VI path-diversity analysis on a topology file (or on a
    freshly generated one) and print the Fig. 3/4-style summary.

``repro experiments``
    Run the full experiment harness (every figure) and print the
    paper-vs-measured report — the same output as
    ``python -m repro.experiments.runner``.

``repro simulate``
    Run a canned discrete-event simulation scenario (failure churn,
    agreement marketplace, flash crowd, heterogeneous marketplace) and
    print its metrics summary; optionally write the full JSONL metrics
    trace to a file.  ``--population pop.json`` maps behavior profiles
    onto the AS population; ``--list-scenarios`` prints the scenario
    catalog with parameter schemas.

``repro agents``
    Inspect the heterogeneous-agent behavior registry: ``repro agents
    list`` prints every profile (honest, dishonest, adaptive, budget,
    regional) with its parameter schema.

``repro sweep``
    Expand a declarative sweep spec (scales × seeds × figures ×
    scenario knobs) into shards, run them process-parallel with a
    resumable on-disk cache, and write the byte-reproducible
    ``sweep_summary.json`` + per-metric CSV tables.

Every subcommand accepts ``--format text|json``: the classic text
report, or the schema-versioned JSON envelope of the structured result
(validated in CI by ``python -m repro.api.validate``).

All argument parsing, validation, execution, and rendering live in
:mod:`repro.api` — this module only re-exports the adapter's entry
points so ``python -m repro.cli`` and the ``repro`` console script keep
working.  Programmatic consumers should use :class:`repro.api.Session`
directly.
"""

from __future__ import annotations

import sys

from repro.api.adapter import build_parser, dispatch, main

__all__ = ["build_parser", "dispatch", "main"]


if __name__ == "__main__":
    sys.exit(main())
