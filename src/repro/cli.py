"""Command-line interface of the reproduction.

Three subcommands cover the workflows a downstream user needs:

``repro topology``
    Generate a synthetic Internet-like AS topology and write it in the
    CAIDA ``as-rel`` format (so it can be inspected, edited, or replaced
    by a real CAIDA snapshot).

``repro diversity``
    Run the §VI path-diversity analysis on a topology file (or on a
    freshly generated one) and print the Fig. 3/4-style summary.

``repro experiments``
    Run the full experiment harness (every figure) and print the
    paper-vs-measured report — the same output as
    ``python -m repro.experiments.runner``.

``repro simulate``
    Run a canned discrete-event simulation scenario (failure churn,
    agreement marketplace, flash crowd) and print its metrics summary;
    optionally write the full JSONL metrics trace to a file.

``repro sweep``
    Expand a declarative sweep spec (scales × seeds × figures ×
    scenario knobs) into shards, run them process-parallel with a
    resumable on-disk cache, and write the byte-reproducible
    ``sweep_summary.json`` + per-metric CSV tables.

Invoke as ``python -m repro.cli <subcommand> …``.
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence

from repro.agreements import enumerate_mutuality_agreements
from repro.experiments.runner import RunnerConfig, run_all
from repro.paths import analyze_path_diversity
from repro.simulation import SCENARIOS, run_scenario
from repro.sweep import (
    DEFAULT_CACHE_DIR,
    DEFAULT_OUT_DIR,
    SweepSpec,
    SweepSpecError,
    run_sweep,
    smoke_spec,
)
from repro.topology import generate_topology, load_as_rel, save_as_rel


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Enabling Novel Interconnection Agreements "
        "with Path-Aware Networking Architectures' (DSN 2021)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topology = subparsers.add_parser(
        "topology", help="generate a synthetic AS topology in CAIDA as-rel format"
    )
    topology.add_argument("output", help="path of the as-rel file to write")
    topology.add_argument("--tier1", type=int, default=8, help="number of tier-1 ASes")
    topology.add_argument("--tier2", type=int, default=60, help="number of tier-2 ASes")
    topology.add_argument("--tier3", type=int, default=200, help="number of tier-3 ASes")
    topology.add_argument("--stubs", type=int, default=800, help="number of stub ASes")
    topology.add_argument("--seed", type=int, default=2021, help="generator seed")

    diversity = subparsers.add_parser(
        "diversity", help="run the §VI path-diversity analysis"
    )
    diversity.add_argument(
        "--topology",
        help="CAIDA as-rel file to analyze (a synthetic topology is generated "
        "when omitted)",
    )
    diversity.add_argument(
        "--sample-size", type=int, default=200, help="number of ASes to sample"
    )
    diversity.add_argument("--seed", type=int, default=2021, help="sampling seed")

    experiments = subparsers.add_parser(
        "experiments", help="run the full experiment harness (every figure)"
    )
    experiments.add_argument(
        "--full",
        action="store_true",
        help="use the paper's trial counts and sample sizes (slower)",
    )
    experiments.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed every experiment for an end-to-end reproducible run "
        "(defaults to each experiment's own seed)",
    )
    experiments.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Fig. 2 trials per choice-set cardinality (200 = paper scale; "
        "defaults to the run scale's own trial count)",
    )
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the figure sections in N worker processes; the report is "
        "merged in a fixed order, so seeded output is byte-identical to a "
        "sequential run (default: 1)",
    )

    simulate = subparsers.add_parser(
        "simulate", help="run a discrete-event simulation scenario"
    )
    simulate.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="failure-churn",
        help="canned scenario to run (default: failure-churn)",
    )
    simulate.add_argument(
        "--seed", type=int, default=None, help="simulation seed (default: scenario's)"
    )
    simulate.add_argument(
        "--duration",
        type=float,
        default=None,
        help="virtual-time horizon in hours (default: scenario's)",
    )
    simulate.add_argument(
        "--trace-out",
        help="write the full JSONL metrics trace to this file",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a sharded, resumable parameter sweep"
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec",
        help="JSON sweep spec file (see README 'Sweeps & CI' for the format)",
    )
    source.add_argument(
        "--smoke",
        action="store_true",
        help="run the built-in tiny CI smoke grid instead of a spec file",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run shards in N worker processes (results merge in a fixed "
        "order, so the summary is byte-identical to a sequential run)",
    )
    sweep.add_argument(
        "--out",
        default=DEFAULT_OUT_DIR,
        help=f"directory for sweep_summary.json and the per-metric CSV "
        f"tables (default: {DEFAULT_OUT_DIR})",
    )
    sweep.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shard result cache directory; re-runs and interrupted sweeps "
        f"resume from it (default: {DEFAULT_CACHE_DIR})",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="recompute every shard even when a cached result exists",
    )
    sweep.add_argument(
        "--list",
        action="store_true",
        dest="list_shards",
        help="print the expanded shard list without running anything",
    )

    return parser


def _run_topology(args: argparse.Namespace) -> int:
    topology = generate_topology(
        num_tier1=args.tier1,
        num_tier2=args.tier2,
        num_tier3=args.tier3,
        num_stubs=args.stubs,
        seed=args.seed,
    )
    save_as_rel(topology.graph, args.output)
    print(
        f"wrote {topology.graph} to {args.output} "
        f"({topology.graph.num_transit_links()} transit links, "
        f"{topology.graph.num_peering_links()} peering links)"
    )
    return 0


def _run_diversity(args: argparse.Namespace) -> int:
    if args.topology:
        graph = load_as_rel(args.topology)
        print(f"loaded {graph} from {args.topology}")
    else:
        graph = generate_topology(seed=args.seed).graph
        print(f"generated synthetic topology: {graph}")
    agreements = list(enumerate_mutuality_agreements(graph))
    print(f"mutuality-based agreements: {len(agreements)}")
    result = analyze_path_diversity(
        graph, agreements=agreements, sample_size=args.sample_size, seed=args.seed
    )
    for scenario in ("GRC", "MA* (Top 1)", "MA* (Top 5)", "MA*", "MA"):
        paths = result.path_cdf(scenario)
        destinations = result.destination_cdf(scenario)
        print(
            f"{scenario:<12} mean length-3 paths = {paths.mean:9.0f}   "
            f"mean destinations = {destinations.mean:7.0f}"
        )
    extra = result.additional_path_summary()
    print(f"additional paths per AS: mean {extra['mean']:.0f}, max {extra['max']:.0f}")
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    if not _check_seed(args, "experiments"):
        return 2
    if args.jobs < 1:
        print(
            f"repro experiments: error: --jobs must be a positive integer, "
            f"got {args.jobs}",
            file=sys.stderr,
        )
        return 2
    if args.trials is not None and args.trials < 1:
        print(
            f"repro experiments: error: --trials must be a positive integer, "
            f"got {args.trials}",
            file=sys.stderr,
        )
        return 2
    print(
        run_all(
            RunnerConfig(full=args.full, seed=args.seed, trials=args.trials),
            jobs=args.jobs,
        )
    )
    return 0


def _check_seed(args: argparse.Namespace, command: str) -> bool:
    """Seeds feed ``np.random.default_rng``, which rejects negatives."""
    if args.seed is not None and args.seed < 0:
        print(
            f"repro {command}: error: --seed must be non-negative, got {args.seed}",
            file=sys.stderr,
        )
        return False
    return True


def _run_simulate(args: argparse.Namespace) -> int:
    if args.duration is not None and not (
        math.isfinite(args.duration) and args.duration >= 0.0
    ):
        print(
            f"repro simulate: error: --duration must be a non-negative finite "
            f"number of hours, got {args.duration:g}",
            file=sys.stderr,
        )
        return 2
    if not _check_seed(args, "simulate"):
        return 2
    result = run_scenario(args.scenario, seed=args.seed, duration=args.duration)
    print(result.summary())
    if args.trace_out:
        try:
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(result.trace_text())
        except OSError as error:
            print(
                f"repro simulate: error: cannot write trace to "
                f"{args.trace_out}: {error.strerror}",
                file=sys.stderr,
            )
            return 1
        print(f"trace written to {args.trace_out} ({len(result.trace)} records)")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(
            f"repro sweep: error: --jobs must be a positive integer, "
            f"got {args.jobs}",
            file=sys.stderr,
        )
        return 2
    try:
        spec = smoke_spec() if args.smoke else SweepSpec.from_json_file(args.spec)
    except SweepSpecError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2
    if args.list_shards:
        shards = spec.expand()
        for shard in shards:
            print(shard.shard_id)
        print(f"{len(shards)} shards")
        return 0
    result = run_sweep(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        out_dir=args.out,
        force=args.force,
        progress=lambda message: print(f"sweep: {message}", file=sys.stderr),
    )
    print(result.report())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "topology":
        return _run_topology(args)
    if args.command == "diversity":
        return _run_diversity(args)
    if args.command == "experiments":
        return _run_experiments(args)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "sweep":
        return _run_sweep(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
