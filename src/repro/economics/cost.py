"""Internal-cost functions of ASes (§III-A).

An AS ``X`` incurs an internal cost ``i_X(f_X)`` for carrying traffic
through its network.  The paper only requires the internal-cost function
to be non-negative and monotonically increasing in the total flow
``f_X``; this module provides the common concrete shapes (linear,
affine, piecewise-linear with capacity steps, and power-law).
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass


class InternalCostFunction(abc.ABC):
    """Maps the total flow through an AS to the internal forwarding cost."""

    @abc.abstractmethod
    def __call__(self, total_flow: float) -> float:
        """Internal cost of carrying ``total_flow`` units of traffic."""

    def _check(self, total_flow: float) -> None:
        if total_flow < 0.0:
            raise ValueError(f"flow must be non-negative, got {total_flow}")


@dataclass(frozen=True)
class ZeroCost(InternalCostFunction):
    """No internal cost — useful for isolating pricing effects in tests."""

    def __call__(self, total_flow: float) -> float:
        self._check(total_flow)
        return 0.0


@dataclass(frozen=True)
class LinearCost(InternalCostFunction):
    """Cost proportional to carried traffic."""

    unit_cost: float

    def __post_init__(self) -> None:
        if self.unit_cost < 0.0:
            raise ValueError(f"unit cost must be non-negative, got {self.unit_cost}")

    def __call__(self, total_flow: float) -> float:
        self._check(total_flow)
        return self.unit_cost * total_flow


@dataclass(frozen=True)
class AffineCost(InternalCostFunction):
    """Fixed operating cost plus a per-unit forwarding cost."""

    fixed_cost: float
    unit_cost: float

    def __post_init__(self) -> None:
        if self.fixed_cost < 0.0:
            raise ValueError(f"fixed cost must be non-negative, got {self.fixed_cost}")
        if self.unit_cost < 0.0:
            raise ValueError(f"unit cost must be non-negative, got {self.unit_cost}")

    def __call__(self, total_flow: float) -> float:
        self._check(total_flow)
        return self.fixed_cost + self.unit_cost * total_flow


@dataclass(frozen=True)
class PowerLawCost(InternalCostFunction):
    """Cost ``a · f^b`` with ``a ≥ 0`` and ``b ≥ 1`` (convex congestion cost)."""

    scale: float
    exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.scale < 0.0:
            raise ValueError(f"scale must be non-negative, got {self.scale}")
        if self.exponent < 1.0:
            raise ValueError(
                f"exponent must be at least 1 for a convex cost, got {self.exponent}"
            )

    def __call__(self, total_flow: float) -> float:
        self._check(total_flow)
        return self.scale * total_flow**self.exponent


@dataclass(frozen=True)
class SteppedCapacityCost(InternalCostFunction):
    """Piecewise-linear cost with capacity upgrade steps.

    Network operators provision capacity in discrete steps (line cards,
    transit port upgrades).  The cost is linear within a step and jumps
    by ``step_cost`` every ``step_capacity`` units of traffic, which
    makes the marginal cost of agreement-induced traffic lumpy — a
    realistic stress case for the agreement-optimization code.
    """

    unit_cost: float
    step_capacity: float
    step_cost: float

    def __post_init__(self) -> None:
        if self.unit_cost < 0.0:
            raise ValueError(f"unit cost must be non-negative, got {self.unit_cost}")
        if self.step_capacity <= 0.0:
            raise ValueError(f"step capacity must be positive, got {self.step_capacity}")
        if self.step_cost < 0.0:
            raise ValueError(f"step cost must be non-negative, got {self.step_cost}")

    def __call__(self, total_flow: float) -> float:
        self._check(total_flow)
        steps = int(total_flow // self.step_capacity)
        return self.unit_cost * total_flow + self.step_cost * steps


@dataclass(frozen=True)
class PiecewiseLinearCost(InternalCostFunction):
    """General monotone piecewise-linear cost given as breakpoints.

    ``breakpoints`` is a sorted tuple of (flow, cost) pairs; the cost is
    linearly interpolated between breakpoints and extrapolated with the
    last segment's slope beyond the final breakpoint.
    """

    breakpoints: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.breakpoints) < 2:
            raise ValueError("at least two breakpoints are required")
        flows = [flow for flow, _ in self.breakpoints]
        costs = [cost for _, cost in self.breakpoints]
        if flows != sorted(flows) or len(set(flows)) != len(flows):
            raise ValueError("breakpoint flows must be strictly increasing")
        if costs != sorted(costs):
            raise ValueError("breakpoint costs must be non-decreasing (monotone cost)")
        if flows[0] != 0.0:
            raise ValueError("the first breakpoint must be at flow 0")
        if any(cost < 0.0 for cost in costs):
            raise ValueError("costs must be non-negative")

    def __call__(self, total_flow: float) -> float:
        self._check(total_flow)
        flows = [flow for flow, _ in self.breakpoints]
        costs = [cost for _, cost in self.breakpoints]
        if total_flow >= flows[-1]:
            if len(flows) >= 2:
                slope = (costs[-1] - costs[-2]) / (flows[-1] - flows[-2])
            else:
                slope = 0.0
            return costs[-1] + slope * (total_flow - flows[-1])
        index = bisect.bisect_right(flows, total_flow) - 1
        index = max(0, index)
        span = flows[index + 1] - flows[index]
        fraction = (total_flow - flows[index]) / span
        return costs[index] + fraction * (costs[index + 1] - costs[index])
