"""Pricing functions for provider–customer links (§III-A).

Every provider–customer link ``l = (X, Y)`` has a pricing function
``p_l(f_l) = α_l · f_l^β_l`` that maps the billed flow volume on the link
to the amount of money the provider receives from the customer:

- ``β = 0`` is flat-rate pricing with flow-independent fee ``α``,
- ``β = 1`` is pay-per-usage pricing with per-traffic-unit cost ``α``,
- ``β > 1`` is superlinear (congestion) pricing.

Peering links are settlement-free, which is represented by the
:class:`SettlementFree` pricing function (always zero).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class PricingFunction(abc.ABC):
    """Maps a billed flow volume to a monetary charge."""

    @abc.abstractmethod
    def __call__(self, volume: float) -> float:
        """Charge for a given flow volume (volume must be non-negative)."""

    def marginal(self, volume: float, epsilon: float = 1e-6) -> float:
        """Numerical marginal price at a given volume."""
        if volume < 0.0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        return (self(volume + epsilon) - self(max(0.0, volume - epsilon))) / (
            2.0 * epsilon if volume >= epsilon else epsilon
        )


@dataclass(frozen=True)
class PowerLawPricing(PricingFunction):
    """The paper's pricing form ``p(f) = α · f^β`` with ``α, β ≥ 0``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0.0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.beta < 0.0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")

    def __call__(self, volume: float) -> float:
        if volume < 0.0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        if self.beta == 0.0:
            # Flat rate applies even at zero volume: the fee is flow-independent.
            return self.alpha
        return self.alpha * volume**self.beta


@dataclass(frozen=True)
class FlatRatePricing(PricingFunction):
    """Flat-rate pricing: a fixed fee regardless of volume (``β = 0``)."""

    fee: float

    def __post_init__(self) -> None:
        if self.fee < 0.0:
            raise ValueError(f"fee must be non-negative, got {self.fee}")

    def __call__(self, volume: float) -> float:
        if volume < 0.0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        return self.fee


@dataclass(frozen=True)
class PerUsagePricing(PricingFunction):
    """Pay-per-usage pricing: linear in volume (``β = 1``)."""

    unit_price: float

    def __post_init__(self) -> None:
        if self.unit_price < 0.0:
            raise ValueError(f"unit price must be non-negative, got {self.unit_price}")

    def __call__(self, volume: float) -> float:
        if volume < 0.0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        return self.unit_price * volume


@dataclass(frozen=True)
class CongestionPricing(PricingFunction):
    """Superlinear pricing (``β > 1``), e.g. congestion-based billing."""

    alpha: float
    beta: float = 2.0

    def __post_init__(self) -> None:
        if self.alpha < 0.0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.beta <= 1.0:
            raise ValueError(f"congestion pricing requires beta > 1, got {self.beta}")

    def __call__(self, volume: float) -> float:
        if volume < 0.0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        return self.alpha * volume**self.beta


@dataclass(frozen=True)
class SettlementFree(PricingFunction):
    """Settlement-free (peering) pricing: always zero."""

    def __call__(self, volume: float) -> float:
        if volume < 0.0:
            raise ValueError(f"volume must be non-negative, got {volume}")
        return 0.0


@dataclass(frozen=True)
class NinetyFifthPercentileBilling:
    """95th-percentile billing wrapper.

    The paper notes that the billed volume ``f_l`` can be interpreted as
    the median, average, or 95th percentile of traffic over a billing
    period.  This helper reduces a traffic time series to a billable
    volume which can then be fed to any :class:`PricingFunction`.
    """

    percentile: float = 95.0

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")

    def billable_volume(self, samples: list[float]) -> float:
        """Billable volume of a traffic time series."""
        if not samples:
            return 0.0
        if any(sample < 0.0 for sample in samples):
            raise ValueError("traffic samples must be non-negative")
        ordered = sorted(samples)
        rank = max(0, int(round(self.percentile / 100.0 * len(ordered))) - 1)
        return ordered[rank]
