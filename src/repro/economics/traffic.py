"""Traffic distributions: flows through ASes and along path segments.

The business model of §III-A reasons about three kinds of quantities:

- ``f_X`` — the total flow through an AS ``X``,
- ``f_XY`` — the share of ``f_X`` exchanged directly with neighbor ``Y``
  (collected in the flow vector ``f_X`` of the paper),
- ``f_XYZ`` — the flow on the path segment ``X–Y–Z``, independent of
  direction.

Customer end-hosts of ``X`` are modelled as a virtual stub ``Γ_X``
connected over a virtual provider–customer link; the sentinel
:data:`ENDHOSTS` plays that role here.

The module also contains a small demand/assignment layer
(:class:`TrafficMatrix`, :func:`assign_demands`) that turns end-to-end
demands routed over AS-level paths into per-AS flow vectors and
segment flows — the inputs agreement-utility computations need.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

#: Sentinel neighbor representing the customer end-hosts of an AS (the
#: virtual stub ``Γ_X`` of the paper).
ENDHOSTS: str = "__endhosts__"


class FlowVector:
    """Per-neighbor flow volumes of a single AS (the paper's ``f_X``).

    Keys are neighbor AS numbers or :data:`ENDHOSTS`; values are
    non-negative volumes.  Because every unit of traffic through an AS
    enters via one neighbor and leaves via another (possibly the
    end-host stub), the total flow through the AS is half the sum of the
    per-neighbor volumes.
    """

    def __init__(self, flows: Mapping[Hashable, float] | None = None) -> None:
        self._flows: dict[Hashable, float] = {}
        if flows:
            for neighbor, volume in flows.items():
                self.set(neighbor, volume)

    def set(self, neighbor: Hashable, volume: float) -> None:
        """Set the flow exchanged with a neighbor."""
        if volume < 0.0:
            raise ValueError(f"flow volume must be non-negative, got {volume}")
        if volume == 0.0:
            self._flows.pop(neighbor, None)
        else:
            self._flows[neighbor] = float(volume)

    def add(self, neighbor: Hashable, volume: float) -> None:
        """Add volume to the flow exchanged with a neighbor."""
        updated = self.get(neighbor) + volume
        if updated < -1e-9:
            raise ValueError(
                f"flow with neighbor {neighbor} would become negative ({updated})"
            )
        self.set(neighbor, max(0.0, updated))

    def get(self, neighbor: Hashable) -> float:
        """Flow exchanged with a neighbor (zero if unknown)."""
        return self._flows.get(neighbor, 0.0)

    def neighbors(self) -> frozenset[Hashable]:
        """Neighbors with non-zero flow."""
        return frozenset(self._flows)

    def total_flow(self) -> float:
        """Total flow ``f_X`` through the AS."""
        return sum(self._flows.values()) / 2.0

    def copy(self) -> "FlowVector":
        """Deep copy of the flow vector."""
        return FlowVector(dict(self._flows))

    def as_dict(self) -> dict[Hashable, float]:
        """Plain-dict view of the per-neighbor flows."""
        return dict(self._flows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowVector):
            return NotImplemented
        return self._flows == other._flows

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v:.3g}" for k, v in sorted(self._flows.items(), key=str))
        return f"FlowVector({{{inner}}})"


@dataclass
class SegmentFlows:
    """Flow volumes on three-AS path segments (the paper's ``f_XYZ``).

    A segment is stored direction-independently: ``(X, Y, Z)`` and
    ``(Z, Y, X)`` refer to the same volume.
    """

    _volumes: dict[tuple[int, int, int], float] = field(default_factory=dict)

    @staticmethod
    def _key(segment: tuple[int, int, int]) -> tuple[int, int, int]:
        first, middle, last = segment
        if last < first:
            return (last, middle, first)
        return (first, middle, last)

    def set(self, segment: tuple[int, int, int], volume: float) -> None:
        """Set the flow volume on a segment."""
        if volume < 0.0:
            raise ValueError(f"flow volume must be non-negative, got {volume}")
        key = self._key(segment)
        if volume == 0.0:
            self._volumes.pop(key, None)
        else:
            self._volumes[key] = float(volume)

    def add(self, segment: tuple[int, int, int], volume: float) -> None:
        """Add flow volume to a segment."""
        self.set(segment, self.get(segment) + volume)

    def get(self, segment: tuple[int, int, int]) -> float:
        """Flow volume on a segment (zero if unknown)."""
        return self._volumes.get(self._key(segment), 0.0)

    def segments(self) -> frozenset[tuple[int, int, int]]:
        """All segments with non-zero flow (in normalized orientation)."""
        return frozenset(self._volumes)

    def through(self, middle: int) -> float:
        """Total transit flow passing *through* an AS over all segments."""
        return sum(v for (_, m, _), v in self._volumes.items() if m == middle)

    def copy(self) -> "SegmentFlows":
        """Deep copy of the segment flows."""
        clone = SegmentFlows()
        clone._volumes = dict(self._volumes)
        return clone


@dataclass
class TrafficMatrix:
    """End-to-end traffic demands between AS pairs."""

    demands: dict[tuple[int, int], float] = field(default_factory=dict)

    def set_demand(self, source: int, destination: int, volume: float) -> None:
        """Set the demand from a source AS to a destination AS."""
        if volume < 0.0:
            raise ValueError(f"demand must be non-negative, got {volume}")
        if source == destination:
            raise ValueError("demand source and destination must differ")
        if volume == 0.0:
            self.demands.pop((source, destination), None)
        else:
            self.demands[(source, destination)] = float(volume)

    def demand(self, source: int, destination: int) -> float:
        """Demand from a source AS to a destination AS (zero if unknown)."""
        return self.demands.get((source, destination), 0.0)

    def total_demand(self) -> float:
        """Total demanded volume."""
        return sum(self.demands.values())

    def pairs(self) -> tuple[tuple[int, int], ...]:
        """All (source, destination) pairs with non-zero demand."""
        return tuple(sorted(self.demands))


@dataclass
class NetworkFlows:
    """Per-AS flow vectors and segment flows for an entire network."""

    vectors: dict[int, FlowVector] = field(default_factory=dict)
    segments: SegmentFlows = field(default_factory=SegmentFlows)

    def vector(self, asn: int) -> FlowVector:
        """Flow vector of an AS, created lazily."""
        if asn not in self.vectors:
            self.vectors[asn] = FlowVector()
        return self.vectors[asn]

    def total_flow(self, asn: int) -> float:
        """Total flow through an AS."""
        if asn not in self.vectors:
            return 0.0
        return self.vectors[asn].total_flow()


def assign_demands(
    routes: Mapping[tuple[int, int], Iterable[int]],
    matrix: TrafficMatrix,
    *,
    endhost_terminated: bool = True,
) -> NetworkFlows:
    """Route every demand along its AS-level path and accumulate flows.

    ``routes`` maps (source, destination) pairs to the AS-level path used
    for that demand (a sequence starting at the source and ending at the
    destination).  When ``endhost_terminated`` is true, the demand is
    assumed to originate at and be destined to customer end-hosts of the
    terminal ASes, so those ASes additionally see the volume on their
    virtual end-host link — which is what makes the traffic billable at
    the edges.
    """
    flows = NetworkFlows()
    for pair, volume in matrix.demands.items():
        if pair not in routes:
            raise KeyError(f"no route for demand {pair}")
        path = tuple(routes[pair])
        if len(path) < 2:
            raise ValueError(f"route for {pair} must contain at least two ASes: {path}")
        if path[0] != pair[0] or path[-1] != pair[1]:
            raise ValueError(f"route {path} does not connect demand pair {pair}")
        for index, asn in enumerate(path):
            vector = flows.vector(asn)
            if index > 0:
                vector.add(path[index - 1], volume)
            if index < len(path) - 1:
                vector.add(path[index + 1], volume)
            if endhost_terminated and index in (0, len(path) - 1):
                vector.add(ENDHOSTS, volume)
        for index in range(1, len(path) - 1):
            flows.segments.add((path[index - 1], path[index], path[index + 1]), volume)
    return flows
