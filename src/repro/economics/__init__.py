"""Interconnection economics: the AS business model of §III-A.

Pricing functions ``p(f) = α·f^β`` for provider–customer links,
internal-cost functions, traffic/flow abstractions, and the AS utility
calculation ``U_X = r_X − c_X``.
"""

from repro.economics.business import ASBusiness, default_business_models
from repro.economics.cost import (
    AffineCost,
    InternalCostFunction,
    LinearCost,
    PiecewiseLinearCost,
    PowerLawCost,
    SteppedCapacityCost,
    ZeroCost,
)
from repro.economics.pricing import (
    CongestionPricing,
    FlatRatePricing,
    NinetyFifthPercentileBilling,
    PerUsagePricing,
    PowerLawPricing,
    PricingFunction,
    SettlementFree,
)
from repro.economics.timeseries import (
    BillingRule,
    DiurnalTrafficModel,
    billed_volume,
    simulate_billing_period,
)
from repro.economics.traffic import (
    ENDHOSTS,
    FlowVector,
    NetworkFlows,
    SegmentFlows,
    TrafficMatrix,
    assign_demands,
)

__all__ = [
    "PricingFunction",
    "PowerLawPricing",
    "FlatRatePricing",
    "PerUsagePricing",
    "CongestionPricing",
    "SettlementFree",
    "NinetyFifthPercentileBilling",
    "InternalCostFunction",
    "ZeroCost",
    "LinearCost",
    "AffineCost",
    "PowerLawCost",
    "SteppedCapacityCost",
    "PiecewiseLinearCost",
    "ENDHOSTS",
    "FlowVector",
    "SegmentFlows",
    "TrafficMatrix",
    "NetworkFlows",
    "assign_demands",
    "ASBusiness",
    "default_business_models",
    "BillingRule",
    "DiurnalTrafficModel",
    "billed_volume",
    "simulate_billing_period",
]
