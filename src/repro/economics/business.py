"""AS business calculation: revenue, cost, and utility (§III-A).

The utility (profit) of an AS ``X`` for a traffic distribution ``f_X`` is

``U_X(f_X) = r_X(f_X) − c_X(f_X)``                              (Eq. 1)

with revenue ``r_X = Σ_{Y ∈ γ(X)} p_XY(f_XY)`` (charges to customers,
including the virtual end-host stub) and cost
``c_X = i_X(f_X) + Σ_{Y ∈ π(X)} p_YX(f_XY)`` (internal cost plus charges
from providers).  Peering links are settlement-free and contribute
neither revenue nor link charges.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.economics.cost import InternalCostFunction, ZeroCost
from repro.economics.pricing import PerUsagePricing, PricingFunction
from repro.economics.traffic import ENDHOSTS, FlowVector
from repro.topology.graph import ASGraph


@dataclass
class ASBusiness:
    """Business parameters and profit calculation of a single AS.

    Parameters
    ----------
    asn:
        The AS number this business model belongs to.
    customer_pricing:
        Pricing function per customer (how this AS bills each customer);
        the key :data:`ENDHOSTS` prices the AS's own end-host customers.
    provider_pricing:
        Pricing function per provider (how each provider bills this AS).
    internal_cost:
        Internal forwarding-cost function ``i_X``.
    """

    asn: int
    customer_pricing: dict[Hashable, PricingFunction] = field(default_factory=dict)
    provider_pricing: dict[int, PricingFunction] = field(default_factory=dict)
    internal_cost: InternalCostFunction = field(default_factory=ZeroCost)

    def set_customer_pricing(self, customer: Hashable, pricing: PricingFunction) -> None:
        """Define how this AS charges one of its customers."""
        self.customer_pricing[customer] = pricing

    def set_provider_pricing(self, provider: int, pricing: PricingFunction) -> None:
        """Define how a provider charges this AS."""
        self.provider_pricing[provider] = pricing

    # ------------------------------------------------------------------
    # Eq. (1)
    # ------------------------------------------------------------------
    def revenue(self, flows: FlowVector) -> float:
        """Revenue ``r_X(f_X)``: charges collected from customers."""
        total = 0.0
        for customer, pricing in self.customer_pricing.items():
            total += pricing(flows.get(customer))
        return total

    def cost(self, flows: FlowVector) -> float:
        """Cost ``c_X(f_X)``: internal cost plus provider charges."""
        total = self.internal_cost(flows.total_flow())
        for provider, pricing in self.provider_pricing.items():
            total += pricing(flows.get(provider))
        return total

    def utility(self, flows: FlowVector) -> float:
        """Utility (profit) ``U_X(f_X) = r_X − c_X``."""
        return self.revenue(flows) - self.cost(flows)

    def utility_delta(self, before: FlowVector, after: FlowVector) -> float:
        """Change in utility between two traffic distributions."""
        return self.utility(after) - self.utility(before)


def default_business_models(
    graph: ASGraph,
    *,
    transit_unit_price: float = 1.0,
    endhost_unit_price: float = 1.5,
    internal_unit_cost: float = 0.1,
    tier_discount: float = 0.0,
) -> dict[int, ASBusiness]:
    """Build a plausible business model for every AS of a topology.

    Every provider–customer link is billed pay-per-usage at
    ``transit_unit_price`` (optionally discounted per provider-degree to
    mimic economies of scale), end-host customers are billed at
    ``endhost_unit_price``, and every AS has a linear internal cost.
    This is the default parameterization used by examples, tests, and
    the agreement-optimization benchmarks; all knobs can be overridden
    per AS afterwards.
    """
    if transit_unit_price < 0.0 or endhost_unit_price < 0.0:
        raise ValueError("prices must be non-negative")
    if internal_unit_cost < 0.0:
        raise ValueError("internal cost must be non-negative")
    if not 0.0 <= tier_discount < 1.0:
        raise ValueError("tier discount must be in [0, 1)")

    from repro.economics.cost import LinearCost

    models: dict[int, ASBusiness] = {}
    for asn in graph:
        business = ASBusiness(asn=asn, internal_cost=LinearCost(internal_unit_cost))
        business.set_customer_pricing(ENDHOSTS, PerUsagePricing(endhost_unit_price))
        for customer in graph.customers(asn):
            discount = 1.0 - tier_discount * min(1.0, len(graph.customers(asn)) / 100.0)
            business.set_customer_pricing(
                customer, PerUsagePricing(transit_unit_price * discount)
            )
        for provider in graph.providers(asn):
            discount = 1.0 - tier_discount * min(1.0, len(graph.customers(provider)) / 100.0)
            business.set_provider_pricing(
                provider, PerUsagePricing(transit_unit_price * discount)
            )
        models[asn] = business
    return models
