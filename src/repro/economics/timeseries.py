"""Traffic time series for billing-period simulation (§III-A).

The pricing functions of §III-A are applied to a *billed volume* that
"can be interpreted as the median, average, or 95th percentile of
traffic volume over a given time period".  This module provides the
missing piece between the library's per-period flow volumes and such
billing rules: a generator of realistic intra-period traffic samples
(diurnal pattern, weekly dip, burstiness) whose mean matches a target
volume, plus helpers to reduce a series to the billed volume under the
different conventions.

It is used by the compliance layer's tests and examples to simulate a
billing period of an agreement and by the economics tests to exercise
95th-percentile billing on realistic inputs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.economics.pricing import NinetyFifthPercentileBilling


class BillingRule(enum.Enum):
    """How a traffic time series is reduced to the billed volume."""

    AVERAGE = "average"
    MEDIAN = "median"
    NINETY_FIFTH_PERCENTILE = "p95"


@dataclass(frozen=True)
class DiurnalTrafficModel:
    """Synthetic intra-period traffic with daily and weekly seasonality.

    ``samples_per_day`` corresponds to the billing granularity (the
    classic 5-minute samples give 288 per day).  The generated series has
    the requested ``mean_volume`` in expectation; peak-hour traffic
    exceeds the mean by ``diurnal_amplitude`` (relative), weekends dip by
    ``weekend_dip`` (relative), and multiplicative log-normal noise with
    coefficient ``burstiness`` models short-term bursts.
    """

    mean_volume: float
    samples_per_day: int = 288
    days: int = 30
    diurnal_amplitude: float = 0.5
    weekend_dip: float = 0.3
    burstiness: float = 0.2
    peak_hour: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_volume < 0.0:
            raise ValueError("the mean volume must be non-negative")
        if self.samples_per_day < 1 or self.days < 1:
            raise ValueError("the billing period needs at least one sample")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("the diurnal amplitude must be in [0, 1]")
        if not 0.0 <= self.weekend_dip <= 1.0:
            raise ValueError("the weekend dip must be in [0, 1]")
        if self.burstiness < 0.0:
            raise ValueError("burstiness must be non-negative")

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Generate one billing period of traffic samples."""
        total = self.samples_per_day * self.days
        if self.mean_volume == 0.0:
            return np.zeros(total)
        sample_hours = (
            np.arange(total, dtype=float) % self.samples_per_day
        ) / self.samples_per_day * 24.0
        day_index = np.arange(total) // self.samples_per_day
        diurnal = 1.0 + self.diurnal_amplitude * np.cos(
            (sample_hours - self.peak_hour) / 24.0 * 2.0 * math.pi
        )
        weekday = np.where((day_index % 7) >= 5, 1.0 - self.weekend_dip, 1.0)
        shape = diurnal * weekday
        shape = shape / shape.mean()
        if self.burstiness > 0.0:
            sigma = self.burstiness
            noise = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=total)
        else:
            noise = np.ones(total)
        return self.mean_volume * shape * noise


def billed_volume(samples: np.ndarray | list[float], rule: BillingRule) -> float:
    """Reduce a traffic series to the billed volume under a billing rule."""
    array = np.asarray(list(samples), dtype=float)
    if array.size == 0:
        return 0.0
    if np.any(array < 0.0):
        raise ValueError("traffic samples must be non-negative")
    if rule is BillingRule.AVERAGE:
        return float(np.mean(array))
    if rule is BillingRule.MEDIAN:
        return float(np.median(array))
    return NinetyFifthPercentileBilling().billable_volume([float(v) for v in array])


def simulate_billing_period(
    mean_volume: float,
    *,
    rule: BillingRule = BillingRule.NINETY_FIFTH_PERCENTILE,
    seed: int = 0,
    **model_overrides: float,
) -> float:
    """Convenience wrapper: generate a period and return its billed volume.

    Because traffic is bursty and diurnal, the 95th-percentile billed
    volume exceeds the average volume — which is exactly why flow-volume
    agreement conditions need headroom over the *average* volumes they
    were negotiated from (§IV-C's predictability discussion).
    """
    model = DiurnalTrafficModel(
        mean_volume=mean_volume, **model_overrides
    )  # type: ignore[arg-type]
    samples = model.generate(np.random.default_rng(seed))
    return billed_volume(samples, rule)
