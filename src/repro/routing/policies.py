"""Routing policies for the BGP path-vector simulator (§II).

Two families of policies matter for the paper's stability argument:

- :class:`GaoRexfordPolicy` — the canonical GRC-conforming policy
  (prefer customer routes over peer routes over provider routes; export
  only customer-learned routes to peers and providers).  Under this
  policy BGP provably converges.
- :class:`PreferenceListPolicy` — an explicit ranking of paths with
  unrestricted export, used to express the DISAGREE / BAD GADGET
  preferences and the GRC-violating "sibling" preferences on the Fig. 1
  topology.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.topology.graph import ASGraph
from repro.topology.relationships import Role

#: Ranking value of a path that a policy refuses to use at all.
REJECTED = float("inf")


class RoutingPolicy(abc.ABC):
    """Per-AS route selection and export behaviour."""

    @abc.abstractmethod
    def rank(self, asn: int, path: tuple[int, ...], graph: ASGraph) -> tuple:
        """Ranking key of a candidate path (lower is preferred).

        ``path`` starts at ``asn`` and ends at the destination.  Return a
        tuple so policies can express lexicographic preferences; return
        a tuple whose first element is :data:`REJECTED` to reject the
        path outright.
        """

    @abc.abstractmethod
    def exports_to(
        self,
        asn: int,
        neighbor: int,
        path: tuple[int, ...],
        graph: ASGraph,
    ) -> bool:
        """Whether ``asn`` announces ``path`` to ``neighbor``."""


@dataclass(frozen=True)
class GaoRexfordPolicy(RoutingPolicy):
    """The Gao–Rexford route-selection and export policy.

    Selection: customer routes ≻ peer routes ≻ provider routes, then
    shorter AS paths, then lowest next-hop AS number (deterministic
    tie-break).  Export: routes learned from customers (and own routes)
    are exported to everybody; routes learned from peers or providers
    are exported to customers only.
    """

    def _role_preference(self, asn: int, path: tuple[int, ...], graph: ASGraph) -> int:
        if len(path) == 1:
            return 0
        next_hop = path[1]
        role = graph.role_of(asn, next_hop)
        if role is Role.CUSTOMER:
            return 0
        if role is Role.PEER:
            return 1
        return 2

    def rank(self, asn: int, path: tuple[int, ...], graph: ASGraph) -> tuple:
        return (self._role_preference(asn, path, graph), len(path), path[1] if len(path) > 1 else 0)

    def exports_to(
        self,
        asn: int,
        neighbor: int,
        path: tuple[int, ...],
        graph: ASGraph,
    ) -> bool:
        neighbor_role = graph.role_of(asn, neighbor)
        if neighbor_role is Role.CUSTOMER:
            return True
        # Peers and providers only receive routes learned from customers
        # (or the AS's own routes).
        return self._role_preference(asn, path, graph) == 0


@dataclass(frozen=True)
class PreferenceListPolicy(RoutingPolicy):
    """Explicit path preferences with unrestricted export.

    ``preferences`` is an ordered tuple of paths (most preferred first);
    any path not listed ranks below all listed paths, ordered by length.
    This expresses the gadget preferences of the BGP stability
    literature, where the interesting behaviour comes from preferring a
    longer route through a neighbor over one's own direct route.
    """

    preferences: tuple[tuple[int, ...], ...] = field(default_factory=tuple)

    def rank(self, asn: int, path: tuple[int, ...], graph: ASGraph) -> tuple:
        if path in self.preferences:
            return (0, self.preferences.index(path), 0)
        return (1, len(path), path[1] if len(path) > 1 else 0)

    def exports_to(
        self,
        asn: int,
        neighbor: int,
        path: tuple[int, ...],
        graph: ASGraph,
    ) -> bool:
        return True


def gao_rexford_policies(graph: ASGraph) -> dict[int, RoutingPolicy]:
    """A GRC-conforming policy for every AS of a topology."""
    policy = GaoRexfordPolicy()
    return {asn: policy for asn in graph}


def gadget_policies(
    graph: ASGraph, preferences: dict[int, tuple[tuple[int, ...], ...]]
) -> dict[int, RoutingPolicy]:
    """Policies for a gadget: explicit preferences where given, GRC elsewhere."""
    policies: dict[int, RoutingPolicy] = {}
    for asn in graph:
        if asn in preferences:
            policies[asn] = PreferenceListPolicy(preferences=tuple(preferences[asn]))
        else:
            policies[asn] = GaoRexfordPolicy()
    return policies
