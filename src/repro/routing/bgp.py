"""A BGP-style path-vector routing simulator (§II).

The simulator implements the standard "stable paths problem" activation
model: ASes are activated one at a time (according to a configurable
schedule); an activated AS looks at the routes its neighbors currently
select and export to it, picks its most preferred loop-free route, and
adopts it.  The network has converged when a full activation round
changes nothing; it oscillates when the global routing state revisits a
previously seen state without having converged (which, for a
deterministic schedule, proves it never will).

This is exactly the machinery needed to reproduce the paper's stability
argument: DISAGREE converges but to schedule-dependent outcomes ("BGP
wedgies"), BAD GADGET oscillates forever, and GRC-conforming policies
always converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.routing.policies import RoutingPolicy
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class BGPOutcome:
    """Result of a BGP simulation run."""

    converged: bool
    oscillation_detected: bool
    steps: int
    routes: dict[int, tuple[int, ...] | None]
    state_revisits: int = 0

    def route_of(self, asn: int) -> tuple[int, ...] | None:
        """Selected route of an AS at the end of the run (None = no route)."""
        return self.routes.get(asn)


@dataclass
class BGPSimulator:
    """Path-vector simulation towards a single destination AS."""

    graph: ASGraph
    destination: int
    policies: dict[int, RoutingPolicy]
    #: Selected route per AS; the destination always selects ``(destination,)``.
    _selected: dict[int, tuple[int, ...] | None] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.destination not in self.graph:
            raise ValueError(f"destination AS {self.destination} is not in the topology")
        missing = self.graph.ases - set(self.policies) - {self.destination}
        if missing:
            raise ValueError(f"no policy defined for ASes {sorted(missing)}")
        self.reset()

    def reset(self) -> None:
        """Reset all routing state: only the destination knows a route."""
        self._selected = {asn: None for asn in self.graph}
        self._selected[self.destination] = (self.destination,)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def selected_routes(self) -> dict[int, tuple[int, ...] | None]:
        """Currently selected route of every AS."""
        return dict(self._selected)

    def _state_key(self) -> tuple:
        return tuple(sorted(self._selected.items()))

    # ------------------------------------------------------------------
    # Route computation
    # ------------------------------------------------------------------
    def candidate_routes(self, asn: int) -> list[tuple[int, ...]]:
        """Routes currently available to an AS from its neighbors' exports."""
        if asn == self.destination:
            return [(self.destination,)]
        candidates = []
        for neighbor in self.graph.neighbors(asn):
            neighbor_route = self._selected.get(neighbor)
            if neighbor_route is None:
                continue
            if asn in neighbor_route:
                # Loop prevention: BGP drops paths containing itself.
                continue
            if neighbor != self.destination:
                policy = self.policies[neighbor]
                if not policy.exports_to(neighbor, asn, neighbor_route, self.graph):
                    continue
            candidates.append((asn, *neighbor_route))
        return candidates

    def best_route(self, asn: int) -> tuple[int, ...] | None:
        """Most preferred available route of an AS (None if none available)."""
        if asn == self.destination:
            return (self.destination,)
        candidates = self.candidate_routes(asn)
        if not candidates:
            return None
        policy = self.policies[asn]
        ranked = sorted(candidates, key=lambda path: policy.rank(asn, path, self.graph))
        best = ranked[0]
        if policy.rank(asn, best, self.graph)[0] == float("inf"):
            return None
        return best

    def activate(self, asn: int) -> bool:
        """Activate one AS; returns True when its selected route changed."""
        if asn == self.destination:
            return False
        new_route = self.best_route(asn)
        if new_route != self._selected[asn]:
            self._selected[asn] = new_route
            return True
        return False

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        schedule: list[int] | None = None,
        max_rounds: int = 1000,
        seed: int | None = None,
    ) -> BGPOutcome:
        """Run activation rounds until convergence, oscillation, or the bound.

        ``schedule`` fixes the order in which ASes are activated within
        each round; when omitted, a deterministic order is derived from
        ``seed`` (or the sorted AS order if no seed is given).  Because
        the schedule is deterministic and repeated every round, revisiting
        a previously seen global state without convergence proves a
        persistent oscillation.
        """
        if schedule is None:
            order = sorted(asn for asn in self.graph if asn != self.destination)
            if seed is not None:
                rng = np.random.default_rng(seed)
                order = [int(x) for x in rng.permutation(order)]
        else:
            order = [asn for asn in schedule if asn != self.destination]
            missing = self.graph.ases - set(order) - {self.destination}
            if missing:
                raise ValueError(f"schedule misses ASes {sorted(missing)}")

        seen_states: set[tuple] = {self._state_key()}
        steps = 0
        revisits = 0
        for _ in range(max_rounds):
            changed = False
            for asn in order:
                if self.activate(asn):
                    changed = True
                steps += 1
            if not changed:
                return BGPOutcome(
                    converged=True,
                    oscillation_detected=False,
                    steps=steps,
                    routes=self.selected_routes,
                    state_revisits=revisits,
                )
            state = self._state_key()
            if state in seen_states:
                revisits += 1
                return BGPOutcome(
                    converged=False,
                    oscillation_detected=True,
                    steps=steps,
                    routes=self.selected_routes,
                    state_revisits=revisits,
                )
            seen_states.add(state)
        return BGPOutcome(
            converged=False,
            oscillation_detected=False,
            steps=steps,
            routes=self.selected_routes,
            state_revisits=revisits,
        )
