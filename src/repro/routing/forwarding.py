"""Packet forwarding along source-selected paths (§II).

Unlike IP, a PAN forwards a packet along the path encoded in its header:
each transit AS only checks that it authorized the segment the packet is
asking it to traverse, then hands the packet to the next AS of the
header.  There is no dependence on other ASes' routing state, so
forwarding cannot loop and GRC-violating segments cannot destabilize
anything — the property the paper's stability argument rests on.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.routing.pan import PathAwareNetwork


class DropReason(enum.Enum):
    """Why a packet was not delivered."""

    MISSING_LINK = "missing link"
    UNAUTHORIZED_SEGMENT = "unauthorized segment"
    MALFORMED_PATH = "malformed path"


@dataclass
class Packet:
    """A data packet carrying its forwarding path in the header."""

    _ids = itertools.count()

    path: tuple[int, ...]
    payload: str = ""
    position: int = 0
    packet_id: int = field(default_factory=lambda: next(Packet._ids))

    @property
    def current_as(self) -> int:
        """AS currently holding the packet."""
        return self.path[self.position]

    @property
    def delivered(self) -> bool:
        """Whether the packet reached the last AS of its header path."""
        return self.position == len(self.path) - 1


@dataclass(frozen=True)
class ForwardingResult:
    """Outcome of forwarding one packet."""

    packet: Packet
    delivered: bool
    hops: int
    traversed: tuple[int, ...]
    drop_reason: DropReason | None = None
    dropped_at: int | None = None


class ForwardingEngine:
    """Hop-by-hop forwarding of packets through a path-aware network."""

    def __init__(self, network: PathAwareNetwork) -> None:
        self.network = network

    def forward(self, packet: Packet) -> ForwardingResult:
        """Forward a packet along its embedded path until delivery or drop."""
        path = packet.path
        if len(path) < 2 or len(set(path)) != len(path):
            return ForwardingResult(
                packet=packet,
                delivered=False,
                hops=0,
                traversed=(path[0],) if path else (),
                drop_reason=DropReason.MALFORMED_PATH,
                dropped_at=path[0] if path else None,
            )
        traversed = [path[0]]
        hops = 0
        while not packet.delivered:
            current = packet.current_as
            next_as = path[packet.position + 1]
            if not self.network.graph.has_link(current, next_as):
                return ForwardingResult(
                    packet=packet,
                    delivered=False,
                    hops=hops,
                    traversed=tuple(traversed),
                    drop_reason=DropReason.MISSING_LINK,
                    dropped_at=current,
                )
            if 0 < packet.position < len(path) - 1:
                previous = path[packet.position - 1]
                if not self.network.is_authorized(previous, current, next_as):
                    return ForwardingResult(
                        packet=packet,
                        delivered=False,
                        hops=hops,
                        traversed=tuple(traversed),
                        drop_reason=DropReason.UNAUTHORIZED_SEGMENT,
                        dropped_at=current,
                    )
            packet.position += 1
            traversed.append(packet.current_as)
            hops += 1
        return ForwardingResult(
            packet=packet,
            delivered=True,
            hops=hops,
            traversed=tuple(traversed),
        )

    def forward_many(self, packets: list[Packet]) -> list[ForwardingResult]:
        """Forward a batch of packets independently."""
        return [self.forward(packet) for packet in packets]

    def delivery_ratio(self, packets: list[Packet]) -> float:
        """Fraction of packets that are delivered."""
        if not packets:
            return 0.0
        results = self.forward_many(packets)
        return sum(1 for result in results if result.delivered) / len(results)
