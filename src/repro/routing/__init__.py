"""Routing substrates (§II).

A BGP-style path-vector simulator with configurable policies (the GRC
policy and the explicit-preference gadget policies), convergence /
oscillation analysis of the classical gadgets, and a PAN/SCION-like
substrate with agreement-governed segment authorization and forwarding
along source-selected paths embedded in packet headers.
"""

from repro.routing.beaconing import (
    BeaconingProcess,
    PathConstructionBeacon,
    PathServer,
    SegmentStore,
)
from repro.routing.bgp import BGPOutcome, BGPSimulator
from repro.routing.convergence import (
    ConvergenceReport,
    analyze_gadget,
    analyze_grc,
    degrade_by_link_failure,
)
from repro.routing.forwarding import (
    DropReason,
    ForwardingEngine,
    ForwardingResult,
    Packet,
)
from repro.routing.pan import AuthorizedSegment, PathAwareNetwork
from repro.routing.policies import (
    GaoRexfordPolicy,
    PreferenceListPolicy,
    RoutingPolicy,
    gadget_policies,
    gao_rexford_policies,
)

__all__ = [
    "RoutingPolicy",
    "GaoRexfordPolicy",
    "PreferenceListPolicy",
    "gao_rexford_policies",
    "gadget_policies",
    "BGPSimulator",
    "BGPOutcome",
    "ConvergenceReport",
    "analyze_gadget",
    "analyze_grc",
    "degrade_by_link_failure",
    "PathAwareNetwork",
    "AuthorizedSegment",
    "ForwardingEngine",
    "ForwardingResult",
    "Packet",
    "DropReason",
    "PathConstructionBeacon",
    "SegmentStore",
    "BeaconingProcess",
    "PathServer",
]
