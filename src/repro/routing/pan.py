"""A path-aware network (PAN) substrate in the spirit of SCION (§II).

In a PAN, forwarding paths are discovered similarly to BGP (ASes
disseminate path information to neighbors) but data packets are
forwarded along the path *selected by the source and embedded in the
packet header*.  Two consequences matter for the paper:

1. Stability is trivial: there is no global route-selection fixed point
   to reach, so GRC-violating path segments cannot cause oscillations or
   loops — the path in the header is checked to be loop-free when it is
   constructed.
2. ASes keep control over which path segments they *authorize*: the set
   of authorized segments is exactly what interconnection agreements
   govern.  The default authorization is GRC-conforming (customer
   segments only); mutuality-based agreements add further segments.

The :class:`PathAwareNetwork` maintains the authorized-segment registry,
enumerates end-to-end paths available to a source, and lets end hosts
select paths by latency (geodistance) or bandwidth.  Packet-level
forwarding along embedded paths lives in
:mod:`repro.routing.forwarding`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agreements.agreement import Agreement
from repro.topology.bandwidth import LinkCapacityModel
from repro.topology.geography import GeographicEmbedding
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class AuthorizedSegment:
    """A length-3 path segment authorized by its middle (transit) AS.

    ``path = (first, transit, last)``: the transit AS agrees to forward
    traffic between ``first`` and ``last``.  Authorization is direction-
    independent, like the flows in the paper's model.
    """

    first: int
    transit: int
    last: int

    def __post_init__(self) -> None:
        if len({self.first, self.transit, self.last}) != 3:
            raise ValueError("a segment needs three distinct ASes")

    @property
    def key(self) -> tuple[int, frozenset[int]]:
        """Direction-independent identity of the segment."""
        return (self.transit, frozenset((self.first, self.last)))

    @property
    def path(self) -> tuple[int, int, int]:
        return (self.first, self.transit, self.last)


class PathAwareNetwork:
    """Authorized-segment registry and path discovery of a PAN."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._authorized: set[tuple[int, frozenset[int]]] = set()
        self._agreements: list[Agreement] = []

    # ------------------------------------------------------------------
    # Authorization
    # ------------------------------------------------------------------
    def authorize_segment(self, first: int, transit: int, last: int) -> None:
        """Authorize one transit segment (links must exist in the topology)."""
        if not self.graph.has_link(first, transit) or not self.graph.has_link(transit, last):
            raise ValueError(
                f"cannot authorize segment ({first}, {transit}, {last}): missing link"
            )
        segment = AuthorizedSegment(first=first, transit=transit, last=last)
        self._authorized.add(segment.key)

    def authorize_grc_segments(self) -> int:
        """Authorize every GRC-conforming segment of the topology.

        A transit AS ``B`` forwards between neighbors ``A`` and ``C``
        under the GRC only if at least one of them is ``B``'s customer.
        Returns the number of newly authorized segments.
        """
        before = len(self._authorized)
        for transit in self.graph:
            neighbors = sorted(self.graph.neighbors(transit))
            customers = self.graph.customers(transit)
            for i, first in enumerate(neighbors):
                for last in neighbors[i + 1 :]:
                    if first in customers or last in customers:
                        self.authorize_segment(first, transit, last)
        return len(self._authorized) - before

    def apply_agreement(self, agreement: Agreement) -> int:
        """Authorize the segments created by an interconnection agreement.

        For every new segment ``beneficiary – partner – target`` of the
        agreement, the partner authorizes transit between the beneficiary
        and the target.  Returns the number of newly authorized segments.
        """
        agreement.validate_against(self.graph)
        before = len(self._authorized)
        for segment in agreement.all_segments():
            self.authorize_segment(
                segment.beneficiary, segment.partner, segment.target
            )
        self._agreements.append(agreement)
        return len(self._authorized) - before

    def is_authorized(self, first: int, transit: int, last: int) -> bool:
        """Whether a transit AS authorizes forwarding between two neighbors."""
        return (transit, frozenset((first, last))) in self._authorized

    @property
    def agreements(self) -> tuple[Agreement, ...]:
        """Agreements applied to this network."""
        return tuple(self._agreements)

    def num_authorized_segments(self) -> int:
        """Number of authorized transit segments."""
        return len(self._authorized)

    # ------------------------------------------------------------------
    # Path discovery and validation
    # ------------------------------------------------------------------
    def is_valid_path(self, path: tuple[int, ...]) -> bool:
        """Whether a path is loop-free, link-connected, and fully authorized."""
        if len(path) < 2 or len(set(path)) != len(path):
            return False
        for i in range(len(path) - 1):
            if not self.graph.has_link(path[i], path[i + 1]):
                return False
        for i in range(1, len(path) - 1):
            if not self.is_authorized(path[i - 1], path[i], path[i + 1]):
                return False
        return True

    def available_paths(
        self, source: int, destination: int, *, max_hops: int = 3
    ) -> tuple[tuple[int, ...], ...]:
        """All authorized loop-free paths between two ASes up to a hop bound.

        ``max_hops`` counts ASes on the path; the paper's analysis focuses
        on length-3 paths (three ASes, two links).
        """
        if source not in self.graph or destination not in self.graph:
            raise ValueError("source and destination must be part of the topology")
        results: list[tuple[int, ...]] = []
        stack: list[tuple[int, ...]] = [(source,)]
        while stack:
            path = stack.pop()
            current = path[-1]
            if current == destination and len(path) >= 2:
                results.append(path)
                continue
            if len(path) >= max_hops:
                continue
            for neighbor in sorted(self.graph.neighbors(current)):
                if neighbor in path:
                    continue
                if len(path) >= 2 and not self.is_authorized(path[-2], current, neighbor):
                    continue
                stack.append((*path, neighbor))
        return tuple(sorted(results))

    def select_path(
        self,
        source: int,
        destination: int,
        *,
        metric: str = "latency",
        embedding: GeographicEmbedding | None = None,
        capacities: LinkCapacityModel | None = None,
        max_hops: int = 3,
    ) -> tuple[int, ...] | None:
        """End-host path selection among the available paths.

        ``metric`` is ``"latency"`` (minimize geodistance, requires an
        embedding), ``"bandwidth"`` (maximize bottleneck capacity,
        requires a capacity model), or ``"hops"`` (minimize path length).
        Returns ``None`` when no authorized path exists.
        """
        paths = self.available_paths(source, destination, max_hops=max_hops)
        if not paths:
            return None
        if metric == "hops":
            return min(paths, key=len)
        if metric == "latency":
            if embedding is None:
                raise ValueError("latency-based selection requires a geographic embedding")
            return min(paths, key=embedding.path_geodistance)
        if metric == "bandwidth":
            if capacities is None:
                raise ValueError("bandwidth-based selection requires a capacity model")
            return max(paths, key=capacities.path_bandwidth)
        raise ValueError(f"unknown metric {metric!r}")
