"""SCION-style path discovery: beaconing and segment registration (§II).

The paper's stability argument relies on how PANs *discover* paths:
"paths in PAN architectures are discovered similarly as in BGP, namely by
communicating path information to neighboring ASes", but forwarding uses
the path in the packet header.  This module provides that discovery
substrate in the style of SCION:

- **Core beaconing**: the provider-free core ASes (tier-1) originate
  path-construction beacons (PCBs) that travel *down* provider–customer
  links; every AS extends the beacon with its own hop and forwards it to
  its customers.  The recorded reverse paths are **up-segments** (from an
  AS up to the core) and, read forwards, **down-segments** (from the core
  down to an AS).
- **Core segments**: paths among core ASes over their peering mesh.
- **Segment registration**: each AS registers its best segments at a
  :class:`PathServer`, where sources look them up.
- **Path construction**: an end-to-end forwarding path is built by
  combining an up-segment of the source, optionally a core segment, and a
  down-segment of the destination — or, when an interconnection
  agreement authorizes it, a *shortcut* over a peering link between the
  two segments (exactly the kind of path mutuality-based agreements
  create).

The constructed paths can be handed directly to
:class:`repro.routing.forwarding.ForwardingEngine`, closing the loop
between path discovery, agreements, and data-plane forwarding.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.routing.pan import PathAwareNetwork
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class PathConstructionBeacon:
    """A path-construction beacon: the AS-level path from a core AS downwards."""

    path: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("a beacon needs at least the originating core AS")
        if len(set(self.path)) != len(self.path):
            raise ValueError(f"beacon path contains a loop: {self.path}")

    @property
    def core_as(self) -> int:
        """The core AS that originated the beacon."""
        return self.path[0]

    @property
    def last_as(self) -> int:
        """The AS that most recently extended the beacon."""
        return self.path[-1]

    def extended(self, next_as: int) -> "PathConstructionBeacon":
        """The beacon after the next AS appends its hop."""
        if next_as in self.path:
            raise ValueError(f"extending beacon {self.path} with {next_as} creates a loop")
        return PathConstructionBeacon(path=(*self.path, next_as))


@dataclass
class SegmentStore:
    """Up-, down-, and core-segments discovered by beaconing.

    Segments are stored as AS-level paths.  A *down-segment* for AS ``X``
    runs from a core AS to ``X``; the corresponding *up-segment* is the
    reverse.  A *core-segment* connects two core ASes.
    """

    down_segments: dict[int, set[tuple[int, ...]]] = field(
        default_factory=lambda: defaultdict(set)
    )
    core_segments: dict[frozenset[int], set[tuple[int, ...]]] = field(
        default_factory=lambda: defaultdict(set)
    )

    def register_down_segment(self, segment: tuple[int, ...]) -> None:
        """Register a down-segment ending at its last AS."""
        self.down_segments[segment[-1]].add(segment)

    def register_core_segment(self, segment: tuple[int, ...]) -> None:
        """Register a core-segment between its two end ASes."""
        self.core_segments[frozenset((segment[0], segment[-1]))].add(segment)

    def down_segments_of(self, asn: int) -> frozenset[tuple[int, ...]]:
        """Down-segments reaching an AS."""
        return frozenset(self.down_segments.get(asn, set()))

    def up_segments_of(self, asn: int) -> frozenset[tuple[int, ...]]:
        """Up-segments of an AS (reversed down-segments)."""
        return frozenset(tuple(reversed(s)) for s in self.down_segments.get(asn, set()))

    def core_segments_between(self, left: int, right: int) -> frozenset[tuple[int, ...]]:
        """Core-segments between two core ASes, oriented from ``left`` to ``right``."""
        oriented = set()
        for segment in self.core_segments.get(frozenset((left, right)), set()):
            if segment[0] == left:
                oriented.add(segment)
            else:
                oriented.add(tuple(reversed(segment)))
        return frozenset(oriented)


class BeaconingProcess:
    """Disseminates PCBs from the core and registers the resulting segments."""

    def __init__(
        self,
        graph: ASGraph,
        *,
        max_segment_length: int = 5,
        beacons_per_as: int = 8,
    ) -> None:
        if max_segment_length < 1:
            raise ValueError("segments need at least one AS")
        if beacons_per_as < 1:
            raise ValueError("each AS must be allowed to keep at least one beacon")
        self.graph = graph
        self.max_segment_length = max_segment_length
        self.beacons_per_as = beacons_per_as

    def run(self) -> SegmentStore:
        """Run beaconing to completion and return the discovered segments."""
        store = SegmentStore()
        core = sorted(self.graph.tier1_ases())

        # Core segments: paths within the core (over core peering links),
        # found by breadth-limited search on the core subgraph.
        core_set = set(core)
        for origin in core:
            frontier: list[tuple[int, ...]] = [(origin,)]
            while frontier:
                path = frontier.pop()
                current = path[-1]
                if len(path) > 1:
                    store.register_core_segment(path)
                if len(path) >= self.max_segment_length:
                    continue
                for neighbor in sorted(self.graph.peers(current) & core_set):
                    if neighbor in path:
                        continue
                    frontier.append((*path, neighbor))

        # Down-segments: beacons travel down provider->customer links.
        # Each AS keeps a bounded number of the shortest beacons it has seen
        # and propagates them to its customers.
        best_beacons: dict[int, list[PathConstructionBeacon]] = {
            asn: [PathConstructionBeacon(path=(asn,))] for asn in core
        }
        # Process ASes in topological order of the provider->customer DAG so
        # every provider's beacons are final before its customers receive them.
        order = self._topological_order()
        for asn in order:
            for beacon in best_beacons.get(asn, []):
                if len(beacon.path) > 1:
                    store.register_down_segment(beacon.path)
                if len(beacon.path) >= self.max_segment_length:
                    continue
                for customer in sorted(self.graph.customers(asn)):
                    if customer in beacon.path:
                        continue
                    extended = beacon.extended(customer)
                    bucket = best_beacons.setdefault(customer, [])
                    bucket.append(extended)
                    bucket.sort(key=lambda b: (len(b.path), b.path))
                    del bucket[self.beacons_per_as :]
        return store

    def _topological_order(self) -> list[int]:
        """ASes ordered so that providers come before their customers."""
        indegree = {asn: len(self.graph.providers(asn)) for asn in self.graph}
        ready = sorted(asn for asn, degree in indegree.items() if degree == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for customer in sorted(self.graph.customers(current)):
                indegree[customer] -= 1
                if indegree[customer] == 0:
                    ready.append(customer)
        return order


@dataclass
class PathServer:
    """Combines registered segments into end-to-end forwarding paths."""

    graph: ASGraph
    store: SegmentStore
    network: PathAwareNetwork | None = None

    def lookup(
        self,
        source: int,
        destination: int,
        *,
        max_paths: int = 20,
    ) -> tuple[tuple[int, ...], ...]:
        """End-to-end AS-level paths from segment combination.

        Three combinations are attempted, mirroring SCION: up+down
        segments sharing a core AS, up+core+down segments, and — when a
        :class:`PathAwareNetwork` with agreement-authorized segments is
        attached — shortcut paths that cross directly from the source's
        up-segment to the destination over an authorized peering detour.
        Paths are deduplicated, checked for loops, and validated against
        the authorization registry when one is attached.
        """
        if source == destination:
            raise ValueError("source and destination must differ")
        candidates: set[tuple[int, ...]] = set()

        up_segments = set(self.store.up_segments_of(source))
        down_segments = set(self.store.down_segments_of(destination))
        # Core endpoints have no up/down segments of their own; they act as
        # their own trivial segment so core↔edge paths can be constructed.
        if not self.graph.providers(source):
            up_segments.add((source,))
        if not self.graph.providers(destination):
            down_segments.add((destination,))

        for up in up_segments:
            for down in down_segments:
                if up[-1] == down[0]:
                    candidates.add(self._join(up, down[1:]))
                else:
                    for core in self.store.core_segments_between(up[-1], down[0]):
                        candidates.add(self._join(up, core[1:], down[1:]))

        if self.network is not None:
            candidates.update(self._shortcut_paths(source, destination))

        valid = []
        for path in sorted(candidates, key=lambda p: (len(p), p)):
            if len(set(path)) != len(path):
                continue
            if not all(
                self.graph.has_link(path[i], path[i + 1]) for i in range(len(path) - 1)
            ):
                continue
            if self.network is not None and not self.network.is_valid_path(path):
                continue
            valid.append(path)
            if len(valid) >= max_paths:
                break
        return tuple(valid)

    def _shortcut_paths(self, source: int, destination: int) -> set[tuple[int, ...]]:
        """Length-3 shortcuts over agreement-authorized peering detours."""
        shortcuts: set[tuple[int, ...]] = set()
        assert self.network is not None
        for middle in self.graph.neighbors(source):
            if destination in self.graph.neighbors(middle) and self.network.is_authorized(
                source, middle, destination
            ):
                shortcuts.add((source, middle, destination))
        if self.graph.has_link(source, destination):
            shortcuts.add((source, destination))
        return shortcuts

    @staticmethod
    def _join(*parts: tuple[int, ...]) -> tuple[int, ...]:
        joined: list[int] = []
        for part in parts:
            joined.extend(part)
        return tuple(joined)
