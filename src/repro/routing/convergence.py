"""Convergence analysis of BGP policies (§II).

Thin analysis layer over the BGP simulator that reproduces the paper's
stability argument:

- GRC-conforming policies always converge (Gao–Rexford theorem),
- the DISAGREE gadget converges, but to different stable states under
  different activation schedules (non-determinism / "BGP wedgies"),
- the BAD GADGET oscillates persistently,
- seemingly benign GRC-violating topologies can degrade to a BAD GADGET
  when a link fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.bgp import BGPOutcome, BGPSimulator
from repro.routing.policies import gadget_policies, gao_rexford_policies
from repro.topology.fixtures import Gadget
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of running a gadget under several activation schedules."""

    name: str
    outcomes: tuple[BGPOutcome, ...]

    @property
    def always_converged(self) -> bool:
        """Whether every schedule converged."""
        return all(outcome.converged for outcome in self.outcomes)

    @property
    def any_oscillation(self) -> bool:
        """Whether any schedule exhibited a persistent oscillation."""
        return any(outcome.oscillation_detected for outcome in self.outcomes)

    @property
    def distinct_stable_states(self) -> int:
        """Number of distinct stable routing states reached across schedules.

        More than one distinct stable state means the outcome is
        schedule-dependent (non-deterministic convergence).
        """
        states = set()
        for outcome in self.outcomes:
            if outcome.converged:
                states.add(tuple(sorted(outcome.routes.items())))
        return len(states)

    @property
    def is_nondeterministic(self) -> bool:
        """Converges, but to schedule-dependent routing states."""
        return self.always_converged and self.distinct_stable_states > 1


def analyze_gadget(gadget: Gadget, *, num_schedules: int = 6) -> ConvergenceReport:
    """Run a gadget under several deterministic activation schedules."""
    outcomes = []
    for seed in range(num_schedules):
        simulator = BGPSimulator(
            graph=gadget.graph,
            destination=gadget.destination,
            policies=gadget_policies(gadget.graph, gadget.preferences),
        )
        outcomes.append(simulator.run(seed=seed, max_rounds=200))
    return ConvergenceReport(name=gadget.name, outcomes=tuple(outcomes))


def analyze_grc(graph: ASGraph, destination: int, *, num_schedules: int = 4) -> ConvergenceReport:
    """Run GRC-conforming policies towards one destination under several schedules."""
    outcomes = []
    for seed in range(num_schedules):
        simulator = BGPSimulator(
            graph=graph,
            destination=destination,
            policies=gao_rexford_policies(graph),
        )
        outcomes.append(simulator.run(seed=seed, max_rounds=500))
    return ConvergenceReport(name=f"GRC→{destination}", outcomes=tuple(outcomes))


def degrade_by_link_failure(gadget: Gadget, left: int, right: int) -> Gadget:
    """Remove a link from a gadget topology (the §II link-failure scenario).

    The paper notes that seemingly benign GRC-violating configurations
    can reduce to a BAD GADGET when a link fails; this helper produces
    the degraded gadget so tests and examples can demonstrate it.
    """
    graph = gadget.graph.copy()
    graph.remove_link(left, right)
    preferences = {
        asn: tuple(
            path
            for path in paths
            if all(
                graph.has_link(path[i], path[i + 1]) for i in range(len(path) - 1)
            )
        )
        for asn, paths in gadget.preferences.items()
    }
    return Gadget(
        graph=graph,
        destination=gadget.destination,
        preferences=preferences,
        name=f"{gadget.name} (link {left}–{right} failed)",
    )
