"""Geographic embedding of ASes and interconnection points.

The geodistance analysis of §VI-B needs, for every AS, a geographic
centre of gravity, and for every inter-AS link, the location(s) of the
interconnection point(s).  The paper derives these from the CAIDA
prefix-to-AS dataset, GeoLite2, and the CAIDA geographic AS-relationship
dataset.  None of these are available offline, so this module provides

- :class:`GeographicEmbedding` — the data structure used by the
  geodistance analysis (AS centres of gravity + per-link interconnection
  points), independent of where the coordinates come from, and
- :class:`SyntheticGeographyGenerator` — a generator that places ASes
  around regional hubs (mimicking continental clustering of the real
  Internet) and puts 1–3 interconnection points on every link.

The geodistance of a length-3 path ``(A1, l12, A2, l23, A3)`` follows the
paper exactly: ``d(A1, l12) + d(l12, l23) + d(l23, A3)``, minimized over
the known interconnection points of the two links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.topology.graph import ASGraph

EARTH_RADIUS_KM = 6371.0

#: Approximate coordinates of major interconnection regions, used as hubs
#: for the synthetic embedding (latitude, longitude).
DEFAULT_REGION_HUBS: tuple[tuple[float, float], ...] = (
    (40.7, -74.0),   # New York
    (37.4, -122.1),  # Bay Area
    (50.1, 8.7),     # Frankfurt
    (51.5, -0.1),    # London
    (1.3, 103.8),    # Singapore
    (35.7, 139.7),   # Tokyo
    (-23.5, -46.6),  # São Paulo
    (28.6, 77.2),    # Delhi
)


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees latitude / longitude)."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    inner = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(inner)))


def centroid(points: list[GeoPoint]) -> GeoPoint:
    """Centre of gravity of a set of points (simple coordinate average).

    The paper averages the geolocations of an AS's prefixes to obtain the
    AS centre of gravity; the same flat average is used here.
    """
    if not points:
        raise ValueError("cannot compute the centroid of zero points")
    lat = sum(p.latitude for p in points) / len(points)
    lon = sum(p.longitude for p in points) / len(points)
    return GeoPoint(lat, lon)


@dataclass
class GeographicEmbedding:
    """AS centres of gravity and interconnection-point locations."""

    as_locations: dict[int, GeoPoint] = field(default_factory=dict)
    link_locations: dict[frozenset[int], tuple[GeoPoint, ...]] = field(default_factory=dict)

    def location_of(self, asn: int) -> GeoPoint:
        """Centre of gravity of an AS."""
        try:
            return self.as_locations[asn]
        except KeyError:
            raise KeyError(f"no geographic location known for AS {asn}") from None

    def interconnection_points(self, left: int, right: int) -> tuple[GeoPoint, ...]:
        """Known interconnection points of the link between two ASes.

        Falls back to the midpoint of the two AS centres when no explicit
        interconnection location is known, mirroring how missing entries
        of the CAIDA geographic dataset are typically handled.
        """
        points = self.link_locations.get(frozenset((left, right)))
        if points:
            return points
        a = self.location_of(left)
        b = self.location_of(right)
        return (GeoPoint((a.latitude + b.latitude) / 2.0, (a.longitude + b.longitude) / 2.0),)

    def path_geodistance(self, path: tuple[int, ...]) -> float:
        """Geodistance of an AS-level path, in kilometres.

        For a length-3 path ``(A1, A2, A3)`` this is
        ``d(A1, l12) + d(l12, l23) + d(l23, A3)`` minimized over the
        interconnection points ``l12`` of link (A1, A2) and ``l23`` of
        link (A2, A3), exactly as defined in §VI-B.  Longer paths
        generalize the same construction; single-link paths use the
        distance from source AS to interconnection point to destination
        AS.
        """
        if len(path) < 2:
            return 0.0
        source = self.location_of(path[0])
        destination = self.location_of(path[-1])
        link_point_options = [
            self.interconnection_points(path[i], path[i + 1])
            for i in range(len(path) - 1)
        ]
        # Dynamic programming over link interconnection-point choices:
        # state = (link index, chosen point), value = best partial distance.
        best: dict[int, float] = {}
        for index, point in enumerate(link_point_options[0]):
            best[index] = haversine_km(source, point)
        for link_index in range(1, len(link_point_options)):
            next_best: dict[int, float] = {}
            for next_index, next_point in enumerate(link_point_options[link_index]):
                candidates = [
                    value + haversine_km(link_point_options[link_index - 1][prev_index], next_point)
                    for prev_index, value in best.items()
                ]
                next_best[next_index] = min(candidates)
            best = next_best
        last_points = link_point_options[-1]
        return min(
            value + haversine_km(last_points[index], destination)
            for index, value in best.items()
        )


class SyntheticGeographyGenerator:
    """Places ASes around regional hubs and links at plausible locations."""

    def __init__(
        self,
        region_hubs: tuple[tuple[float, float], ...] = DEFAULT_REGION_HUBS,
        jitter_degrees: float = 8.0,
        seed: int = 2021,
    ) -> None:
        if not region_hubs:
            raise ValueError("at least one region hub is required")
        self.region_hubs = tuple(GeoPoint(lat, lon) for lat, lon in region_hubs)
        self.jitter_degrees = jitter_degrees
        self._rng = np.random.default_rng(seed)

    def embed(self, graph: ASGraph) -> GeographicEmbedding:
        """Assign every AS and every link of ``graph`` a location."""
        embedding = GeographicEmbedding()
        for asn in graph:
            hub = self.region_hubs[int(self._rng.integers(0, len(self.region_hubs)))]
            embedding.as_locations[asn] = self._jitter(hub)
        for link in graph.links:
            a = embedding.as_locations[link.first]
            b = embedding.as_locations[link.second]
            count = int(self._rng.integers(1, 4))
            points = []
            for _ in range(count):
                # Interconnection points lie between the endpoints with
                # some noise, as IXPs typically do.
                mix = float(self._rng.uniform(0.2, 0.8))
                base = GeoPoint(
                    a.latitude + mix * (b.latitude - a.latitude),
                    a.longitude + mix * (b.longitude - a.longitude),
                )
                points.append(self._jitter(base, scale=0.25))
            embedding.link_locations[link.endpoints] = tuple(points)
        return embedding

    def _jitter(self, point: GeoPoint, scale: float = 1.0) -> GeoPoint:
        lat = point.latitude + float(self._rng.normal(0.0, self.jitter_degrees * scale))
        lon = point.longitude + float(self._rng.normal(0.0, self.jitter_degrees * scale))
        lat = max(-85.0, min(85.0, lat))
        lon = ((lon + 180.0) % 360.0) - 180.0
        return GeoPoint(lat, lon)
