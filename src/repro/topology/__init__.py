"""AS-level topology substrate.

Provides the mixed AS graph of §III-A (provider–customer and peering
links), CAIDA ``as-rel`` and GML serialization, a synthetic
Internet-like topology generator, a geographic embedding for the
geodistance analysis, a degree-gravity link-capacity model, and the
canonical example topologies of the paper (Fig. 1 and the BGP
stability gadgets).
"""

from repro.topology.bandwidth import LinkCapacityModel, degree_gravity_capacities
from repro.topology.caida import (
    CaidaFormatError,
    dump_as_rel_lines,
    load_as_rel,
    parse_as_rel_lines,
    save_as_rel,
)
from repro.topology.fixtures import (
    AS_A,
    AS_B,
    AS_C,
    AS_D,
    AS_E,
    AS_F,
    AS_G,
    AS_H,
    AS_I,
    FIGURE1_NAMES,
    Gadget,
    bad_gadget_topology,
    disagree_topology,
    figure1_sibling_gadget,
    figure1_topology,
)
from repro.topology.generator import (
    GeneratedTopology,
    InternetTopologyGenerator,
    TopologyParameters,
    generate_topology,
)
from repro.topology.geography import (
    DEFAULT_REGION_HUBS,
    GeographicEmbedding,
    GeoPoint,
    SyntheticGeographyGenerator,
    centroid,
    haversine_km,
)
from repro.topology.gml import (
    GmlFormatError,
    dump_gml_lines,
    load_gml,
    parse_gml,
    save_gml,
)
from repro.topology.graph import ASGraph, TopologyError
from repro.topology.relationships import Link, Relationship, Role

__all__ = [
    "ASGraph",
    "TopologyError",
    "Link",
    "Relationship",
    "Role",
    "CaidaFormatError",
    "parse_as_rel_lines",
    "load_as_rel",
    "dump_as_rel_lines",
    "save_as_rel",
    "GmlFormatError",
    "parse_gml",
    "load_gml",
    "dump_gml_lines",
    "save_gml",
    "TopologyParameters",
    "InternetTopologyGenerator",
    "GeneratedTopology",
    "generate_topology",
    "GeoPoint",
    "GeographicEmbedding",
    "SyntheticGeographyGenerator",
    "haversine_km",
    "centroid",
    "DEFAULT_REGION_HUBS",
    "LinkCapacityModel",
    "degree_gravity_capacities",
    "Gadget",
    "figure1_topology",
    "figure1_sibling_gadget",
    "disagree_topology",
    "bad_gadget_topology",
    "FIGURE1_NAMES",
    "AS_A",
    "AS_B",
    "AS_C",
    "AS_D",
    "AS_E",
    "AS_F",
    "AS_G",
    "AS_H",
    "AS_I",
]
