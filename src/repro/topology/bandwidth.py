"""Degree-gravity link-capacity model.

The bandwidth analysis of §VI-C infers the bandwidth of inter-AS links
with a degree-gravity model: each link is endowed with a capacity
proportional to the product of the node degrees of its end-points.  The
bandwidth of a path is then the minimum capacity of its links.  This
module implements exactly that model (the same one the paper uses, so no
substitution is needed here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.graph import ASGraph


@dataclass
class LinkCapacityModel:
    """Capacities of inter-AS links, indexed by unordered endpoint pair."""

    capacities: dict[frozenset[int], float] = field(default_factory=dict)

    def capacity(self, left: int, right: int) -> float:
        """Capacity of the link between two ASes (in arbitrary bandwidth units)."""
        try:
            return self.capacities[frozenset((left, right))]
        except KeyError:
            raise KeyError(f"no capacity known for link {left} -- {right}") from None

    def set_capacity(self, left: int, right: int, value: float) -> None:
        """Assign a capacity to a link."""
        if value < 0.0:
            raise ValueError(f"capacity must be non-negative, got {value}")
        self.capacities[frozenset((left, right))] = value

    def path_bandwidth(self, path: tuple[int, ...]) -> float:
        """Bandwidth of an AS-level path: the minimum link capacity on it."""
        if len(path) < 2:
            return float("inf")
        return min(
            self.capacity(path[i], path[i + 1]) for i in range(len(path) - 1)
        )


def degree_gravity_capacities(
    graph: ASGraph,
    *,
    scale: float = 1.0,
    extra_link_endpoints: tuple[tuple[int, int], ...] = (),
) -> LinkCapacityModel:
    """Build a :class:`LinkCapacityModel` from the degree-gravity model.

    ``capacity(u, v) = scale * degree(u) * degree(v)``.

    ``extra_link_endpoints`` lets callers obtain capacities for candidate
    links that are not part of the graph yet (e.g. virtual links created
    by a mutuality-based agreement); those links also follow the
    degree-gravity rule.
    """
    model = LinkCapacityModel()
    for link in graph.links:
        capacity = scale * graph.degree(link.first) * graph.degree(link.second)
        model.set_capacity(link.first, link.second, capacity)
    for left, right in extra_link_endpoints:
        capacity = scale * graph.degree(left) * graph.degree(right)
        model.set_capacity(left, right, capacity)
    return model
