"""Serialization of AS topologies in the CAIDA ``as-rel`` text format.

The paper's path-diversity study (§VI) starts from the CAIDA
AS-relationship dataset.  That dataset is a plain-text file where each
non-comment line is ``<as1>|<as2>|<relationship>`` with relationship
``-1`` for provider→customer (``as1`` is the provider) and ``0`` for a
peering link.  This module reads and writes that format so that real
CAIDA snapshots can be dropped into the reproduction when available;
otherwise the synthetic generator of :mod:`repro.topology.generator` is
used (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship


class CaidaFormatError(Exception):
    """Raised when a CAIDA ``as-rel`` file cannot be parsed."""


def parse_as_rel_lines(lines: Iterable[str]) -> ASGraph:
    """Parse CAIDA ``as-rel`` lines into an :class:`ASGraph`.

    Comment lines start with ``#`` and are ignored.  The serial-2 format
    appends a ``|<source>`` column; any columns beyond the third are
    ignored so that both serial-1 and serial-2 files parse.
    """
    graph = ASGraph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3:
            raise CaidaFormatError(
                f"line {lineno}: expected at least 3 '|'-separated fields, got {line!r}"
            )
        try:
            first = int(fields[0])
            second = int(fields[1])
            code = int(fields[2])
        except ValueError as exc:
            raise CaidaFormatError(f"line {lineno}: non-integer field in {line!r}") from exc
        try:
            relationship = Relationship.from_caida(code)
        except ValueError as exc:
            raise CaidaFormatError(f"line {lineno}: {exc}") from exc
        if relationship is Relationship.PROVIDER_TO_CUSTOMER:
            graph.add_provider_customer(first, second)
        else:
            graph.add_peering(first, second)
    return graph


def load_as_rel(path: str | Path) -> ASGraph:
    """Load an :class:`ASGraph` from a CAIDA ``as-rel`` file."""
    with open(path, encoding="utf-8") as handle:
        return parse_as_rel_lines(handle)


def dump_as_rel_lines(graph: ASGraph) -> list[str]:
    """Serialize a topology to CAIDA ``as-rel`` lines (without newlines)."""
    lines = ["# repro as-rel export", "# <provider|peer>|<customer|peer>|<-1|0>"]
    for link in graph.links:
        lines.append(f"{link.first}|{link.second}|{link.relationship.to_caida()}")
    return lines


def save_as_rel(graph: ASGraph, path: str | Path) -> None:
    """Write a topology to a CAIDA ``as-rel`` file."""
    content = "\n".join(dump_as_rel_lines(graph)) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
