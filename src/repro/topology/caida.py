"""Serialization of AS topologies in the CAIDA ``as-rel`` text format.

The paper's path-diversity study (§VI) starts from the CAIDA
AS-relationship dataset.  That dataset is a plain-text file where each
non-comment line is ``<as1>|<as2>|<relationship>`` with relationship
``-1`` for provider→customer (``as1`` is the provider) and ``0`` for a
peering link.  This module reads and writes that format so that real
CAIDA snapshots can be dropped into the reproduction when available;
otherwise the synthetic generator of :mod:`repro.topology.generator` is
used (see DESIGN.md for the substitution rationale).

Two ingestion paths share :func:`iter_as_rel_records`, the line-level
validator:

- :func:`parse_as_rel_lines` builds a mutable :class:`ASGraph` — the
  reference path, right for paper-scale files and anything that will be
  edited afterwards;
- :func:`repro.core.streaming.compile_as_rel_lines` compiles the same
  records straight into :class:`~repro.core.compiled.CompiledTopology`
  CSR arrays without materializing the dict-of-sets graph — the
  internet-scale path for full CAIDA snapshots (~75k ASes, ~400k
  links).

Both reject malformed input with line-numbered
:class:`CaidaFormatError`\\ s: non-integer fields, unknown relationship
codes, self-loop links, and conflicting duplicate links (the same AS
pair appearing again with a different relationship or provider
direction).  Exact duplicate lines are tolerated and deduplicated, as
real serial-2 snapshots occasionally contain them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.topology.graph import ASGraph, TopologyError
from repro.topology.relationships import Relationship


class CaidaFormatError(Exception):
    """Raised when a CAIDA ``as-rel`` file cannot be parsed."""


def iter_as_rel_records(lines: Iterable[str]) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(lineno, first, second, code)`` per data line.

    Comment lines start with ``#`` and are skipped, as are blank lines.
    The serial-2 format appends a ``|<source>`` column; any columns
    beyond the third are ignored so that both serial-1 and serial-2
    files parse.  Field-level problems — too few columns, non-integer
    fields, unknown relationship codes, self-loops — raise
    :class:`CaidaFormatError` with the 1-based line number.

    Cross-line validation (conflicting duplicate links) is the
    consumer's job: :func:`parse_as_rel_lines` detects conflicts through
    :class:`ASGraph`, the streaming compiler detects them on its sorted
    link arrays — both report the offending line numbers.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3:
            raise CaidaFormatError(
                f"line {lineno}: expected at least 3 '|'-separated fields, got {line!r}"
            )
        try:
            first = int(fields[0])
            second = int(fields[1])
            code = int(fields[2])
        except ValueError as exc:
            raise CaidaFormatError(f"line {lineno}: non-integer field in {line!r}") from exc
        if code not in (-1, 0):
            raise CaidaFormatError(
                f"line {lineno}: unknown CAIDA relationship code: {code!r}"
            )
        if first == second:
            raise CaidaFormatError(
                f"line {lineno}: self-loop link on AS {first} in {line!r}"
            )
        yield lineno, first, second, code


def parse_as_rel_lines(lines: Iterable[str]) -> ASGraph:
    """Parse CAIDA ``as-rel`` lines into an :class:`ASGraph`.

    Self-loops and conflicting duplicate links (the same AS pair with a
    different relationship or provider direction) raise line-numbered
    :class:`CaidaFormatError`\\ s; identical duplicate lines are
    deduplicated silently.
    """
    graph = ASGraph()
    first_seen: dict[frozenset[int], int] = {}
    for lineno, first, second, code in iter_as_rel_records(lines):
        relationship = Relationship.from_caida(code)
        try:
            if relationship is Relationship.PROVIDER_TO_CUSTOMER:
                graph.add_provider_customer(first, second)
            else:
                graph.add_peering(first, second)
        except TopologyError as exc:
            earlier = first_seen.get(frozenset((first, second)))
            raise CaidaFormatError(
                f"line {lineno}: conflicting duplicate link {first}|{second}|{code}"
                + (f" (first declared on line {earlier})" if earlier is not None else "")
                + f": {exc}"
            ) from exc
        first_seen.setdefault(frozenset((first, second)), lineno)
    return graph


def load_as_rel(path: str | Path) -> ASGraph:
    """Load an :class:`ASGraph` from a CAIDA ``as-rel`` file."""
    with open(path, encoding="utf-8") as handle:
        return parse_as_rel_lines(handle)


def dump_as_rel_lines(graph: ASGraph) -> list[str]:
    """Serialize a topology to CAIDA ``as-rel`` lines (without newlines)."""
    lines = ["# repro as-rel export", "# <provider|peer>|<customer|peer>|<-1|0>"]
    for link in graph.links:
        lines.append(f"{link.first}|{link.second}|{link.relationship.to_caida()}")
    return lines


def save_as_rel(graph: ASGraph, path: str | Path) -> None:
    """Write a topology to a CAIDA ``as-rel`` file."""
    content = "\n".join(dump_as_rel_lines(graph)) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
