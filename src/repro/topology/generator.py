"""Synthetic Internet-like AS topology generator.

The paper runs its path-diversity study on the CAIDA AS-relationship
dataset (~70k ASes).  That dataset is not available offline, so this
module generates topologies with the structural properties the study
depends on:

- a small clique of tier-1 ASes peering with each other,
- a layer of large transit providers (tier-2) that buy transit from
  several tier-1s and peer densely among themselves,
- a layer of regional transit / access providers (tier-3) multihomed to
  tier-2 providers with sparser peering,
- a large fringe of stub ASes multihomed to tier-2/tier-3 providers,
- provider selection by preferential attachment, which yields the
  heavy-tailed degree distribution of the real AS graph.

Absolute path counts are smaller than on the real Internet, but the
GRC-vs-MA comparisons in §VI only need the relationship structure
(valley-free reachability, peering density, provider fan-out), which is
reproduced here.  A real CAIDA snapshot can be substituted at any time
through :func:`repro.topology.caida.load_as_rel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class TopologyParameters:
    """Size and density knobs of the synthetic topology.

    The defaults generate a topology of roughly one thousand ASes, which
    keeps the full §VI analysis in the range of seconds on a laptop while
    preserving the hierarchical structure of the AS-level Internet.
    """

    num_tier1: int = 8
    num_tier2: int = 60
    num_tier3: int = 200
    num_stubs: int = 800
    tier2_providers: tuple[int, int] = (1, 3)
    tier3_providers: tuple[int, int] = (1, 3)
    stub_providers: tuple[int, int] = (1, 2)
    # Peering probabilities.  The real AS graph has considerably more
    # peering than transit links (IXP peering is widespread down to stub
    # ASes), and the §VI analyses depend on that density: mutuality-based
    # agreements are concluded over peering links.
    tier2_peering_probability: float = 0.35
    tier3_peering_probability: float = 0.08
    stub_peering_probability: float = 0.010
    cross_tier_peering_probability: float = 0.04
    tier2_stub_peering_probability: float = 0.008
    tier3_stub_peering_probability: float = 0.015
    # Internet-exchange points: ASes below tier-1 join a few IXPs and peer
    # densely (route-server style) with other members.  This is what gives
    # the real AS graph its very high peering density and what makes
    # mutuality-based agreements reach so many destinations in §VI.
    num_ixps: int = 5
    ixp_membership_probability: float = 0.6
    ixp_peering_probability: float = 0.8
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.num_tier1 < 1:
            raise ValueError("at least one tier-1 AS is required")
        for name in ("tier2_providers", "tier3_providers", "stub_providers"):
            low, high = getattr(self, name)
            if low < 1 or high < low:
                raise ValueError(f"invalid provider range for {name}: ({low}, {high})")
        for name in (
            "tier2_peering_probability",
            "tier3_peering_probability",
            "stub_peering_probability",
            "cross_tier_peering_probability",
            "tier2_stub_peering_probability",
            "tier3_stub_peering_probability",
            "ixp_membership_probability",
            "ixp_peering_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.num_ixps < 0:
            raise ValueError("the number of IXPs cannot be negative")


@dataclass
class GeneratedTopology:
    """Result of a generator run: the graph plus the tier of every AS."""

    graph: ASGraph
    tiers: dict[int, int] = field(default_factory=dict)

    def ases_in_tier(self, tier: int) -> tuple[int, ...]:
        """All ASes assigned to the given tier (1 = top, 4 = stubs)."""
        return tuple(sorted(asn for asn, t in self.tiers.items() if t == tier))


class InternetTopologyGenerator:
    """Generates hierarchical, power-law AS topologies.

    Example
    -------
    >>> generator = InternetTopologyGenerator(TopologyParameters(seed=1))
    >>> topology = generator.generate()
    >>> len(topology.graph) > 0
    True
    """

    def __init__(self, parameters: TopologyParameters | None = None) -> None:
        self.parameters = parameters or TopologyParameters()
        self._rng = np.random.default_rng(self.parameters.seed)

    def generate(self) -> GeneratedTopology:
        """Generate a topology according to the configured parameters."""
        params = self.parameters
        graph = ASGraph()
        tiers: dict[int, int] = {}
        next_asn = 1

        tier1 = list(range(next_asn, next_asn + params.num_tier1))
        next_asn += params.num_tier1
        tier2 = list(range(next_asn, next_asn + params.num_tier2))
        next_asn += params.num_tier2
        tier3 = list(range(next_asn, next_asn + params.num_tier3))
        next_asn += params.num_tier3
        stubs = list(range(next_asn, next_asn + params.num_stubs))

        for asn in tier1:
            graph.add_as(asn)
            tiers[asn] = 1
        for asn in tier2:
            graph.add_as(asn)
            tiers[asn] = 2
        for asn in tier3:
            graph.add_as(asn)
            tiers[asn] = 3
        for asn in stubs:
            graph.add_as(asn)
            tiers[asn] = 4

        self._build_tier1_clique(graph, tier1)
        self._attach_customers(graph, tier2, tier1, params.tier2_providers)
        self._attach_customers(graph, tier3, tier2, params.tier3_providers)
        self._attach_customers(graph, stubs, tier2 + tier3, params.stub_providers)
        self._add_peering(graph, tier2, params.tier2_peering_probability)
        self._add_peering(graph, tier3, params.tier3_peering_probability)
        self._add_peering(graph, stubs, params.stub_peering_probability)
        self._add_cross_tier_peering(
            graph, tier2, tier3, params.cross_tier_peering_probability
        )
        self._add_cross_tier_peering(
            graph, tier2, stubs, params.tier2_stub_peering_probability
        )
        self._add_cross_tier_peering(
            graph, tier3, stubs, params.tier3_stub_peering_probability
        )
        self._add_ixp_peering(graph, tier2 + tier3 + stubs)

        graph.validate()
        return GeneratedTopology(graph=graph, tiers=tiers)

    # ------------------------------------------------------------------
    # Internal construction steps
    # ------------------------------------------------------------------
    def _build_tier1_clique(self, graph: ASGraph, tier1: list[int]) -> None:
        for index, left in enumerate(tier1):
            for right in tier1[index + 1 :]:
                graph.add_peering(left, right)

    def _attach_customers(
        self,
        graph: ASGraph,
        customers: list[int],
        candidate_providers: list[int],
        provider_range: tuple[int, int],
    ) -> None:
        """Attach each customer to providers chosen by preferential attachment."""
        low, high = provider_range
        # Preferential attachment: probability proportional to 1 + customer degree,
        # which concentrates customers on a few large providers (power-law tail).
        for customer in customers:
            count = int(self._rng.integers(low, high + 1))
            count = min(count, len(candidate_providers))
            weights = np.array(
                [1.0 + len(graph.customers(p)) for p in candidate_providers]
            )
            weights = weights / weights.sum()
            chosen = self._rng.choice(
                candidate_providers, size=count, replace=False, p=weights
            )
            for provider in chosen:
                graph.add_provider_customer(int(provider), customer)

    def _add_peering(self, graph: ASGraph, ases: list[int], probability: float) -> None:
        if probability <= 0.0 or len(ases) < 2:
            return
        ases_array = np.array(ases)
        n = len(ases_array)
        # Draw pairs via a Bernoulli mask over the upper triangle, vectorized.
        mask = self._rng.random((n, n)) < probability
        upper = np.triu(mask, k=1)
        for i, j in zip(*np.nonzero(upper)):
            left = int(ases_array[i])
            right = int(ases_array[j])
            if not graph.has_link(left, right):
                graph.add_peering(left, right)

    def _add_ixp_peering(self, graph: ASGraph, candidates: list[int]) -> None:
        """Join ASes to IXPs and peer the members of each IXP densely."""
        params = self.parameters
        if params.num_ixps == 0 or params.ixp_membership_probability == 0.0:
            return
        members: dict[int, list[int]] = {ixp: [] for ixp in range(params.num_ixps)}
        for asn in candidates:
            if self._rng.random() >= params.ixp_membership_probability:
                continue
            joined = int(self._rng.integers(0, params.num_ixps))
            members[joined].append(asn)
            # A minority of ASes are present at a second exchange.
            if self._rng.random() < 0.25 and params.num_ixps > 1:
                second = int(self._rng.integers(0, params.num_ixps))
                if second != joined:
                    members[second].append(asn)
        for ixp_members in members.values():
            self._add_peering_among(graph, ixp_members, params.ixp_peering_probability)

    def _add_peering_among(
        self, graph: ASGraph, ases: list[int], probability: float
    ) -> None:
        """Peer pairs of the given ASes with the given probability."""
        for index, left in enumerate(ases):
            for right in ases[index + 1 :]:
                if left == right or graph.has_link(left, right):
                    continue
                if self._rng.random() < probability:
                    graph.add_peering(left, right)

    def _add_cross_tier_peering(
        self,
        graph: ASGraph,
        upper_tier: list[int],
        lower_tier: list[int],
        probability: float,
    ) -> None:
        if probability <= 0.0 or not upper_tier or not lower_tier:
            return
        mask = self._rng.random((len(upper_tier), len(lower_tier))) < probability
        for i, j in zip(*np.nonzero(mask)):
            left = upper_tier[int(i)]
            right = lower_tier[int(j)]
            if not graph.has_link(left, right):
                graph.add_peering(left, right)


def generate_topology(
    *,
    num_tier1: int = 8,
    num_tier2: int = 60,
    num_tier3: int = 200,
    num_stubs: int = 800,
    seed: int = 2021,
    **overrides: object,
) -> GeneratedTopology:
    """Convenience wrapper around :class:`InternetTopologyGenerator`."""
    params = TopologyParameters(
        num_tier1=num_tier1,
        num_tier2=num_tier2,
        num_tier3=num_tier3,
        num_stubs=num_stubs,
        seed=seed,
        **overrides,  # type: ignore[arg-type]
    )
    return InternetTopologyGenerator(params).generate()
