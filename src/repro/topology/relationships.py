"""Business relationships between autonomous systems.

The paper models the Internet as a mixed graph ``G = (A, L_peer, L_pc)``
(§III-A): undirected edges are settlement-free peering links, directed
edges are provider–customer links where the provider charges the
customer.  This module defines the relationship vocabulary shared by the
whole library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Relationship(enum.Enum):
    """Business relationship of a link, seen from the first AS.

    ``PROVIDER_TO_CUSTOMER`` means the first AS is the provider of the
    second (the CAIDA ``-1`` relationship); ``PEER_TO_PEER`` is a
    settlement-free peering link (the CAIDA ``0`` relationship).
    """

    PROVIDER_TO_CUSTOMER = -1
    PEER_TO_PEER = 0

    @classmethod
    def from_caida(cls, code: int) -> "Relationship":
        """Translate a CAIDA ``as-rel`` relationship code."""
        if code == -1:
            return cls.PROVIDER_TO_CUSTOMER
        if code == 0:
            return cls.PEER_TO_PEER
        raise ValueError(f"unknown CAIDA relationship code: {code!r}")

    def to_caida(self) -> int:
        """Return the CAIDA ``as-rel`` relationship code."""
        return self.value


class Role(enum.Enum):
    """Role of a *neighbor* relative to a given AS.

    For an AS ``X``, every neighbor belongs to exactly one of the three
    neighbor sets of the paper: the provider set ``π(X)``, the peer set
    ``ε(X)``, or the customer set ``γ(X)``.
    """

    PROVIDER = "provider"
    PEER = "peer"
    CUSTOMER = "customer"

    @property
    def opposite(self) -> "Role":
        """Role of the given AS as seen from that neighbor."""
        if self is Role.PROVIDER:
            return Role.CUSTOMER
        if self is Role.CUSTOMER:
            return Role.PROVIDER
        return Role.PEER


@dataclass(frozen=True)
class Link:
    """An inter-AS link with its business relationship.

    Provider–customer links are stored with the provider first so that a
    link compares equal regardless of the direction it was added in.
    Peering links are stored with the numerically/lexicographically
    smaller AS first for the same reason.
    """

    first: int
    second: int
    relationship: Relationship

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ValueError(f"self-loop link on AS {self.first}")
        if self.relationship is Relationship.PEER_TO_PEER and self.second < self.first:
            # Normalize peering links so (a, b) == (b, a).
            low, high = self.second, self.first
            object.__setattr__(self, "first", low)
            object.__setattr__(self, "second", high)

    @property
    def endpoints(self) -> frozenset[int]:
        """The two ASes joined by this link, as an unordered set."""
        return frozenset((self.first, self.second))

    @property
    def provider(self) -> int:
        """Provider AS of a provider–customer link."""
        if self.relationship is not Relationship.PROVIDER_TO_CUSTOMER:
            raise ValueError("peering links have no provider")
        return self.first

    @property
    def customer(self) -> int:
        """Customer AS of a provider–customer link."""
        if self.relationship is not Relationship.PROVIDER_TO_CUSTOMER:
            raise ValueError("peering links have no customer")
        return self.second

    def other(self, asn: int) -> int:
        """Return the endpoint that is not ``asn``."""
        if asn == self.first:
            return self.second
        if asn == self.second:
            return self.first
        raise ValueError(f"AS {asn} is not an endpoint of {self}")

    def role_of(self, asn: int) -> Role:
        """Role that ``asn`` plays on this link (provider/customer/peer)."""
        if self.relationship is Relationship.PEER_TO_PEER:
            if asn not in (self.first, self.second):
                raise ValueError(f"AS {asn} is not an endpoint of {self}")
            return Role.PEER
        if asn == self.first:
            return Role.PROVIDER
        if asn == self.second:
            return Role.CUSTOMER
        raise ValueError(f"AS {asn} is not an endpoint of {self}")

    def __str__(self) -> str:
        if self.relationship is Relationship.PEER_TO_PEER:
            return f"{self.first} -- {self.second} (p2p)"
        return f"{self.first} -> {self.second} (p2c)"
