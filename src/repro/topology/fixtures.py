"""Canonical example topologies used throughout the paper.

- :func:`figure1_topology` — the nine-AS example of Fig. 1, which is used
  in §II (stability discussion) and §III (agreement examples).
- :func:`disagree_topology` / :func:`bad_gadget_topology` — the classical
  BGP stability gadgets referenced in §II (Griffin & Wilfong).  These are
  returned together with the route preferences that trigger the
  non-deterministic (DISAGREE) or oscillating (BAD GADGET) behaviour so
  the routing substrate can reproduce the stability argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.graph import ASGraph

# AS numbers of the Fig. 1 topology.  Letters map to numbers A=1 ... I=9.
AS_A, AS_B, AS_C, AS_D, AS_E, AS_F, AS_G, AS_H, AS_I = range(1, 10)

#: Human-readable names of the Fig. 1 ASes.
FIGURE1_NAMES: dict[int, str] = {
    AS_A: "A",
    AS_B: "B",
    AS_C: "C",
    AS_D: "D",
    AS_E: "E",
    AS_F: "F",
    AS_G: "G",
    AS_H: "H",
    AS_I: "I",
}


def figure1_topology() -> ASGraph:
    """The example AS topology of Fig. 1.

    Relationships (provider → customer unless stated otherwise):

    - A, B are tier-1-like providers peering with each other.
    - A → D, A → C; B → E; B → F and C, F are involved in peerings.
    - C -- D peering, D -- E peering, E -- F peering, A -- B peering.
    - D → H, E → I, F → G provider–customer links to stub ASes.

    The exact link set reproduces the figure: peering links (dashed in
    the figure) are A–B, C–D, D–E, E–F; provider–customer links are
    A→C, A→D, B→E, B→F, C→G (via C's position), D→H, E→I.

    The figure shows C and F as peers of D and E respectively with their
    own providers A and B; G is a customer reachable below, H and I are
    customers of D and E.
    """
    graph = ASGraph()
    # Top-level peering between the two providers.
    graph.add_peering(AS_A, AS_B)
    # Provider–customer links from the top providers.
    graph.add_provider_customer(AS_A, AS_C)
    graph.add_provider_customer(AS_A, AS_D)
    graph.add_provider_customer(AS_B, AS_E)
    graph.add_provider_customer(AS_B, AS_F)
    # Middle-tier peering links (dashed in Fig. 1).
    graph.add_peering(AS_C, AS_D)
    graph.add_peering(AS_D, AS_E)
    graph.add_peering(AS_E, AS_F)
    # Customers of the middle tier.
    graph.add_provider_customer(AS_C, AS_G)
    graph.add_provider_customer(AS_D, AS_H)
    graph.add_provider_customer(AS_E, AS_I)
    graph.validate()
    return graph


@dataclass(frozen=True)
class Gadget:
    """A topology together with the per-AS route preferences that make it
    interesting for BGP convergence analysis.

    ``preferences`` maps an AS to an ordered list of AS-level paths to the
    destination, most preferred first.  Any path not listed is less
    preferred than all listed paths; paths are tuples starting at the AS
    itself and ending at the destination.
    """

    graph: ASGraph
    destination: int
    preferences: dict[int, tuple[tuple[int, ...], ...]]
    name: str


def disagree_topology() -> Gadget:
    """The classical DISAGREE gadget (§II).

    Two ASes (1 and 2) both prefer to reach the destination 0 through
    each other rather than directly.  BGP converges, but to one of two
    stable states depending on message timing — the non-determinism the
    paper calls a "BGP wedgie".
    """
    graph = ASGraph()
    destination = 0
    graph.add_provider_customer(1, 0)
    graph.add_provider_customer(2, 0)
    graph.add_peering(1, 2)
    preferences = {
        1: ((1, 2, 0), (1, 0)),
        2: ((2, 1, 0), (2, 0)),
    }
    return Gadget(graph=graph, destination=destination, preferences=preferences, name="DISAGREE")


def bad_gadget_topology() -> Gadget:
    """The classical BAD GADGET (§II).

    Three ASes (1, 2, 3) around destination 0, each preferring the route
    through its clockwise neighbor over its direct route.  No stable
    routing exists and BGP oscillates forever.
    """
    graph = ASGraph()
    destination = 0
    for asn in (1, 2, 3):
        graph.add_provider_customer(asn, 0)
    graph.add_peering(1, 2)
    graph.add_peering(2, 3)
    graph.add_peering(3, 1)
    preferences = {
        1: ((1, 2, 0), (1, 0)),
        2: ((2, 3, 0), (2, 0)),
        3: ((3, 1, 0), (3, 0)),
    }
    return Gadget(graph=graph, destination=destination, preferences=preferences, name="BAD GADGET")


def figure1_sibling_gadget() -> Gadget:
    """GRC-violating preferences on the Fig. 1 topology (§II).

    ASes D and E forward routes from their providers A and B to each
    other and prefer routes learned from the peer — the "slightly
    extended instance of DISAGREE" discussed in the paper, for a
    destination inside A.
    """
    graph = figure1_topology()
    destination = AS_A
    preferences = {
        AS_D: ((AS_D, AS_E, AS_B, AS_A), (AS_D, AS_A)),
        AS_E: ((AS_E, AS_D, AS_A), (AS_E, AS_B, AS_A)),
    }
    return Gadget(
        graph=graph,
        destination=destination,
        preferences=preferences,
        name="FIGURE1-DISAGREE",
    )
