"""GML serialization of AS topologies.

GML (Graph Modelling Language) is the interchange format of the related
internet-topology tooling (monerosim ships its internet snapshots as
``.gml`` files; networkx and igraph both read it).  This module maps the
mixed AS graph onto plain GML without external dependencies:

- every AS is a ``node`` with ``id``/``label`` set to its ASN,
- every link is an ``edge`` whose ``relationship`` attribute is
  ``"p2c"`` (provider→customer, the *source* is the provider) or
  ``"p2p"`` (settlement-free peering).

The writer emits nodes in sorted-ASN order and edges in the graph's
deterministic link order, so identical topology content serializes to
identical bytes.  The reader is deliberately tolerant of foreign files:
it accepts any key order, ignores unknown attributes (``graphics``,
``weight``, …), takes the ASN from ``label`` when it parses as an
integer and from ``id`` otherwise, and treats edges without a
``relationship`` attribute as peering links — the common case in
generic GML exports, which carry no business relationships at all.
Structural problems (missing endpoints, unknown node references,
self-loops, conflicting duplicate links) raise :class:`GmlFormatError`.
"""

from __future__ import annotations

import re
from collections.abc import Iterator
from pathlib import Path

from repro.topology.graph import ASGraph, TopologyError
from repro.topology.relationships import Relationship


class GmlFormatError(Exception):
    """Raised when a GML topology file cannot be parsed."""


_TOKEN = re.compile(r'"[^"]*"|\[|\]|[^\s\[\]]+')


def _tokenize(text: str) -> Iterator[str]:
    for match in _TOKEN.finditer(text):
        token = match.group(0)
        if not token.startswith("#"):
            yield token


def _parse_block(tokens: Iterator[str]) -> dict[str, object]:
    """Parse one ``[ … ]`` block into a key→value dict.

    Repeated keys (``node``, ``edge``) collect into lists.  Values are
    nested dicts, unquoted scalars, or quoted strings.
    """
    block: dict[str, object] = {}
    for key in tokens:
        if key == "]":
            return block
        if key == "[":
            raise GmlFormatError("unexpected '[' without a key")
        try:
            value_token = next(tokens)
        except StopIteration:
            raise GmlFormatError(f"key {key!r} has no value") from None
        value: object
        if value_token == "[":
            value = _parse_block(tokens)
        elif value_token.startswith('"'):
            value = value_token[1:-1]
        else:
            value = value_token
        existing = block.get(key)
        if existing is None:
            block[key] = value
        elif isinstance(existing, list):
            existing.append(value)
        else:
            block[key] = [existing, value]
    return block


def _as_list(value: object) -> list[object]:
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


def _as_int(value: object, what: str) -> int:
    try:
        return int(str(value))
    except (TypeError, ValueError):
        raise GmlFormatError(f"{what} is not an integer: {value!r}") from None


def parse_gml(text: str) -> ASGraph:
    """Parse GML text into an :class:`ASGraph`."""
    tokens = _tokenize(text)
    top: dict[str, object] = {}
    for token in tokens:
        try:
            value = next(tokens)
        except StopIteration:
            raise GmlFormatError(f"key {token!r} has no value") from None
        if value == "[":
            top[token] = _parse_block(tokens)
        else:
            top[token] = value
    graph_block = top.get("graph")
    if not isinstance(graph_block, dict):
        raise GmlFormatError("no 'graph [ … ]' block found")

    graph = ASGraph()
    id_to_asn: dict[int, int] = {}
    for raw in _as_list(graph_block.get("node")):
        if not isinstance(raw, dict):
            raise GmlFormatError(f"malformed node entry: {raw!r}")
        if "id" not in raw:
            raise GmlFormatError(f"node without an id: {raw!r}")
        node_id = _as_int(raw["id"], "node id")
        label = raw.get("label")
        if label is not None and re.fullmatch(r"-?\d+", str(label).strip()):
            asn = int(str(label).strip())
        else:
            asn = node_id
        if node_id in id_to_asn:
            raise GmlFormatError(f"duplicate node id {node_id}")
        id_to_asn[node_id] = asn
        graph.add_as(asn)

    for raw in _as_list(graph_block.get("edge")):
        if not isinstance(raw, dict):
            raise GmlFormatError(f"malformed edge entry: {raw!r}")
        if "source" not in raw or "target" not in raw:
            raise GmlFormatError(f"edge without source/target: {raw!r}")
        source_id = _as_int(raw["source"], "edge source")
        target_id = _as_int(raw["target"], "edge target")
        try:
            source = id_to_asn[source_id]
            target = id_to_asn[target_id]
        except KeyError as exc:
            raise GmlFormatError(
                f"edge references unknown node id {exc.args[0]}"
            ) from None
        relationship = str(raw.get("relationship", "p2p")).lower()
        try:
            if relationship in ("p2c", "provider", "transit"):
                graph.add_provider_customer(source, target)
            elif relationship in ("p2p", "peer", "peering"):
                graph.add_peering(source, target)
            else:
                raise GmlFormatError(
                    f"unknown edge relationship {relationship!r} "
                    f"on edge {source}->{target}"
                )
        except (TopologyError, ValueError) as exc:
            raise GmlFormatError(
                f"invalid edge {source}->{target} ({relationship}): {exc}"
            ) from exc
    return graph


def load_gml(path: str | Path) -> ASGraph:
    """Load an :class:`ASGraph` from a GML file."""
    return parse_gml(Path(path).read_text(encoding="utf-8"))


def dump_gml_lines(graph: ASGraph) -> list[str]:
    """Serialize a topology to GML lines (without newlines)."""
    lines = [
        "graph [",
        "  comment \"repro AS topology export\"",
        "  directed 0",
    ]
    for asn in sorted(graph.ases):
        lines.extend(
            ["  node [", f"    id {asn}", f"    label \"{asn}\"", "  ]"]
        )
    for link in graph.links:
        if link.relationship is Relationship.PROVIDER_TO_CUSTOMER:
            source, target, kind = link.provider, link.customer, "p2c"
        else:
            source, target, kind = link.first, link.second, "p2p"
        lines.extend(
            [
                "  edge [",
                f"    source {source}",
                f"    target {target}",
                f"    relationship \"{kind}\"",
                "  ]",
            ]
        )
    lines.append("]")
    return lines


def save_gml(graph: ASGraph, path: str | Path) -> None:
    """Write a topology to a GML file."""
    content = "\n".join(dump_gml_lines(graph)) + "\n"
    Path(path).write_text(content, encoding="utf-8")
