"""The AS-level topology: a mixed graph of peering and transit links.

This is the central substrate of the reproduction.  It corresponds to the
mixed graph ``G = (A, L_peer, L_pc)`` of §III-A: nodes are ASes,
undirected edges are settlement-free peering links, directed edges are
provider–customer links.  Every AS ``X`` decomposes its neighborhood into
the provider set ``π(X)``, the peer set ``ε(X)``, and the customer set
``γ(X)``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator

import networkx as nx

from repro.topology.relationships import Link, Relationship, Role


class TopologyError(Exception):
    """Raised for inconsistent topology operations."""


class ASGraph:
    """Mixed AS-level graph with provider–customer and peering links.

    The graph offers O(1) access to the provider / peer / customer sets
    of every AS, link lookup by endpoint pair, and export to a
    :mod:`networkx` multigraph for generic graph algorithms.

    Example
    -------
    >>> g = ASGraph()
    >>> g.add_provider_customer(1, 2)
    >>> g.add_peering(2, 3)
    >>> g.providers(2)
    frozenset({1})
    >>> g.peers(2)
    frozenset({3})
    """

    def __init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._links: dict[frozenset[int], Link] = {}
        self._mutations = 0
        self._fingerprint: tuple[int, str] | None = None

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped on every structural change.

        :mod:`repro.core` compiles this graph into immutable array form
        and uses the counter to detect staleness: a compiled view built
        at mutation count ``m`` is valid exactly while the graph's
        counter still reads ``m``.
        """
        return self._mutations

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_as(self, asn: int) -> None:
        """Add an AS without any links (idempotent)."""
        if asn not in self._providers:
            self._providers[asn] = set()
            self._peers[asn] = set()
            self._customers[asn] = set()
            self._mutations += 1

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Add a transit link where ``provider`` sells transit to ``customer``."""
        self._add_link(Link(provider, customer, Relationship.PROVIDER_TO_CUSTOMER))

    def add_peering(self, left: int, right: int) -> None:
        """Add a settlement-free peering link between two ASes."""
        self._add_link(Link(left, right, Relationship.PEER_TO_PEER))

    def add_link(self, link: Link) -> None:
        """Add a pre-built :class:`Link`."""
        self._add_link(link)

    def _add_link(self, link: Link) -> None:
        key = link.endpoints
        existing = self._links.get(key)
        if existing is not None:
            if existing == link:
                return
            raise TopologyError(
                f"conflicting relationship between {link.first} and {link.second}: "
                f"existing {existing}, new {link}"
            )
        self.add_as(link.first)
        self.add_as(link.second)
        self._links[key] = link
        self._mutations += 1
        if link.relationship is Relationship.PROVIDER_TO_CUSTOMER:
            self._customers[link.provider].add(link.customer)
            self._providers[link.customer].add(link.provider)
        else:
            self._peers[link.first].add(link.second)
            self._peers[link.second].add(link.first)

    def remove_link(self, left: int, right: int) -> None:
        """Remove the link between two ASes, if present."""
        key = frozenset((left, right))
        link = self._links.pop(key, None)
        if link is None:
            raise TopologyError(f"no link between {left} and {right}")
        self._mutations += 1
        if link.relationship is Relationship.PROVIDER_TO_CUSTOMER:
            self._customers[link.provider].discard(link.customer)
            self._providers[link.customer].discard(link.provider)
        else:
            self._peers[link.first].discard(link.second)
            self._peers[link.second].discard(link.first)

    def content_fingerprint(self) -> str:
        """Stable hex digest of the graph's structural content.

        Two graphs with the same ASes, links, and relationships have the
        same fingerprint regardless of insertion order.  The digest is
        memoized under the same contract :mod:`repro.core` uses for its
        compiled views: the cached value is valid exactly while
        :attr:`mutation_count` is unchanged, and the first call after any
        mutation re-hashes.  Sweep caches use it to stamp results with
        the exact topology they were computed from.
        """
        if self._fingerprint is not None and self._fingerprint[0] == self._mutations:
            return self._fingerprint[1]
        digest = hashlib.sha256()
        for asn in sorted(self._providers):
            digest.update(f"A {asn}\n".encode())
        for key in sorted(self._links, key=sorted):
            link = self._links[key]
            digest.update(
                f"L {link.first} {link.second} {link.relationship.value}\n".encode()
            )
        value = digest.hexdigest()
        self._fingerprint = (self._mutations, value)
        return value

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ases(self) -> frozenset[int]:
        """All AS numbers in the graph."""
        return frozenset(self._providers)

    @property
    def links(self) -> tuple[Link, ...]:
        """All links in the graph (deterministic order)."""
        return tuple(self._links[key] for key in sorted(self._links, key=sorted))

    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._providers))

    def num_links(self) -> int:
        """Total number of links (transit + peering)."""
        return len(self._links)

    def num_peering_links(self) -> int:
        """Number of peering links."""
        return sum(
            1
            for link in self._links.values()
            if link.relationship is Relationship.PEER_TO_PEER
        )

    def num_transit_links(self) -> int:
        """Number of provider–customer links."""
        return len(self._links) - self.num_peering_links()

    def providers(self, asn: int) -> frozenset[int]:
        """The provider set ``π(X)`` of an AS."""
        self._require(asn)
        return frozenset(self._providers[asn])

    def peers(self, asn: int) -> frozenset[int]:
        """The peer set ``ε(X)`` of an AS."""
        self._require(asn)
        return frozenset(self._peers[asn])

    def customers(self, asn: int) -> frozenset[int]:
        """The customer set ``γ(X)`` of an AS."""
        self._require(asn)
        return frozenset(self._customers[asn])

    def neighbors(self, asn: int) -> frozenset[int]:
        """All neighbors of an AS regardless of relationship."""
        self._require(asn)
        return frozenset(
            self._providers[asn] | self._peers[asn] | self._customers[asn]
        )

    def degree(self, asn: int) -> int:
        """Total number of neighbors of an AS."""
        return len(self.neighbors(asn))

    def has_link(self, left: int, right: int) -> bool:
        """Whether any link exists between two ASes."""
        return frozenset((left, right)) in self._links

    def link(self, left: int, right: int) -> Link:
        """Return the link between two ASes."""
        key = frozenset((left, right))
        try:
            return self._links[key]
        except KeyError:
            raise TopologyError(f"no link between {left} and {right}") from None

    def relationship(self, left: int, right: int) -> Relationship:
        """Return the relationship of the link between two ASes."""
        return self.link(left, right).relationship

    def role_of(self, asn: int, neighbor: int) -> Role:
        """Role that ``neighbor`` plays for ``asn`` (provider/peer/customer)."""
        self._require(asn)
        if neighbor in self._providers[asn]:
            return Role.PROVIDER
        if neighbor in self._peers[asn]:
            return Role.PEER
        if neighbor in self._customers[asn]:
            return Role.CUSTOMER
        raise TopologyError(f"AS {neighbor} is not a neighbor of AS {asn}")

    def is_stub(self, asn: int) -> bool:
        """Whether an AS has no customers (a leaf of the transit hierarchy)."""
        self._require(asn)
        return not self._customers[asn]

    def tier1_ases(self) -> frozenset[int]:
        """ASes without providers (the top of the transit hierarchy)."""
        return frozenset(asn for asn in self._providers if not self._providers[asn])

    def customer_cone(self, asn: int) -> frozenset[int]:
        """All ASes reachable from ``asn`` by following customer links.

        The cone includes ``asn`` itself, matching the usual CAIDA
        definition of the customer cone.
        """
        self._require(asn)
        cone: set[int] = set()
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            if current in cone:
                continue
            cone.add(current)
            frontier.extend(self._customers[current] - cone)
        return frozenset(cone)

    def _require(self, asn: int) -> None:
        if asn not in self._providers:
            raise TopologyError(f"unknown AS: {asn}")

    # ------------------------------------------------------------------
    # Validation and export
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants of the topology.

        Raises :class:`TopologyError` if the provider–customer hierarchy
        contains a cycle (an AS would then be in its own customer cone,
        which is economically nonsensical) or if the internal indices are
        inconsistent.
        """
        for asn in self._providers:
            overlapping = (
                (self._providers[asn] & self._customers[asn])
                | (self._providers[asn] & self._peers[asn])
                | (self._customers[asn] & self._peers[asn])
            )
            if overlapping:
                raise TopologyError(
                    f"AS {asn} has neighbors with conflicting roles: {overlapping}"
                )
        transit = nx.DiGraph()
        transit.add_nodes_from(self._providers)
        for link in self._links.values():
            if link.relationship is Relationship.PROVIDER_TO_CUSTOMER:
                transit.add_edge(link.provider, link.customer)
        if not nx.is_directed_acyclic_graph(transit):
            cycle = nx.find_cycle(transit)
            raise TopologyError(f"provider–customer cycle detected: {cycle}")

    def to_networkx(self) -> nx.Graph:
        """Export to an undirected :class:`networkx.Graph`.

        Edges carry a ``relationship`` attribute; provider–customer edges
        additionally carry ``provider`` and ``customer`` attributes.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self._providers)
        for link in self._links.values():
            attrs: dict[str, object] = {"relationship": link.relationship}
            if link.relationship is Relationship.PROVIDER_TO_CUSTOMER:
                attrs["provider"] = link.provider
                attrs["customer"] = link.customer
            graph.add_edge(link.first, link.second, **attrs)
        return graph

    def copy(self) -> "ASGraph":
        """Return a deep copy of the topology."""
        clone = ASGraph()
        for asn in self._providers:
            clone.add_as(asn)
        for link in self._links.values():
            clone.add_link(link)
        return clone

    def subgraph(self, ases: Iterable[int]) -> "ASGraph":
        """Return the topology induced by a subset of ASes."""
        keep = set(ases)
        sub = ASGraph()
        for asn in keep:
            if asn in self:
                sub.add_as(asn)
        for link in self._links.values():
            if link.first in keep and link.second in keep:
                sub.add_link(link)
        return sub

    def __repr__(self) -> str:
        return (
            f"ASGraph(ases={len(self)}, transit_links={self.num_transit_links()}, "
            f"peering_links={self.num_peering_links()})"
        )
