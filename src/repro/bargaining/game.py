"""The BOSCO bargaining game and its Nash equilibria (§V-C3–C5).

Both parties simultaneously commit one choice from their choice set to
the BOSCO service.  If the apparent utility surplus ``v_X + v_Y`` is
non-negative, the agreement is concluded with cash compensation
``Π_{X→Y} = (v_X − v_Y)/2``; otherwise the negotiation is cancelled and
both parties obtain zero utility.

Given the opponent's (threshold) strategy and utility distribution, the
expected after-negotiation utility of committing choice ``v_{X,i}`` is
linear in the true utility, ``m_i · u_X + q_i`` (Eqs. 14–17), so best
responses are computed with Algorithm 1.  A Nash equilibrium is a pair
of strategies that are mutual best responses; it is found by alternating
best-response dynamics, which converged in all of the paper's
simulations (and in ours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bargaining.choices import ChoiceSet
from repro.bargaining.distributions import UtilityDistribution
from repro.bargaining.strategy import (
    ThresholdStrategy,
    compute_best_response,
    truthful_like_strategy,
)


class EquilibriumError(Exception):
    """Raised when best-response dynamics fail to converge.

    Carries a diagnostic payload so callers can log *how* the search
    failed instead of silently retrying: ``iterations`` is the number of
    best-response rounds performed by the last attempted start,
    ``last_delta`` the largest threshold movement in its final round
    (``∞`` when an infinity flipped sides), and ``skipped_trials`` the
    number of configuration trials discarded before the failure was
    raised (set by :class:`~repro.bargaining.mechanism.BoscoService`).
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: int | None = None,
        last_delta: float | None = None,
        skipped_trials: int | None = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.last_delta = last_delta
        self.skipped_trials = skipped_trials


@dataclass(frozen=True)
class StrategyProfile:
    """A pair of strategies, one per party."""

    strategy_x: ThresholdStrategy
    strategy_y: ThresholdStrategy


def profile_delta(
    first: tuple[float, ...], second: tuple[float, ...]
) -> float:
    """Largest threshold movement between two threshold series.

    The diagnostic an :class:`EquilibriumError` reports (and the scalar
    twin of the batched engine's ``last_delta``): ``0.0`` for identical
    series, ``∞`` when an infinity appears on one side only, otherwise
    the maximum absolute difference.
    """
    delta = 0.0
    for a, b in zip(first, second):
        if a == b:
            continue
        if math.isinf(a) or math.isinf(b):
            return float("inf")
        delta = max(delta, abs(a - b))
    return delta


def choice_probabilities(
    strategy: ThresholdStrategy, distribution: UtilityDistribution
) -> list[float]:
    """Probability that each choice is played, ``P[v_Z = v_{Z,i}]`` (Eq. 15).

    The probability of choice ``i`` is the mass the utility distribution
    assigns to the strategy's interval for ``i``.
    """
    probabilities = []
    for index in range(len(strategy.choices)):
        low, high = strategy.interval(index)
        low = max(low, distribution.lower)
        high = min(high, distribution.upper)
        probabilities.append(distribution.mass(low, high) if high > low else 0.0)
    return probabilities


def response_lines(
    own_choices: ChoiceSet,
    opponent_choices: ChoiceSet,
    opponent_probabilities: list[float],
) -> tuple[list[float], list[float]]:
    """Slopes ``m_i`` and intercepts ``q_i`` of the expected-utility lines.

    ``m_i`` is the probability that the opponent's claim satisfies
    ``v_Y ≥ −v_{X,i}`` (conclusion probability, Eq. 16); ``q_i`` is the
    expected cash term over the concluding opponent claims (Eq. 17).
    """
    slopes: list[float] = []
    intercepts: list[float] = []
    for own_value in own_choices.values:
        if math.isinf(own_value):
            # The cancel option never concludes: zero expected utility.
            slopes.append(0.0)
            intercepts.append(0.0)
            continue
        slope = 0.0
        intercept = 0.0
        for opponent_value, probability in zip(
            opponent_choices.values, opponent_probabilities
        ):
            if math.isinf(opponent_value):
                continue
            if opponent_value >= -own_value:
                slope += probability
                intercept += probability * (opponent_value - own_value) / 2.0
        slopes.append(slope)
        intercepts.append(intercept)
    return slopes, intercepts


@dataclass
class BargainingGame:
    """The one-shot bargaining game between two parties."""

    distribution_x: UtilityDistribution
    distribution_y: UtilityDistribution
    choices_x: ChoiceSet
    choices_y: ChoiceSet

    def best_response(
        self, party: str, opponent_strategy: ThresholdStrategy
    ) -> ThresholdStrategy:
        """Best-response strategy of a party against the opponent's strategy."""
        if party == "x":
            own_choices = self.choices_x
            opponent_choices = self.choices_y
            opponent_distribution = self.distribution_y
        elif party == "y":
            own_choices = self.choices_y
            opponent_choices = self.choices_x
            opponent_distribution = self.distribution_x
        else:
            raise ValueError(f"party must be 'x' or 'y', got {party!r}")
        probabilities = choice_probabilities(opponent_strategy, opponent_distribution)
        slopes, intercepts = response_lines(own_choices, opponent_choices, probabilities)
        return compute_best_response(own_choices, slopes, intercepts)

    def find_equilibrium(
        self,
        *,
        initial_x: ThresholdStrategy | None = None,
        initial_y: ThresholdStrategy | None = None,
        max_iterations: int = 200,
        tolerance: float = 1e-12,
    ) -> StrategyProfile:
        """Find a Nash equilibrium by alternating best-response dynamics.

        The game is not a potential game, so convergence is not guaranteed
        in theory.  In practice the dynamics converge within a few
        iterations (as in the paper's simulations); when they enter a
        cycle, the search restarts from a different initial strategy pair.
        An :class:`EquilibriumError` is raised when every starting point
        cycles.
        """
        if initial_x is not None or initial_y is not None:
            starts = [
                (
                    initial_x or truthful_like_strategy(self.choices_x),
                    initial_y or truthful_like_strategy(self.choices_y),
                )
            ]
        else:
            starts = self._default_starting_profiles()
        iterations_used = 0
        last_delta = float("inf")
        for start_x, start_y in starts:
            profile, iterations_used, last_delta = self._iterate_best_responses(
                start_x, start_y, max_iterations=max_iterations, tolerance=tolerance
            )
            if profile is not None:
                return profile
        raise EquilibriumError(
            f"best-response dynamics did not converge within {max_iterations} "
            "iterations from any starting profile",
            iterations=iterations_used,
            last_delta=last_delta,
        )

    def _default_starting_profiles(
        self,
    ) -> list[tuple[ThresholdStrategy, ThresholdStrategy]]:
        """Starting strategy pairs tried by the equilibrium search."""
        infinity = float("inf")

        def always_cancel(choices: ChoiceSet) -> ThresholdStrategy:
            thresholds = (float("-inf"),) + (infinity,) * (len(choices) - 1)
            return ThresholdStrategy(choices=choices, thresholds=thresholds)

        def always_maximal(choices: ChoiceSet) -> ThresholdStrategy:
            thresholds = (float("-inf"),) * len(choices)
            return ThresholdStrategy(choices=choices, thresholds=thresholds)

        truthful_x = truthful_like_strategy(self.choices_x)
        truthful_y = truthful_like_strategy(self.choices_y)
        return [
            (truthful_x, truthful_y),
            (truthful_x, always_cancel(self.choices_y)),
            (always_cancel(self.choices_x), truthful_y),
            (always_maximal(self.choices_x), always_maximal(self.choices_y)),
        ]

    def _iterate_best_responses(
        self,
        strategy_x: ThresholdStrategy,
        strategy_y: ThresholdStrategy,
        *,
        max_iterations: int,
        tolerance: float,
    ) -> tuple[StrategyProfile | None, int, float]:
        """Run best-response dynamics from one starting profile.

        Returns ``(profile, iterations, last_delta)``; the profile is
        ``None`` when a cycle is detected or the iteration budget runs
        out, and the other two fields are the diagnostics an
        :class:`EquilibriumError` carries.
        """
        seen: set[tuple[tuple[float, ...], tuple[float, ...]]] = set()
        last_delta = float("inf")
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            next_x = self.best_response("x", strategy_y)
            next_y = self.best_response("y", next_x)
            converged = next_x.approximately_equal(
                strategy_x, tolerance
            ) and next_y.approximately_equal(strategy_y, tolerance)
            last_delta = profile_delta(
                next_x.thresholds + next_y.thresholds,
                strategy_x.thresholds + strategy_y.thresholds,
            )
            strategy_x, strategy_y = next_x, next_y
            if converged:
                profile = StrategyProfile(strategy_x=strategy_x, strategy_y=strategy_y)
                return profile, iteration, last_delta
            signature = (strategy_x.thresholds, strategy_y.thresholds)
            if signature in seen:
                return None, iteration, last_delta
            seen.add(signature)
        return None, iteration, last_delta

    def is_equilibrium(
        self, profile: StrategyProfile, tolerance: float = 1e-9
    ) -> bool:
        """Verify that a strategy profile is a pair of mutual best responses.

        This is the check the negotiating parties themselves run on the
        mechanism-information set before following the assigned
        equilibrium strategies (§V-C6).
        """
        best_x = self.best_response("x", profile.strategy_y)
        best_y = self.best_response("y", profile.strategy_x)
        return best_x.approximately_equal(
            profile.strategy_x, tolerance
        ) and best_y.approximately_equal(profile.strategy_y, tolerance)
