"""Bargaining strategies and best-response computation (§V-C4, Algorithm 1).

A bargaining strategy ``σ_Z(u_Z)`` maps the true utility of a party to a
choice from its choice set.  Because the expected after-negotiation
utility of committing choice ``v_{X,i}`` is a *linear* function
``m_i · u_X + q_i`` of the true utility, every best-response strategy is
a threshold strategy: the real line is partitioned into half-open
intervals ``[t_i, t_{i+1})`` and choice ``i`` is played on the ``i``-th
interval.  Algorithm 1 of the paper computes that threshold series as
the upper envelope of the lines ``(m_i, q_i)``.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.bargaining.choices import ChoiceSet


@dataclass(frozen=True)
class ThresholdStrategy:
    """A threshold strategy over a choice set.

    ``thresholds`` has one entry per choice: ``thresholds[i]`` is the
    lower end of the utility interval on which choice ``i`` is played;
    the interval's upper end is ``thresholds[i+1]`` (or ``+∞`` for the
    last choice).  The first threshold is always ``−∞`` so that the
    strategy is total.
    """

    choices: ChoiceSet
    thresholds: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.thresholds) != len(self.choices):
            raise ValueError(
                f"need one threshold per choice: {len(self.thresholds)} thresholds for "
                f"{len(self.choices)} choices"
            )
        if self.thresholds[0] != float("-inf"):
            raise ValueError("the first threshold must be −∞ so the strategy is total")
        if any(b < a for a, b in zip(self.thresholds, self.thresholds[1:])):
            raise ValueError("thresholds must be non-decreasing")

    def choice_index(self, utility: float) -> int:
        """Index of the choice played for a true utility value."""
        # The choice for u is the largest i with thresholds[i] <= u whose
        # interval [t_i, t_{i+1}) is non-empty and contains u.
        index = bisect.bisect_right(self.thresholds, utility) - 1
        return max(0, index)

    def __call__(self, utility: float) -> float:
        """The claim committed for a true utility value."""
        return self.choices[self.choice_index(utility)]

    def interval(self, index: int) -> tuple[float, float]:
        """The utility interval on which choice ``index`` is played."""
        upper = (
            self.thresholds[index + 1]
            if index + 1 < len(self.thresholds)
            else float("inf")
        )
        return (self.thresholds[index], upper)

    def equilibrium_choice_indices(self) -> tuple[int, ...]:
        """Indices of choices with a non-empty interval (played for some utility)."""
        played = []
        for index in range(len(self.choices)):
            low, high = self.interval(index)
            if high > low:
                played.append(index)
        return tuple(played)

    def shortest_nonempty_interval(self) -> float:
        """Length of the shortest non-empty finite interval.

        §V-D proposes this as a quantitative privacy measure: the shorter
        the interval behind a choice, the more precisely an observer can
        infer the true utility from that choice.
        """
        lengths = []
        for index in range(len(self.choices)):
            low, high = self.interval(index)
            if high > low and math.isfinite(low) and math.isfinite(high):
                lengths.append(high - low)
        return min(lengths) if lengths else float("inf")

    def approximately_equal(self, other: "ThresholdStrategy", tolerance: float = 1e-9) -> bool:
        """Whether two strategies have (numerically) identical thresholds."""
        if self.choices.values != other.choices.values:
            return False
        for a, b in zip(self.thresholds, other.thresholds):
            if a == b:
                continue
            if math.isinf(a) or math.isinf(b):
                return False
            if abs(a - b) > tolerance:
                return False
        return True


def truthful_like_strategy(choices: ChoiceSet) -> ThresholdStrategy:
    """The quantized-truthful strategy: claim the largest choice below the truth.

    Used as the starting point of best-response dynamics; any starting
    strategy works (§V-C5), but this one is close to the truthful
    strategy and converges quickly.
    """
    thresholds = [float("-inf")]
    thresholds.extend(choices.finite_values)
    return ThresholdStrategy(choices=choices, thresholds=tuple(thresholds))


def compute_best_response(
    choices: ChoiceSet,
    slopes: list[float],
    intercepts: list[float],
) -> ThresholdStrategy:
    """Algorithm 1: best-response thresholds from the lines ``(m_i, q_i)``.

    ``slopes[i] = m_i`` and ``intercepts[i] = q_i`` describe the expected
    after-negotiation utility ``m_i · u + q_i`` of committing choice
    ``i``.  The slopes are non-decreasing in ``i`` (the conclusion
    probability grows with the claim); the best response plays, for every
    true utility ``u``, the choice whose line is the upper envelope at
    ``u``.  The threshold series is the sequence of takeover points of
    that envelope.
    """
    count = len(choices)
    if len(slopes) != count or len(intercepts) != count:
        raise ValueError("need one (slope, intercept) pair per choice")
    for index in range(1, count):
        if slopes[index] < slopes[index - 1] - 1e-12:
            raise ValueError(
                "slopes must be non-decreasing in the choice index (the conclusion "
                "probability grows with the claim)"
            )

    infinity = float("inf")
    thresholds = [infinity] * count
    thresholds[0] = float("-inf")

    # Lines with the same slope never cross; only the one with the highest
    # intercept can ever be optimal.  Keep exactly one "active" line per
    # distinct slope (the paper notes the others are never played).
    active: list[int] = []
    index = 0
    while index < count:
        best = index
        runner = index
        while runner < count and slopes[runner] == slopes[index]:
            if intercepts[runner] > intercepts[best]:
                best = runner
            runner += 1
        active.append(best)
        index = runner

    # The line optimal for u → −∞ is the active line with the smallest slope.
    for lower in range(active[0] + 1):
        thresholds[lower] = float("-inf")

    position = 0
    while position + 1 < len(active):
        current = active[position]
        best_crossing = infinity
        best_position = None
        for next_position in range(position + 1, len(active)):
            candidate = active[next_position]
            crossing = (intercepts[current] - intercepts[candidate]) / (
                slopes[candidate] - slopes[current]
            )
            steeper_tie = (
                best_position is not None
                and crossing == best_crossing
                and slopes[candidate] > slopes[active[best_position]]
            )
            if crossing < best_crossing or steeper_tie:
                best_crossing = crossing
                best_position = next_position
        thresholds[active[best_position]] = best_crossing
        position = best_position

    # Choices that never appear on the envelope get an empty interval:
    # their lower threshold is pulled up to the next assigned threshold.
    for index in range(active[0] + 1, count):
        if thresholds[index] == infinity:
            later = [thresholds[j] for j in range(index + 1, count)]
            later.append(infinity)
            thresholds[index] = min(later)

    # Enforce monotonicity against floating-point jitter.
    for index in range(1, count):
        if thresholds[index] < thresholds[index - 1]:
            thresholds[index] = thresholds[index - 1]

    return ThresholdStrategy(choices=choices, thresholds=tuple(thresholds))
