"""Utility distributions for the BOSCO mechanism (§V-C1).

The BOSCO service does not know the true agreement utilities of the two
parties, but is assumed to be able to estimate a *utility distribution*
``U_Z(u)`` per party — the probability density that party ``Z`` derives
utility ``u`` from the agreement.  The mechanism's evaluation (Fig. 2)
uses two uniform joint distributions:

- ``U(1)``: uniform on ``[−1, 1] × [−1, 1]``,
- ``U(2)``: uniform on ``[−1/2, 1] × [−1/2, 1]``.

This module defines the distribution interface the mechanism needs
(probability mass and first partial moment over intervals, plus
sampling) and the concrete distributions used in the paper.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate


class UtilityDistribution(abc.ABC):
    """A one-dimensional distribution over a party's agreement utility."""

    @property
    @abc.abstractmethod
    def lower(self) -> float:
        """Lower end of the support."""

    @property
    @abc.abstractmethod
    def upper(self) -> float:
        """Upper end of the support."""

    @abc.abstractmethod
    def pdf(self, utility: float) -> float:
        """Probability density at a utility value."""

    @abc.abstractmethod
    def mass(self, low: float, high: float) -> float:
        """Probability that the utility falls into ``[low, high)``."""

    @abc.abstractmethod
    def partial_mean(self, low: float, high: float) -> float:
        """First partial moment ``∫_low^high u · f(u) du``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw samples from the distribution."""

    @property
    def mean(self) -> float:
        """Expected utility."""
        return self.partial_mean(self.lower, self.upper)


@dataclass(frozen=True)
class UniformUtilityDistribution(UtilityDistribution):
    """Uniform utility distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(
                f"upper bound must exceed lower bound, got [{self.low}, {self.high}]"
            )

    @property
    def lower(self) -> float:
        return self.low

    @property
    def upper(self) -> float:
        return self.high

    @property
    def _density(self) -> float:
        return 1.0 / (self.high - self.low)

    def pdf(self, utility: float) -> float:
        if self.low <= utility <= self.high:
            return self._density
        return 0.0

    def mass(self, low: float, high: float) -> float:
        lo = max(low, self.low)
        hi = min(high, self.high)
        if hi <= lo:
            return 0.0
        return (hi - lo) * self._density

    def partial_mean(self, low: float, high: float) -> float:
        lo = max(low, self.low)
        hi = min(high, self.high)
        if hi <= lo:
            return 0.0
        return self._density * (hi * hi - lo * lo) / 2.0

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)


@dataclass(frozen=True)
class TruncatedNormalUtilityDistribution(UtilityDistribution):
    """Normal distribution truncated to ``[low, high]``.

    Not used in the paper's figure, but a natural heuristic estimate of
    agreement utilities ("standard transit and equipment prices plus
    noise"); it exercises the mechanism with a non-uniform prior and is
    used in the ablation benchmarks.
    """

    location: float
    scale: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not self.high > self.low:
            raise ValueError(
                f"upper bound must exceed lower bound, got [{self.low}, {self.high}]"
            )

    @property
    def lower(self) -> float:
        return self.low

    @property
    def upper(self) -> float:
        return self.high

    def _phi(self, value: float) -> float:
        return math.exp(-0.5 * value * value) / math.sqrt(2.0 * math.pi)

    def _cdf_standard(self, value: float) -> float:
        return 0.5 * (1.0 + math.erf(value / math.sqrt(2.0)))

    @property
    def _normalizer(self) -> float:
        a = (self.low - self.location) / self.scale
        b = (self.high - self.location) / self.scale
        return self._cdf_standard(b) - self._cdf_standard(a)

    def pdf(self, utility: float) -> float:
        if not self.low <= utility <= self.high:
            return 0.0
        z = (utility - self.location) / self.scale
        return self._phi(z) / (self.scale * self._normalizer)

    def mass(self, low: float, high: float) -> float:
        lo = max(low, self.low)
        hi = min(high, self.high)
        if hi <= lo:
            return 0.0
        a = (lo - self.location) / self.scale
        b = (hi - self.location) / self.scale
        return (self._cdf_standard(b) - self._cdf_standard(a)) / self._normalizer

    def partial_mean(self, low: float, high: float) -> float:
        lo = max(low, self.low)
        hi = min(high, self.high)
        if hi <= lo:
            return 0.0
        value, _ = integrate.quad(lambda u: u * self.pdf(u), lo, hi)
        return value

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        samples = []
        while len(samples) < size:
            draw = rng.normal(self.location, self.scale, size=size)
            samples.extend(float(x) for x in draw if self.low <= x <= self.high)
        return np.array(samples[:size])


@dataclass(frozen=True)
class JointUtilityDistribution:
    """Independent joint distribution of the two parties' utilities."""

    marginal_x: UtilityDistribution
    marginal_y: UtilityDistribution

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` pairs ``(u_X, u_Y)``."""
        return np.column_stack(
            (self.marginal_x.sample(rng, size), self.marginal_y.sample(rng, size))
        )


def paper_distribution_u1() -> JointUtilityDistribution:
    """The paper's ``U(1)``: uniform on ``[−1, 1] × [−1, 1]``."""
    return JointUtilityDistribution(
        marginal_x=UniformUtilityDistribution(-1.0, 1.0),
        marginal_y=UniformUtilityDistribution(-1.0, 1.0),
    )


def paper_distribution_u2() -> JointUtilityDistribution:
    """The paper's ``U(2)``: uniform on ``[−1/2, 1] × [−1/2, 1]``."""
    return JointUtilityDistribution(
        marginal_x=UniformUtilityDistribution(-0.5, 1.0),
        marginal_y=UniformUtilityDistribution(-0.5, 1.0),
    )
