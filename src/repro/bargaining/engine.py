"""Batched evaluation of BOSCO bargaining games (§V) with array kernels.

The per-instance stack — :func:`~repro.bargaining.game.choice_probabilities`,
:func:`~repro.bargaining.game.response_lines` (Eqs. 14–17),
:func:`~repro.bargaining.strategy.compute_best_response` (Algorithm 1),
:meth:`~repro.bargaining.game.BargainingGame.find_equilibrium`, and the
Nash-product integrals of :mod:`~repro.bargaining.efficiency` — runs one
trial at a time in pure Python.  Fig. 2 evaluates hundreds of random
choice-set trials per cardinality and the marketplace simulation
negotiates batches of agreements per billing epoch, so the
:class:`NegotiationEngine` here evaluates **batches** of bargaining-game
instances at once: ``(B, W+1)`` ``float64`` arrays of choices and
thresholds, batched best-response sweeps with convergence masks, and
vectorized Nash-product / Price-of-Dishonesty reductions.

Bit-exactness contract
----------------------

The engine is not "numerically close" to the reference path — it is
**bit-identical** on every instance, which is what lets
:class:`~repro.bargaining.mechanism.BoscoService` switch Fig. 2 and the
marketplace scenario onto it without changing a byte of seeded output.
Three rules make that possible (see :mod:`repro.core.arrays`):

1. every elementwise formula mirrors the reference expression tree
   operation for operation (NumPy ufuncs and Python floats share IEEE-754
   ``float64`` semantics, and separate ufunc passes cannot be fused);
2. every reduction uses :func:`~repro.core.arrays.sequential_sum`
   (left-to-right scan order), never ``np.sum`` (pairwise order);
3. skipped loop iterations become masked ``0.0`` terms — adding ``+0.0``
   is exact — and tie-breaks reuse the reference comparison directions.

The uniform distributions of the paper get closed-form array kernels;
any other :class:`~repro.bargaining.distributions.UtilityDistribution`
falls back to an elementwise kernel that calls the distribution's own
``mass``/``partial_mean`` — slower, but exact by construction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.bargaining.choices import ChoiceSet
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    UniformUtilityDistribution,
    UtilityDistribution,
)
from repro.bargaining.game import StrategyProfile
from repro.bargaining.strategy import ThresholdStrategy
from repro.core.arrays import (
    exclusive_suffix_minimum,
    last_argmax,
    running_maximum,
    sequential_sum,
)

_INF = float("inf")


# ----------------------------------------------------------------------
# Distribution kernels
# ----------------------------------------------------------------------
class DistributionKernel:
    """Vectorized interval mass / partial mean of a utility distribution.

    Subclasses must be elementwise bit-identical to the distribution's
    scalar ``mass`` and ``partial_mean`` methods.
    """

    def __init__(self, distribution: UtilityDistribution) -> None:
        self.distribution = distribution
        self.lower = distribution.lower
        self.upper = distribution.upper

    def mass(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Elementwise ``distribution.mass(low, high)``."""
        raise NotImplementedError

    def partial_mean(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Elementwise ``distribution.partial_mean(low, high)``."""
        raise NotImplementedError


class UniformKernel(DistributionKernel):
    """Closed-form kernel for :class:`UniformUtilityDistribution`."""

    def __init__(self, distribution: UniformUtilityDistribution) -> None:
        super().__init__(distribution)
        # Same expression as UniformUtilityDistribution._density, so the
        # scalar and the array path multiply by the identical float.
        self._density = 1.0 / (distribution.high - distribution.low)

    def _clip(self, low: np.ndarray, high: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.maximum(low, self.distribution.low),
            np.minimum(high, self.distribution.high),
        )

    def mass(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        lo, hi = self._clip(low, high)
        return np.where(hi <= lo, 0.0, (hi - lo) * self._density)

    def partial_mean(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        lo, hi = self._clip(low, high)
        return np.where(hi <= lo, 0.0, self._density * (hi * hi - lo * lo) / 2.0)


class GenericKernel(DistributionKernel):
    """Elementwise fallback for distributions without a closed form.

    Loops in Python, calling the distribution's own scalar methods, so
    it is exact for *any* distribution at per-instance speed — the
    batched sweep structure above it still pays off because the
    equilibrium search and the rectangle reductions dominate.
    """

    @staticmethod
    def _apply(scalar_method, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        flat_lo, flat_hi = np.broadcast_arrays(low, high)
        out = np.empty(flat_lo.shape, dtype=np.float64)
        flat = out.reshape(-1)
        for position, (lo, hi) in enumerate(
            zip(flat_lo.reshape(-1), flat_hi.reshape(-1))
        ):
            flat[position] = scalar_method(float(lo), float(hi))
        return out

    def mass(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        return self._apply(self.distribution.mass, low, high)

    def partial_mean(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        return self._apply(self.distribution.partial_mean, low, high)


def kernel_for(distribution: UtilityDistribution) -> DistributionKernel:
    """The fastest exact kernel available for a distribution."""
    if isinstance(distribution, UniformUtilityDistribution):
        return UniformKernel(distribution)
    return GenericKernel(distribution)


# ----------------------------------------------------------------------
# Batches
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GameBatch:
    """``B`` bargaining-game instances under one joint distribution.

    All instances share the per-party choice-set cardinality so the
    choices pack into dense ``(B, W+1)`` arrays (column 0 is the cancel
    option ``−∞``).  The original :class:`ChoiceSet` objects are kept so
    equilibria can be materialized back into per-instance
    :class:`StrategyProfile` values without re-validating floats.
    """

    distribution: JointUtilityDistribution
    choices_x: np.ndarray
    choices_y: np.ndarray
    sets_x: tuple[ChoiceSet, ...]
    sets_y: tuple[ChoiceSet, ...]

    @classmethod
    def from_choice_sets(
        cls,
        distribution: JointUtilityDistribution,
        pairs: Sequence[tuple[ChoiceSet, ChoiceSet]],
    ) -> "GameBatch":
        """Pack per-trial choice-set pairs into one batch."""
        if not pairs:
            raise ValueError("a game batch needs at least one instance")
        sets_x = tuple(pair[0] for pair in pairs)
        sets_y = tuple(pair[1] for pair in pairs)
        for sets in (sets_x, sets_y):
            cardinalities = {len(choice_set) for choice_set in sets}
            if len(cardinalities) != 1:
                raise ValueError(
                    "all instances of a batch must share the choice-set "
                    f"cardinality, got {sorted(cardinalities)}"
                )
        return cls(
            distribution=distribution,
            choices_x=np.array([s.values for s in sets_x], dtype=np.float64),
            choices_y=np.array([s.values for s in sets_y], dtype=np.float64),
            sets_x=sets_x,
            sets_y=sets_y,
        )

    def __len__(self) -> int:
        return self.choices_x.shape[0]

    def rows(self, selector: slice) -> "GameBatch":
        """The sub-batch of a contiguous row range (views, no copies).

        Because every engine method is row-independent, solving a
        ``rows`` slice yields exactly the rows the full batch's solution
        would — this is what lets externally packed cohorts (several
        callers' trials concatenated into one batch) be unpacked into
        per-caller results that are bit-identical to solo runs.
        """
        return GameBatch(
            distribution=self.distribution,
            choices_x=self.choices_x[selector],
            choices_y=self.choices_y[selector],
            sets_x=self.sets_x[selector],
            sets_y=self.sets_y[selector],
        )


@dataclass
class BatchedEquilibria:
    """Equilibria of a :class:`GameBatch`, one row per instance.

    ``converged[i]`` mirrors the reference search outcome: ``False``
    means alternating best-response dynamics cycled (or ran out of
    iterations) from every starting profile, exactly the condition under
    which the per-instance path raises
    :class:`~repro.bargaining.game.EquilibriumError`.  ``iterations``
    and ``last_delta`` carry the diagnostics of the (last) dynamics run.
    """

    thresholds_x: np.ndarray
    thresholds_y: np.ndarray
    converged: np.ndarray
    start_index: np.ndarray
    iterations: np.ndarray
    last_delta: np.ndarray

    def rows(self, selector: slice) -> "BatchedEquilibria":
        """The equilibria of a contiguous row range (views, no copies)."""
        return BatchedEquilibria(
            thresholds_x=self.thresholds_x[selector],
            thresholds_y=self.thresholds_y[selector],
            converged=self.converged[selector],
            start_index=self.start_index[selector],
            iterations=self.iterations[selector],
            last_delta=self.last_delta[selector],
        )

    def profile(self, batch: GameBatch, index: int) -> StrategyProfile:
        """Materialize instance ``index`` as a per-instance profile."""
        if not self.converged[index]:
            raise ValueError(f"instance {index} did not converge")
        return StrategyProfile(
            strategy_x=ThresholdStrategy(
                choices=batch.sets_x[index],
                thresholds=tuple(float(v) for v in self.thresholds_x[index]),
            ),
            strategy_y=ThresholdStrategy(
                choices=batch.sets_y[index],
                thresholds=tuple(float(v) for v in self.thresholds_y[index]),
            ),
        )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class NegotiationEngine:
    """Evaluates batches of BOSCO bargaining games with NumPy kernels.

    Stateless: instances are cheap and safely shared across consumers
    (the combined experiment runner, sweep shards, and the simulation
    lifecycle all reuse one).  Every public method is row-independent —
    evaluating a sub-batch yields the same bits as evaluating the full
    batch and slicing.
    """

    # ------------------------------------------------------------------
    # Eq. 15: choice probabilities
    # ------------------------------------------------------------------
    def choice_probabilities(
        self, thresholds: np.ndarray, kernel: DistributionKernel
    ) -> np.ndarray:
        """Batched :func:`~repro.bargaining.game.choice_probabilities`."""
        upper = _next_thresholds(thresholds)
        low = np.maximum(thresholds, kernel.lower)
        high = np.minimum(upper, kernel.upper)
        return np.where(high > low, kernel.mass(low, high), 0.0)

    # ------------------------------------------------------------------
    # Eqs. 16–17: response lines
    # ------------------------------------------------------------------
    def response_lines(
        self,
        own_values: np.ndarray,
        opponent_values: np.ndarray,
        opponent_probabilities: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :func:`~repro.bargaining.game.response_lines`.

        Returns ``(slopes, intercepts)`` of shape ``(B, C_own)``.  The
        reference accumulates qualifying opponent terms left to right;
        non-qualifying terms become masked ``+0.0`` entries here, which
        leaves the sequential sums bit-identical.
        """
        batch, own_count = own_values.shape
        own_finite = np.isfinite(own_values)
        opponent_finite = np.isfinite(opponent_values)
        own_safe = np.where(own_finite, own_values, 0.0)
        opponent_safe = np.where(opponent_finite, opponent_values, 0.0)
        negated_own = -own_safe
        # The scan runs over the opponent axis with one fused, in-place
        # vector add per opponent choice: accumulation order per
        # ``(instance, own choice)`` lane is the reference's
        # left-to-right loop, the adds vectorize across the batch, and
        # every intermediate stays in a cache-resident ``(B, C_own)``
        # slice instead of a ``(B, C_own, C_opp)`` block.  Masked terms
        # enter as ``±0.0``, which is neutral under IEEE-754
        # round-to-nearest addition, so the sums are bit-identical to
        # the reference's skip-the-term loop.
        slopes = np.zeros((batch, own_count))
        intercepts = np.zeros((batch, own_count))
        mask = np.empty((batch, own_count), dtype=bool)
        masked_probability = np.empty((batch, own_count))
        term = np.empty((batch, own_count))
        for k in range(opponent_values.shape[1]):
            opponent_column = opponent_safe[:, k, None]
            np.greater_equal(opponent_column, negated_own, out=mask)
            mask &= own_finite
            mask &= opponent_finite[:, k, None]
            np.multiply(mask, opponent_probabilities[:, k, None], out=masked_probability)
            slopes += masked_probability
            np.subtract(opponent_column, own_safe, out=term)
            term *= masked_probability
            term /= 2.0
            intercepts += term
        return slopes, intercepts

    # ------------------------------------------------------------------
    # Algorithm 1: upper-envelope thresholds
    # ------------------------------------------------------------------
    def envelope_thresholds(
        self, slopes: np.ndarray, intercepts: np.ndarray
    ) -> np.ndarray:
        """Batched :func:`~repro.bargaining.strategy.compute_best_response`.

        Vectorizes Algorithm 1 across the batch: one line per distinct
        slope stays active, the envelope chain advances to the candidate
        with the minimal crossing (ties to the steeper line, i.e. the
        *last* minimal candidate since active slopes strictly increase),
        unassigned thresholds take the minimum over later thresholds,
        and the monotonic clamp is a running maximum.
        """
        batch_size, count = slopes.shape
        columns = np.arange(count)
        total = batch_size * count

        # One active line per distinct-slope run: the first index with
        # the maximal intercept (strict `>` in the reference scan keeps
        # the first).  Runs are contiguous and never span rows (column 0
        # always starts one), so segment maxima come from one flat
        # ``reduceat`` pass — comparison-only, hence exact.
        run_starts = np.ones((batch_size, count), dtype=bool)
        run_starts[:, 1:] = slopes[:, 1:] != slopes[:, :-1]
        flat_starts = np.nonzero(run_starts.reshape(-1))[0]
        flat_intercepts = intercepts.reshape(-1)
        run_maxima = np.repeat(
            np.maximum.reduceat(flat_intercepts, flat_starts),
            np.diff(np.append(flat_starts, total)),
        )
        attains_maximum = np.where(
            flat_intercepts == run_maxima, np.arange(total), total
        )
        active = np.zeros(total, dtype=bool)
        active[np.minimum.reduceat(attains_maximum, flat_starts)] = True
        active = active.reshape(batch_size, count)

        # The active line with the smallest slope wins as u → −∞.
        first_active = np.argmax(active, axis=1)
        thresholds = np.where(columns[None, :] <= first_active[:, None], -_INF, _INF)

        # Envelope chain: repeatedly jump to the candidate whose line
        # takes over first.  Rows advance in lockstep; finished rows
        # (no active line after the current one) drop out.
        current = first_active.copy()
        alive = (active & (columns[None, :] > current[:, None])).any(axis=1)
        while alive.any():
            rows = np.nonzero(alive)[0]
            current_rows = current[rows]
            slope_current = slopes[rows, current_rows][:, None]
            intercept_current = intercepts[rows, current_rows][:, None]
            candidates = active[rows] & (columns[None, :] > current_rows[:, None])
            with np.errstate(divide="ignore", invalid="ignore"):
                crossings = (intercept_current - intercepts[rows]) / (
                    slopes[rows] - slope_current
                )
            crossings = np.where(candidates, crossings, _INF)
            best_crossing = np.min(crossings, axis=1)
            takeover = last_argmax(candidates & (crossings == best_crossing[:, None]))
            thresholds[rows, takeover] = best_crossing
            current[rows] = takeover
            alive[rows] = (active[rows] & (columns[None, :] > takeover[:, None])).any(
                axis=1
            )

        # Choices never on the envelope get an empty interval; enforce
        # monotonicity against floating-point jitter.
        filled = np.where(
            np.isposinf(thresholds), exclusive_suffix_minimum(thresholds), thresholds
        )
        return running_maximum(filled, axis=1)

    def best_responses(
        self,
        own_values: np.ndarray,
        opponent_values: np.ndarray,
        opponent_thresholds: np.ndarray,
        opponent_kernel: DistributionKernel,
    ) -> np.ndarray:
        """Batched ``BargainingGame.best_response``: thresholds per row."""
        probabilities = self.choice_probabilities(opponent_thresholds, opponent_kernel)
        slopes, intercepts = self.response_lines(
            own_values, opponent_values, probabilities
        )
        return self.envelope_thresholds(slopes, intercepts)

    # ------------------------------------------------------------------
    # Alternating best-response dynamics
    # ------------------------------------------------------------------
    def solve(
        self,
        batch: GameBatch,
        *,
        max_iterations: int = 200,
        tolerance: float = 1e-12,
    ) -> BatchedEquilibria:
        """Batched ``BargainingGame.find_equilibrium``.

        Runs the reference's starting profiles in the reference order;
        instances that converge drop out, instances that cycle (exact
        threshold-signature repeat) or exhaust ``max_iterations`` move
        on to the next start.  ``converged`` is ``False`` exactly for
        the instances on which the per-instance search would raise.
        """
        size = len(batch)
        kernel_x = kernel_for(batch.distribution.marginal_x)
        kernel_y = kernel_for(batch.distribution.marginal_y)
        counts_x = batch.choices_x.shape[1]
        counts_y = batch.choices_y.shape[1]
        result = BatchedEquilibria(
            thresholds_x=np.full((size, counts_x), np.nan),
            thresholds_y=np.full((size, counts_y), np.nan),
            converged=np.zeros(size, dtype=bool),
            start_index=np.full(size, -1, dtype=np.int64),
            iterations=np.zeros(size, dtype=np.int64),
            last_delta=np.full(size, np.nan),
        )
        pending = np.arange(size)
        for start, (build_x, build_y) in enumerate(_STARTING_PROFILES):
            if pending.size == 0:
                break
            choices_x = batch.choices_x[pending]
            choices_y = batch.choices_y[pending]
            solved, thresholds_x, thresholds_y, iterations, deltas = self._dynamics(
                choices_x,
                choices_y,
                build_x(choices_x),
                build_y(choices_y),
                kernel_x,
                kernel_y,
                max_iterations=max_iterations,
                tolerance=tolerance,
            )
            done = pending[solved]
            result.thresholds_x[done] = thresholds_x[solved]
            result.thresholds_y[done] = thresholds_y[solved]
            result.converged[done] = True
            result.start_index[done] = start
            result.iterations[pending] = iterations
            result.last_delta[pending] = deltas
            pending = pending[~solved]
        return result

    def _dynamics(
        self,
        choices_x: np.ndarray,
        choices_y: np.ndarray,
        thresholds_x: np.ndarray,
        thresholds_y: np.ndarray,
        kernel_x: DistributionKernel,
        kernel_y: DistributionKernel,
        *,
        max_iterations: int,
        tolerance: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One lockstep run of alternating best-response dynamics."""
        size = choices_x.shape[0]
        seen: list[set[tuple[bytes, bytes]]] = [set() for _ in range(size)]
        active = np.ones(size, dtype=bool)
        solved = np.zeros(size, dtype=bool)
        thresholds_x = thresholds_x.copy()
        thresholds_y = thresholds_y.copy()
        iterations = np.zeros(size, dtype=np.int64)
        deltas = np.full(size, np.nan)
        # Best responses are pure functions of the opponent thresholds,
        # so rows whose opponent did not move since the previous round
        # reuse the cached response (near convergence the confirmation
        # round is otherwise a full bit-identical recompute).
        respond_x = _ResponseCache(
            self, choices_x, choices_y, kernel_y, thresholds_x.shape[1]
        )
        respond_y = _ResponseCache(
            self, choices_y, choices_x, kernel_x, thresholds_y.shape[1]
        )
        for _ in range(max_iterations):
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                break
            next_x = respond_x(rows, thresholds_y[rows])
            next_y = respond_y(rows, next_x)
            converged = _rows_approximately_equal(
                next_x, thresholds_x[rows], tolerance
            ) & _rows_approximately_equal(next_y, thresholds_y[rows], tolerance)
            deltas[rows] = np.maximum(
                _rows_delta(next_x, thresholds_x[rows]),
                _rows_delta(next_y, thresholds_y[rows]),
            )
            thresholds_x[rows] = next_x
            thresholds_y[rows] = next_y
            iterations[rows] += 1
            solved[rows[converged]] = True
            active[rows[converged]] = False
            for position, row in enumerate(rows):
                if converged[position]:
                    continue
                # `+ 0.0` collapses −0.0 onto +0.0, matching the tuple
                # equality the reference's cycle detector relies on.
                signature = (
                    (next_x[position] + 0.0).tobytes(),
                    (next_y[position] + 0.0).tobytes(),
                )
                if signature in seen[row]:
                    active[row] = False
                else:
                    seen[row].add(signature)
        return solved, thresholds_x, thresholds_y, iterations, deltas

    # ------------------------------------------------------------------
    # Eqs. 19–20: expected Nash product and Price of Dishonesty
    # ------------------------------------------------------------------
    def expected_nash_products(
        self, batch: GameBatch, equilibria: BatchedEquilibria
    ) -> np.ndarray:
        """Batched :func:`~repro.bargaining.efficiency.expected_nash_product`.

        Returns one value per instance (``NaN`` for non-converged rows).
        The rectangle decomposition accumulates in the reference's
        row-major ``(index_x, index_y)`` order with skipped rectangles
        as masked zero terms.
        """
        size = len(batch)
        values = np.full(size, np.nan)
        rows = np.nonzero(equilibria.converged)[0]
        if rows.size == 0:
            return values
        kernel_x = kernel_for(batch.distribution.marginal_x)
        kernel_y = kernel_for(batch.distribution.marginal_y)
        claims_x = batch.choices_x[rows]
        claims_y = batch.choices_y[rows]
        mass_x, mean_x, nonempty_x = _interval_moments(
            equilibria.thresholds_x[rows], kernel_x
        )
        mass_y, mean_y, nonempty_y = _interval_moments(
            equilibria.thresholds_y[rows], kernel_y
        )
        finite_x = np.isfinite(claims_x)
        finite_y = np.isfinite(claims_y)
        safe_x = np.where(finite_x, claims_x, 0.0)
        safe_y = np.where(finite_y, claims_y, 0.0)
        concluding = safe_x[:, :, None] + safe_y[:, None, :] >= 0.0
        mask = (
            (finite_x & nonempty_x)[:, :, None]
            & (finite_y & nonempty_y)[:, None, :]
            & concluding
        )
        transfer = (safe_x[:, :, None] - safe_y[:, None, :]) / 2.0
        terms = (mean_x[:, :, None] - transfer * mass_x[:, :, None]) * (
            mean_y[:, None, :] + transfer * mass_y[:, None, :]
        )
        terms = np.where(mask, terms, 0.0)
        values[rows] = sequential_sum(terms.reshape(rows.size, -1), axis=1)
        return values

    def prices_of_dishonesty(
        self, nash_products: np.ndarray, truthful_value: float
    ) -> np.ndarray:
        """Batched :func:`~repro.bargaining.efficiency.price_of_dishonesty`."""
        if truthful_value <= 0.0:
            raise ValueError(
                "the Price of Dishonesty is undefined when the truthful expected "
                "Nash product is zero"
            )
        pods = 1.0 - nash_products / truthful_value
        return np.minimum(1.0, np.maximum(0.0, pods))

    def equilibrium_choice_counts(
        self, equilibria: BatchedEquilibria
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-party counts of choices with a non-empty interval."""
        counts = []
        for thresholds in (equilibria.thresholds_x, equilibria.thresholds_y):
            upper = _next_thresholds(thresholds)
            counts.append((upper > thresholds).sum(axis=1))
        return counts[0], counts[1]


class _ResponseCache:
    """Per-row memo of the last best response against one opponent.

    Keyed by bitwise equality of the opponent's thresholds (signed
    zeros compare equal, and best responses are invariant to the sign
    of a zero threshold), so a cache hit returns exactly the array the
    engine would recompute.
    """

    def __init__(
        self,
        engine: "NegotiationEngine",
        own_values: np.ndarray,
        opponent_values: np.ndarray,
        opponent_kernel: DistributionKernel,
        width: int,
    ) -> None:
        self._engine = engine
        self._own = own_values
        self._opponent = opponent_values
        self._kernel = opponent_kernel
        self._valid = np.zeros(own_values.shape[0], dtype=bool)
        self._inputs = np.empty_like(opponent_values)
        self._outputs = np.empty((own_values.shape[0], width))

    def __call__(self, rows: np.ndarray, opponent_thresholds: np.ndarray) -> np.ndarray:
        hits = self._valid[rows] & np.all(
            opponent_thresholds == self._inputs[rows], axis=1
        )
        responses = np.empty((rows.size, self._outputs.shape[1]))
        responses[hits] = self._outputs[rows[hits]]
        misses = ~hits
        if misses.any():
            miss_rows = rows[misses]
            computed = self._engine.best_responses(
                self._own[miss_rows],
                self._opponent[miss_rows],
                opponent_thresholds[misses],
                self._kernel,
            )
            responses[misses] = computed
            self._inputs[miss_rows] = opponent_thresholds[misses]
            self._outputs[miss_rows] = computed
            self._valid[miss_rows] = True
        return responses


# ----------------------------------------------------------------------
# Batched claims (the negotiation stage itself)
# ----------------------------------------------------------------------
def batched_claims(
    strategy: ThresholdStrategy, utilities: np.ndarray
) -> np.ndarray:
    """Claims committed by one threshold strategy for many true utilities.

    ``np.searchsorted(..., side="right")`` has exactly the semantics of
    the ``bisect_right`` lookup in
    :meth:`~repro.bargaining.strategy.ThresholdStrategy.choice_index`.
    """
    thresholds = np.asarray(strategy.thresholds, dtype=np.float64)
    values = np.asarray(strategy.choices.values, dtype=np.float64)
    indices = np.searchsorted(thresholds, utilities, side="right") - 1
    return values[np.maximum(indices, 0)]


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _next_thresholds(thresholds: np.ndarray) -> np.ndarray:
    """Upper interval ends: the next threshold, ``+∞`` for the last."""
    filler = np.full(thresholds.shape[:-1] + (1,), _INF)
    return np.concatenate([thresholds[..., 1:], filler], axis=-1)


def _interval_moments(
    thresholds: np.ndarray, kernel: DistributionKernel
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Support-clipped interval mass, partial mean, and non-emptiness."""
    upper = _next_thresholds(thresholds)
    low = np.maximum(thresholds, kernel.lower)
    high = np.minimum(upper, kernel.upper)
    return kernel.mass(low, high), kernel.partial_mean(low, high), high > low


def _rows_approximately_equal(
    a: np.ndarray, b: np.ndarray, tolerance: float
) -> np.ndarray:
    """Row-wise ``ThresholdStrategy.approximately_equal`` on thresholds."""
    same = a == b
    finite = np.isfinite(a) & np.isfinite(b)
    with np.errstate(invalid="ignore"):
        close = finite & (np.abs(a - b) <= tolerance)
    return np.all(same | close, axis=1)


def _rows_delta(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise profile delta: max |a−b| with ∞ for an infinity mismatch."""
    with np.errstate(invalid="ignore"):
        difference = np.abs(a - b)
    difference = np.where(a == b, 0.0, difference)
    difference = np.where(np.isnan(difference), _INF, difference)
    return np.max(difference, axis=1) if a.shape[1] else np.zeros(a.shape[0])


def _truthful_thresholds(choices: np.ndarray) -> np.ndarray:
    """Batched :func:`~repro.bargaining.strategy.truthful_like_strategy`."""
    first = np.full((choices.shape[0], 1), -_INF)
    return np.concatenate([first, choices[:, 1:]], axis=1)


def _always_cancel_thresholds(choices: np.ndarray) -> np.ndarray:
    thresholds = np.full(choices.shape, _INF)
    thresholds[:, 0] = -_INF
    return thresholds


def _always_maximal_thresholds(choices: np.ndarray) -> np.ndarray:
    return np.full(choices.shape, -_INF)


#: Starting profiles of the equilibrium search, in the reference order
#: of ``BargainingGame._default_starting_profiles``.
_STARTING_PROFILES = (
    (_truthful_thresholds, _truthful_thresholds),
    (_truthful_thresholds, _always_cancel_thresholds),
    (_always_cancel_thresholds, _truthful_thresholds),
    (_always_maximal_thresholds, _always_maximal_thresholds),
)
