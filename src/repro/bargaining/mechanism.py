"""The BOSCO service: choice-set construction and automated negotiation (§V).

BOSCO (Bargaining in One Shot with Choice Optimization) works in three
stages:

1. *Configuration*: given utility-distribution estimates for both
   parties, the service constructs choice sets (by random sampling from
   the distributions, §V-E), computes a Nash equilibrium of the induced
   bargaining game, and rates it by the Price of Dishonesty.  Several
   random trials are performed and the best configuration is kept.
2. *Publication*: the mechanism-information set (distributions, choice
   sets, equilibrium) is communicated to the parties, which can verify
   that the published profile really is an equilibrium.
3. *Negotiation*: each party applies its equilibrium strategy to its
   private true utility and commits the resulting claim; the service
   concludes the agreement iff the apparent surplus is non-negative and
   settles the cash compensation ``Π = (v_X − v_Y)/2``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.bargaining.choices import ChoiceSet, quantile_choice_set, random_choice_set
from repro.bargaining.distributions import JointUtilityDistribution
from repro.bargaining.efficiency import (
    expected_nash_product,
    expected_truthful_nash_product,
    price_of_dishonesty,
)
from repro.bargaining.engine import (
    BatchedEquilibria,
    GameBatch,
    NegotiationEngine,
    batched_claims,
)
from repro.bargaining.game import BargainingGame, EquilibriumError, StrategyProfile


@dataclass(frozen=True)
class MechanismInformation:
    """The mechanism-information set published to the negotiating parties."""

    distribution: JointUtilityDistribution
    choices_x: ChoiceSet
    choices_y: ChoiceSet
    equilibrium: StrategyProfile
    price_of_dishonesty: float
    expected_nash_product: float

    def game(self) -> BargainingGame:
        """The bargaining game induced by this configuration."""
        return BargainingGame(
            distribution_x=self.distribution.marginal_x,
            distribution_y=self.distribution.marginal_y,
            choices_x=self.choices_x,
            choices_y=self.choices_y,
        )

    def verify_equilibrium(self) -> bool:
        """Party-side check that the published profile is a Nash equilibrium."""
        return self.game().is_equilibrium(self.equilibrium)


class NegotiationOutcome(NamedTuple):
    """Result of one BOSCO-mediated negotiation.

    A ``NamedTuple`` rather than a frozen dataclass: the marketplace
    lifecycle constructs one outcome per negotiation per flush, and
    tuple construction (``_make``) is what keeps the batched
    :meth:`BoscoService.negotiate_many` path cheap at
    tens-of-thousands-of-pairs cohort sizes.
    """

    claim_x: float
    claim_y: float
    concluded: bool
    transfer_x_to_y: float
    true_utility_x: float
    true_utility_y: float

    @property
    def post_utility_x(self) -> float:
        """After-negotiation utility of party X."""
        if not self.concluded:
            return 0.0
        return self.true_utility_x - self.transfer_x_to_y

    @property
    def post_utility_y(self) -> float:
        """After-negotiation utility of party Y."""
        if not self.concluded:
            return 0.0
        return self.true_utility_y + self.transfer_x_to_y

    @property
    def nash_product(self) -> float:
        """Nash product of the after-negotiation utilities."""
        return self.post_utility_x * self.post_utility_y


@dataclass(frozen=True)
class ChoiceSetTrialResult:
    """Outcome of one random choice-set trial during configuration."""

    information: MechanismInformation | None
    converged: bool


@dataclass(frozen=True)
class BatchSolution:
    """Solved equilibria and ratings of one batch of configuration trials."""

    equilibria: "BatchedEquilibria"
    nash_products: np.ndarray
    pods: np.ndarray


@dataclass(frozen=True)
class SolvedCohort:
    """One caller's trials, solved (possibly inside a larger packed batch)."""

    batch: GameBatch
    solution: BatchSolution


def draw_trial_pairs(
    distribution: JointUtilityDistribution,
    num_choices: int,
    trials: int,
    *,
    seed: int,
) -> list[tuple[ChoiceSet, ChoiceSet]]:
    """Draw the random choice-set pairs of ``trials`` configuration trials.

    Exactly the draws a ``BoscoService(distribution, seed=seed)`` with
    ``choice_construction="random"`` would consume for the same number
    of trials: a fresh ``default_rng(seed)``, X before Y per trial.  A
    cohort drawn here is therefore independent of *when* and *with
    whom* it is later solved — the seam the ``repro serve`` coalescer
    relies on to pack concurrent callers into one batch.
    """
    rng = np.random.default_rng(seed)
    return [
        (
            random_choice_set(distribution.marginal_x, num_choices, rng),
            random_choice_set(distribution.marginal_y, num_choices, rng),
        )
        for _ in range(trials)
    ]


def solve_trial_cohorts(
    engine: NegotiationEngine,
    distribution: JointUtilityDistribution,
    cohorts: Sequence[Sequence[tuple[ChoiceSet, ChoiceSet]]],
    *,
    truthful_value: float | None = None,
) -> list[SolvedCohort]:
    """Solve several independently drawn trial cohorts in **one** batch.

    The batch entry point for externally packed cohorts: every cohort is
    one caller's list of choice-set pairs (all under the same joint
    ``distribution`` and cardinality — the :class:`GameBatch` packing
    contract).  All pairs are concatenated into a single batch, solved
    with one :meth:`NegotiationEngine.solve` /
    :meth:`~NegotiationEngine.expected_nash_products` /
    :meth:`~NegotiationEngine.prices_of_dishonesty` pass, and unpacked
    into per-cohort row slices.

    Because every engine method is row-independent, each returned
    :class:`SolvedCohort` is **bit-identical** to solving that cohort
    alone — which is what lets ``repro serve`` coalesce concurrent
    clients' negotiation requests without changing a byte of any
    client's response.
    """
    if not cohorts:
        return []
    sizes = [len(cohort) for cohort in cohorts]
    if any(size == 0 for size in sizes):
        raise ValueError("every cohort needs at least one trial")
    all_pairs = [pair for cohort in cohorts for pair in cohort]
    packed = GameBatch.from_choice_sets(distribution, all_pairs)
    equilibria = engine.solve(packed)
    values = engine.expected_nash_products(packed, equilibria)
    if truthful_value is None:
        truthful_value = expected_truthful_nash_product(distribution)
    pods = engine.prices_of_dishonesty(values, truthful_value)
    solved = []
    start = 0
    for size in sizes:
        selector = slice(start, start + size)
        solved.append(
            SolvedCohort(
                batch=packed.rows(selector),
                solution=BatchSolution(
                    equilibria=equilibria.rows(selector),
                    nash_products=values[selector],
                    pods=pods[selector],
                ),
            )
        )
        start += size
    return solved


class BoscoService:
    """Configures and supervises BOSCO negotiations.

    ``backend`` selects how configuration trials are evaluated:
    ``"batched"`` (the default) packs all random trials of a
    :meth:`configure` / :meth:`pod_statistics` call into one
    :class:`~repro.bargaining.engine.GameBatch` and solves them with the
    :class:`~repro.bargaining.engine.NegotiationEngine`'s array kernels;
    ``"reference"`` keeps the original one-trial-at-a-time Python path.
    Both backends draw choice sets in the identical RNG order and the
    engine is bit-exact, so the two produce byte-identical seeded
    results — the reference path survives as the testing fallback the
    equivalence suite compares against.

    Non-converging trials are no longer silently dropped:
    :attr:`skipped_trials` accumulates how many configuration trials
    failed to reach an equilibrium over the service's lifetime.
    """

    def __init__(
        self,
        distribution: JointUtilityDistribution,
        *,
        seed: int = 0,
        choice_construction: str = "random",
        backend: str = "batched",
        engine: NegotiationEngine | None = None,
    ) -> None:
        if choice_construction not in ("random", "quantile"):
            raise ValueError(
                f"choice_construction must be 'random' or 'quantile', got "
                f"{choice_construction!r}"
            )
        if backend not in ("batched", "reference"):
            raise ValueError(
                f"backend must be 'batched' or 'reference', got {backend!r}"
            )
        self.distribution = distribution
        self.choice_construction = choice_construction
        self.backend = backend
        self.engine = engine if engine is not None else NegotiationEngine()
        self.skipped_trials = 0
        self._rng = np.random.default_rng(seed)
        self._truthful_value = expected_truthful_nash_product(distribution)

    @property
    def truthful_expected_nash_product(self) -> float:
        """``E[N | σ⊤]`` under the configured distribution."""
        return self._truthful_value

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _draw_choice_sets(
        self, num_choices_x: int, num_choices_y: int
    ) -> tuple[ChoiceSet, ChoiceSet]:
        """Construct one trial's choice sets (X first, then Y).

        Both backends call this in the same per-trial order, so the
        random draws consume the service RNG identically and the batched
        path sees byte-identical choice sets.
        """
        if self.choice_construction == "random":
            return (
                random_choice_set(self.distribution.marginal_x, num_choices_x, self._rng),
                random_choice_set(self.distribution.marginal_y, num_choices_y, self._rng),
            )
        return (
            quantile_choice_set(self.distribution.marginal_x, num_choices_x),
            quantile_choice_set(self.distribution.marginal_y, num_choices_y),
        )

    def run_trial(self, num_choices_x: int, num_choices_y: int) -> ChoiceSetTrialResult:
        """Run one choice-set construction trial and evaluate its equilibrium.

        This is the naive reference path: one game at a time, pure
        Python.  The batched backend reproduces it bit for bit.
        """
        choices_x, choices_y = self._draw_choice_sets(num_choices_x, num_choices_y)
        game = BargainingGame(
            distribution_x=self.distribution.marginal_x,
            distribution_y=self.distribution.marginal_y,
            choices_x=choices_x,
            choices_y=choices_y,
        )
        try:
            equilibrium = game.find_equilibrium()
        except EquilibriumError:
            return ChoiceSetTrialResult(information=None, converged=False)
        pod = price_of_dishonesty(
            equilibrium, self.distribution, truthful_value=self._truthful_value
        )
        information = MechanismInformation(
            distribution=self.distribution,
            choices_x=choices_x,
            choices_y=choices_y,
            equilibrium=equilibrium,
            price_of_dishonesty=pod,
            expected_nash_product=expected_nash_product(equilibrium, self.distribution),
        )
        return ChoiceSetTrialResult(information=information, converged=True)

    def _solve_trials(
        self, num_choices: int, trials: int
    ) -> tuple[GameBatch, "BatchSolution"]:
        """Draw ``trials`` choice-set pairs and solve them in one batch."""
        pairs = [self._draw_choice_sets(num_choices, num_choices) for _ in range(trials)]
        solved = solve_trial_cohorts(
            self.engine,
            self.distribution,
            [pairs],
            truthful_value=self._truthful_value,
        )[0]
        return solved.batch, solved.solution

    def configure(
        self,
        num_choices: int,
        *,
        trials: int = 20,
    ) -> MechanismInformation:
        """Pick the best configuration out of several random trials.

        ``num_choices`` is the number of finite choices per party (the
        paper's ``W_X = W_Y``); the configuration with the lowest Price
        of Dishonesty is returned.  Non-converging trials are counted in
        :attr:`skipped_trials` rather than silently retried.
        """
        if trials < 1:
            raise ValueError("at least one trial is required")
        if self.backend == "reference":
            return self._configure_reference(num_choices, trials)
        batch, solution = self._solve_trials(num_choices, trials)
        equilibria = solution.equilibria
        best: int | None = None
        for trial in range(trials):
            if not equilibria.converged[trial]:
                continue
            if best is None or solution.pods[trial] < solution.pods[best]:
                best = trial
        skipped = trials - int(equilibria.converged.sum())
        self.skipped_trials += skipped
        if best is None:
            raise EquilibriumError(
                "no choice-set trial produced a converging equilibrium",
                iterations=int(np.max(equilibria.iterations, initial=0)),
                last_delta=float(np.nanmax(equilibria.last_delta)),
                skipped_trials=skipped,
            )
        return MechanismInformation(
            distribution=self.distribution,
            choices_x=batch.sets_x[best],
            choices_y=batch.sets_y[best],
            equilibrium=equilibria.profile(batch, best),
            price_of_dishonesty=float(solution.pods[best]),
            expected_nash_product=float(solution.nash_products[best]),
        )

    def _configure_reference(self, num_choices: int, trials: int) -> MechanismInformation:
        """The original per-trial configuration loop (testing fallback)."""
        best: MechanismInformation | None = None
        skipped = 0
        for _ in range(trials):
            result = self.run_trial(num_choices, num_choices)
            if result.information is None:
                skipped += 1
                continue
            if best is None or result.information.price_of_dishonesty < best.price_of_dishonesty:
                best = result.information
        self.skipped_trials += skipped
        if best is None:
            raise EquilibriumError(
                "no choice-set trial produced a converging equilibrium",
                skipped_trials=skipped,
            )
        return best

    def pod_statistics(
        self,
        num_choices: int,
        *,
        trials: int = 200,
    ) -> dict[str, float]:
        """Minimum and mean PoD over random choice-set trials (Fig. 2 data).

        ``skipped_trials`` reports how many of the requested trials did
        not converge (their PoD is excluded from the statistics, as in
        the paper's evaluation).
        """
        if self.backend == "reference":
            return self._pod_statistics_reference(num_choices, trials)
        batch, solution = self._solve_trials(num_choices, trials)
        equilibria = solution.equilibria
        counts_x, counts_y = self.engine.equilibrium_choice_counts(equilibria)
        pods = []
        equilibrium_choice_counts = []
        for trial in range(trials):
            if not equilibria.converged[trial]:
                continue
            pods.append(float(solution.pods[trial]))
            equilibrium_choice_counts.append(
                (int(counts_x[trial]) + int(counts_y[trial])) / 2.0
            )
        skipped = trials - len(pods)
        self.skipped_trials += skipped
        if not pods:
            raise EquilibriumError(
                "no trial converged; cannot compute PoD statistics",
                skipped_trials=skipped,
            )
        return self._pod_summary(pods, equilibrium_choice_counts, skipped)

    def _pod_statistics_reference(
        self, num_choices: int, trials: int
    ) -> dict[str, float]:
        """The original per-trial PoD loop (testing fallback)."""
        pods = []
        equilibrium_choice_counts = []
        for _ in range(trials):
            result = self.run_trial(num_choices, num_choices)
            if result.information is None:
                continue
            pods.append(result.information.price_of_dishonesty)
            profile = result.information.equilibrium
            equilibrium_choice_counts.append(
                (
                    len(profile.strategy_x.equilibrium_choice_indices())
                    + len(profile.strategy_y.equilibrium_choice_indices())
                )
                / 2.0
            )
        skipped = trials - len(pods)
        self.skipped_trials += skipped
        if not pods:
            raise EquilibriumError(
                "no trial converged; cannot compute PoD statistics",
                skipped_trials=skipped,
            )
        return self._pod_summary(pods, equilibrium_choice_counts, skipped)

    @staticmethod
    def _pod_summary(
        pods: list[float], equilibrium_choice_counts: list[float], skipped: int
    ) -> dict[str, float]:
        return {
            "min": float(np.min(pods)),
            "mean": float(np.mean(pods)),
            "max": float(np.max(pods)),
            "trials": float(len(pods)),
            "mean_equilibrium_choices": float(np.mean(equilibrium_choice_counts)),
            "skipped_trials": float(skipped),
        }

    # ------------------------------------------------------------------
    # Negotiation
    # ------------------------------------------------------------------
    @staticmethod
    def negotiate(
        information: MechanismInformation,
        true_utility_x: float,
        true_utility_y: float,
    ) -> NegotiationOutcome:
        """Execute the bargaining game with the published equilibrium strategies."""
        claim_x = information.equilibrium.strategy_x(true_utility_x)
        claim_y = information.equilibrium.strategy_y(true_utility_y)
        concluded = claim_x + claim_y >= 0.0
        transfer = (claim_x - claim_y) / 2.0 if concluded else 0.0
        return NegotiationOutcome(
            claim_x=claim_x,
            claim_y=claim_y,
            concluded=concluded,
            transfer_x_to_y=transfer,
            true_utility_x=true_utility_x,
            true_utility_y=true_utility_y,
        )

    @staticmethod
    def negotiate_many(
        information: MechanismInformation,
        true_utilities_x: Sequence[float],
        true_utilities_y: Sequence[float],
    ) -> list[NegotiationOutcome]:
        """Execute many negotiations under one published configuration.

        The batched twin of :meth:`negotiate` — claims for all instances
        come from two vectorized threshold lookups
        (:func:`~repro.bargaining.engine.batched_claims`), and each
        outcome is bit-identical to the scalar path.  This is what the
        simulation lifecycle calls once per billing epoch for every
        agreement due for (re)negotiation.
        """
        if len(true_utilities_x) != len(true_utilities_y):
            raise ValueError(
                "need one utility per party and instance, got "
                f"{len(true_utilities_x)} x-utilities and "
                f"{len(true_utilities_y)} y-utilities"
            )
        if not len(true_utilities_x):
            return []
        claims_x = batched_claims(
            information.equilibrium.strategy_x,
            np.asarray(true_utilities_x, dtype=np.float64),
        )
        claims_y = batched_claims(
            information.equilibrium.strategy_y,
            np.asarray(true_utilities_y, dtype=np.float64),
        )
        # Vectorized conclusion test and transfer; the transfer is
        # computed only where concluded (the scalar path's guard), so
        # opposing infinite claims never produce a NaN.
        concluded = claims_x + claims_y >= 0.0
        transfers = np.zeros(len(claims_x))
        transfers[concluded] = (claims_x[concluded] - claims_y[concluded]) / 2.0
        return list(
            map(
                NegotiationOutcome._make,
                zip(
                    claims_x.tolist(),
                    claims_y.tolist(),
                    concluded.tolist(),
                    transfers.tolist(),
                    map(float, true_utilities_x),
                    map(float, true_utilities_y),
                ),
            )
        )
