"""The BOSCO service: choice-set construction and automated negotiation (§V).

BOSCO (Bargaining in One Shot with Choice Optimization) works in three
stages:

1. *Configuration*: given utility-distribution estimates for both
   parties, the service constructs choice sets (by random sampling from
   the distributions, §V-E), computes a Nash equilibrium of the induced
   bargaining game, and rates it by the Price of Dishonesty.  Several
   random trials are performed and the best configuration is kept.
2. *Publication*: the mechanism-information set (distributions, choice
   sets, equilibrium) is communicated to the parties, which can verify
   that the published profile really is an equilibrium.
3. *Negotiation*: each party applies its equilibrium strategy to its
   private true utility and commits the resulting claim; the service
   concludes the agreement iff the apparent surplus is non-negative and
   settles the cash compensation ``Π = (v_X − v_Y)/2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bargaining.choices import ChoiceSet, quantile_choice_set, random_choice_set
from repro.bargaining.distributions import JointUtilityDistribution
from repro.bargaining.efficiency import (
    expected_nash_product,
    expected_truthful_nash_product,
    price_of_dishonesty,
)
from repro.bargaining.game import BargainingGame, EquilibriumError, StrategyProfile


@dataclass(frozen=True)
class MechanismInformation:
    """The mechanism-information set published to the negotiating parties."""

    distribution: JointUtilityDistribution
    choices_x: ChoiceSet
    choices_y: ChoiceSet
    equilibrium: StrategyProfile
    price_of_dishonesty: float
    expected_nash_product: float

    def game(self) -> BargainingGame:
        """The bargaining game induced by this configuration."""
        return BargainingGame(
            distribution_x=self.distribution.marginal_x,
            distribution_y=self.distribution.marginal_y,
            choices_x=self.choices_x,
            choices_y=self.choices_y,
        )

    def verify_equilibrium(self) -> bool:
        """Party-side check that the published profile is a Nash equilibrium."""
        return self.game().is_equilibrium(self.equilibrium)


@dataclass(frozen=True)
class NegotiationOutcome:
    """Result of one BOSCO-mediated negotiation."""

    claim_x: float
    claim_y: float
    concluded: bool
    transfer_x_to_y: float
    true_utility_x: float
    true_utility_y: float

    @property
    def post_utility_x(self) -> float:
        """After-negotiation utility of party X."""
        if not self.concluded:
            return 0.0
        return self.true_utility_x - self.transfer_x_to_y

    @property
    def post_utility_y(self) -> float:
        """After-negotiation utility of party Y."""
        if not self.concluded:
            return 0.0
        return self.true_utility_y + self.transfer_x_to_y

    @property
    def nash_product(self) -> float:
        """Nash product of the after-negotiation utilities."""
        return self.post_utility_x * self.post_utility_y


@dataclass(frozen=True)
class ChoiceSetTrialResult:
    """Outcome of one random choice-set trial during configuration."""

    information: MechanismInformation | None
    converged: bool


class BoscoService:
    """Configures and supervises BOSCO negotiations."""

    def __init__(
        self,
        distribution: JointUtilityDistribution,
        *,
        seed: int = 0,
        choice_construction: str = "random",
    ) -> None:
        if choice_construction not in ("random", "quantile"):
            raise ValueError(
                f"choice_construction must be 'random' or 'quantile', got "
                f"{choice_construction!r}"
            )
        self.distribution = distribution
        self.choice_construction = choice_construction
        self._rng = np.random.default_rng(seed)
        self._truthful_value = expected_truthful_nash_product(distribution)

    @property
    def truthful_expected_nash_product(self) -> float:
        """``E[N | σ⊤]`` under the configured distribution."""
        return self._truthful_value

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def run_trial(self, num_choices_x: int, num_choices_y: int) -> ChoiceSetTrialResult:
        """Run one choice-set construction trial and evaluate its equilibrium."""
        if self.choice_construction == "random":
            choices_x = random_choice_set(
                self.distribution.marginal_x, num_choices_x, self._rng
            )
            choices_y = random_choice_set(
                self.distribution.marginal_y, num_choices_y, self._rng
            )
        else:
            choices_x = quantile_choice_set(self.distribution.marginal_x, num_choices_x)
            choices_y = quantile_choice_set(self.distribution.marginal_y, num_choices_y)
        game = BargainingGame(
            distribution_x=self.distribution.marginal_x,
            distribution_y=self.distribution.marginal_y,
            choices_x=choices_x,
            choices_y=choices_y,
        )
        try:
            equilibrium = game.find_equilibrium()
        except EquilibriumError:
            return ChoiceSetTrialResult(information=None, converged=False)
        pod = price_of_dishonesty(
            equilibrium, self.distribution, truthful_value=self._truthful_value
        )
        information = MechanismInformation(
            distribution=self.distribution,
            choices_x=choices_x,
            choices_y=choices_y,
            equilibrium=equilibrium,
            price_of_dishonesty=pod,
            expected_nash_product=expected_nash_product(equilibrium, self.distribution),
        )
        return ChoiceSetTrialResult(information=information, converged=True)

    def configure(
        self,
        num_choices: int,
        *,
        trials: int = 20,
    ) -> MechanismInformation:
        """Pick the best configuration out of several random trials.

        ``num_choices`` is the number of finite choices per party (the
        paper's ``W_X = W_Y``); the configuration with the lowest Price
        of Dishonesty is returned.
        """
        if trials < 1:
            raise ValueError("at least one trial is required")
        best: MechanismInformation | None = None
        for _ in range(trials):
            result = self.run_trial(num_choices, num_choices)
            if result.information is None:
                continue
            if best is None or result.information.price_of_dishonesty < best.price_of_dishonesty:
                best = result.information
        if best is None:
            raise EquilibriumError(
                "no choice-set trial produced a converging equilibrium"
            )
        return best

    def pod_statistics(
        self,
        num_choices: int,
        *,
        trials: int = 200,
    ) -> dict[str, float]:
        """Minimum and mean PoD over random choice-set trials (Fig. 2 data)."""
        pods = []
        equilibrium_choice_counts = []
        for _ in range(trials):
            result = self.run_trial(num_choices, num_choices)
            if result.information is None:
                continue
            pods.append(result.information.price_of_dishonesty)
            profile = result.information.equilibrium
            equilibrium_choice_counts.append(
                (
                    len(profile.strategy_x.equilibrium_choice_indices())
                    + len(profile.strategy_y.equilibrium_choice_indices())
                )
                / 2.0
            )
        if not pods:
            raise EquilibriumError("no trial converged; cannot compute PoD statistics")
        return {
            "min": float(np.min(pods)),
            "mean": float(np.mean(pods)),
            "max": float(np.max(pods)),
            "trials": float(len(pods)),
            "mean_equilibrium_choices": float(np.mean(equilibrium_choice_counts)),
        }

    # ------------------------------------------------------------------
    # Negotiation
    # ------------------------------------------------------------------
    @staticmethod
    def negotiate(
        information: MechanismInformation,
        true_utility_x: float,
        true_utility_y: float,
    ) -> NegotiationOutcome:
        """Execute the bargaining game with the published equilibrium strategies."""
        claim_x = information.equilibrium.strategy_x(true_utility_x)
        claim_y = information.equilibrium.strategy_y(true_utility_y)
        concluded = claim_x + claim_y >= 0.0
        transfer = (claim_x - claim_y) / 2.0 if concluded else 0.0
        return NegotiationOutcome(
            claim_x=claim_x,
            claim_y=claim_y,
            concluded=concluded,
            transfer_x_to_y=transfer,
            true_utility_x=true_utility_x,
            true_utility_y=true_utility_y,
        )
