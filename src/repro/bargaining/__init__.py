"""The BOSCO bargaining mechanism (§V).

Utility distributions, choice sets, threshold strategies and the
best-response computation of Algorithm 1, Nash equilibria of the
bargaining game, bargaining-efficiency metrics (expected Nash product,
Price of Dishonesty), and the BOSCO service that configures and
supervises automated inter-AS negotiations.
"""

from repro.bargaining.baselines import (
    PostedPriceMechanism,
    PostedPriceOutcome,
    optimal_posted_price,
)
from repro.bargaining.choices import (
    CANCEL,
    ChoiceSet,
    quantile_choice_set,
    random_choice_set,
)
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    TruncatedNormalUtilityDistribution,
    UniformUtilityDistribution,
    UtilityDistribution,
    paper_distribution_u1,
    paper_distribution_u2,
)
from repro.bargaining.efficiency import (
    expected_nash_product,
    expected_truthful_nash_product,
    nash_product_value,
    price_of_dishonesty,
)
from repro.bargaining.engine import (
    BatchedEquilibria,
    DistributionKernel,
    GameBatch,
    NegotiationEngine,
    batched_claims,
    kernel_for,
)
from repro.bargaining.game import (
    BargainingGame,
    EquilibriumError,
    StrategyProfile,
    choice_probabilities,
    profile_delta,
    response_lines,
)
from repro.bargaining.mechanism import (
    BoscoService,
    ChoiceSetTrialResult,
    MechanismInformation,
    NegotiationOutcome,
)
from repro.bargaining.strategy import (
    ThresholdStrategy,
    compute_best_response,
    truthful_like_strategy,
)

__all__ = [
    "UtilityDistribution",
    "UniformUtilityDistribution",
    "TruncatedNormalUtilityDistribution",
    "JointUtilityDistribution",
    "paper_distribution_u1",
    "paper_distribution_u2",
    "CANCEL",
    "ChoiceSet",
    "random_choice_set",
    "quantile_choice_set",
    "ThresholdStrategy",
    "truthful_like_strategy",
    "compute_best_response",
    "BargainingGame",
    "StrategyProfile",
    "EquilibriumError",
    "choice_probabilities",
    "profile_delta",
    "response_lines",
    "NegotiationEngine",
    "GameBatch",
    "BatchedEquilibria",
    "DistributionKernel",
    "batched_claims",
    "kernel_for",
    "nash_product_value",
    "expected_nash_product",
    "expected_truthful_nash_product",
    "price_of_dishonesty",
    "BoscoService",
    "MechanismInformation",
    "NegotiationOutcome",
    "ChoiceSetTrialResult",
    "PostedPriceMechanism",
    "PostedPriceOutcome",
    "optimal_posted_price",
]
