"""Baseline bargaining mechanisms to compare against BOSCO (§V-B).

The paper motivates BOSCO by arguing that perfectly incentive-compatible
mechanisms often pay for truthfulness with cancelled negotiations (e.g.
Myerson's randomized arbitration), so a mechanism that tolerates small,
structured deviations from truthfulness can be *more* efficient.  To make
that comparison concrete, this module implements the classic
**posted-price arbitration** baseline:

- the arbitrator draws (or optimizes) a single cash transfer ``Π``,
- each party simultaneously accepts or rejects; accepting is a dominant
  strategy exactly when the party's after-transfer utility is
  non-negative, so the mechanism is dominant-strategy incentive
  compatible (DSIC),
- the agreement is concluded iff both accept, with transfer ``Π``.

The mechanism is budget-balanced and ex-post individually rational, but
it is not ex-post efficient: agreements whose surplus is positive but
"straddles" the posted price are cancelled.  Its efficiency can be
evaluated with the same expected-Nash-product / Price-of-Dishonesty
machinery used for BOSCO, which is what the comparison benchmark does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bargaining.distributions import JointUtilityDistribution
from repro.bargaining.efficiency import expected_truthful_nash_product


@dataclass(frozen=True)
class PostedPriceOutcome:
    """Result of one posted-price arbitration."""

    price: float
    accepted_x: bool
    accepted_y: bool
    true_utility_x: float
    true_utility_y: float

    @property
    def concluded(self) -> bool:
        """Whether both parties accepted the posted transfer."""
        return self.accepted_x and self.accepted_y

    @property
    def post_utility_x(self) -> float:
        """After-arbitration utility of party X."""
        return self.true_utility_x - self.price if self.concluded else 0.0

    @property
    def post_utility_y(self) -> float:
        """After-arbitration utility of party Y."""
        return self.true_utility_y + self.price if self.concluded else 0.0

    @property
    def nash_product(self) -> float:
        """Nash product of the after-arbitration utilities."""
        return self.post_utility_x * self.post_utility_y


class PostedPriceMechanism:
    """Posted-price (take-it-or-leave-it) arbitration between two ASes."""

    def __init__(self, price: float) -> None:
        self.price = float(price)

    def arbitrate(self, true_utility_x: float, true_utility_y: float) -> PostedPriceOutcome:
        """Run one arbitration with the truthful dominant strategies."""
        accepted_x = true_utility_x - self.price >= 0.0
        accepted_y = true_utility_y + self.price >= 0.0
        return PostedPriceOutcome(
            price=self.price,
            accepted_x=accepted_x,
            accepted_y=accepted_y,
            true_utility_x=true_utility_x,
            true_utility_y=true_utility_y,
        )

    def expected_nash_product(
        self, distribution: JointUtilityDistribution
    ) -> float:
        """Expected Nash product under the joint utility distribution.

        The acceptance region is the product set
        ``{u_X ≥ Π} × {u_Y ≥ −Π}``, so for independent marginals the
        integral factorizes into partial moments of the marginals —
        the same decomposition used for BOSCO's threshold strategies.
        """
        marginal_x = distribution.marginal_x
        marginal_y = distribution.marginal_y
        low_x = max(self.price, marginal_x.lower)
        low_y = max(-self.price, marginal_y.lower)
        if low_x >= marginal_x.upper or low_y >= marginal_y.upper:
            return 0.0
        mass_x = marginal_x.mass(low_x, marginal_x.upper)
        mean_x = marginal_x.partial_mean(low_x, marginal_x.upper)
        mass_y = marginal_y.mass(low_y, marginal_y.upper)
        mean_y = marginal_y.partial_mean(low_y, marginal_y.upper)
        return (mean_x - self.price * mass_x) * (mean_y + self.price * mass_y)

    def efficiency_loss(self, distribution: JointUtilityDistribution) -> float:
        """Efficiency loss relative to universal truthfulness (PoD analogue)."""
        truthful = expected_truthful_nash_product(distribution)
        if truthful <= 0.0:
            raise ValueError(
                "the efficiency loss is undefined when the truthful expected Nash "
                "product is zero"
            )
        value = self.expected_nash_product(distribution)
        return min(1.0, max(0.0, 1.0 - value / truthful))


def optimal_posted_price(
    distribution: JointUtilityDistribution,
    *,
    grid_size: int = 201,
) -> PostedPriceMechanism:
    """The posted price maximizing the expected Nash product.

    The price is searched on a grid spanning the range of transfers that
    could possibly be accepted by both parties; the expected Nash product
    is piecewise smooth in the price, so a grid search is adequate.
    """
    marginal_x = distribution.marginal_x
    marginal_y = distribution.marginal_y
    low = max(marginal_x.lower, -marginal_y.upper)
    high = min(marginal_x.upper, -marginal_y.lower)
    if high <= low:
        # Any price in the feasible band works equally (nothing concludes);
        # return the midpoint of the parties' supports as a neutral choice.
        return PostedPriceMechanism((marginal_x.mean - marginal_y.mean) / 2.0)
    prices = np.linspace(low, high, grid_size)
    best_price = float(prices[0])
    best_value = -np.inf
    for price in prices:
        value = PostedPriceMechanism(float(price)).expected_nash_product(distribution)
        if value > best_value:
            best_value = value
            best_price = float(price)
    return PostedPriceMechanism(best_price)
