"""Choice sets of the BOSCO bargaining game (§V-C2 and §V-E).

Each party commits to one *choice* (a utility claim) from a finite
choice set constructed by the BOSCO service.  Every choice set contains
the sentinel ``−∞`` with which a party can cancel the negotiation, which
is what gives the mechanism strong individual rationality.

§V-E finds that *randomly sampling* the finite choices from the party's
utility distribution works well in practice; the quantile-spaced
construction is provided as the ablation alternative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bargaining.distributions import UtilityDistribution

CANCEL: float = float("-inf")


@dataclass(frozen=True)
class ChoiceSet:
    """A finite, ordered set of claims available to one party.

    The first entry is always the cancel option ``−∞``; the remaining
    entries are finite and strictly increasing.
    """

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a choice set cannot be empty")
        if self.values[0] != CANCEL:
            raise ValueError("the first choice must be the cancel option −∞")
        finite = self.values[1:]
        if any(not math.isfinite(value) for value in finite):
            raise ValueError("all choices besides the cancel option must be finite")
        if any(b <= a for a, b in zip(finite, finite[1:])):
            raise ValueError("choices must be strictly increasing")

    @classmethod
    def from_values(cls, values: list[float] | tuple[float, ...]) -> "ChoiceSet":
        """Build a choice set from finite values; the cancel option is added."""
        finite = sorted(set(float(v) for v in values))
        if any(not math.isfinite(v) for v in finite):
            raise ValueError("values must be finite; the cancel option is added automatically")
        return cls(values=(CANCEL, *finite))

    @property
    def cardinality(self) -> int:
        """Number of choices ``W`` including the cancel option."""
        return len(self.values)

    @property
    def finite_values(self) -> tuple[float, ...]:
        """All choices except the cancel option."""
        return self.values[1:]

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def index_of(self, value: float) -> int:
        """Index of a choice value."""
        return self.values.index(value)


def random_choice_set(
    distribution: UtilityDistribution,
    size: int,
    rng: np.random.Generator,
) -> ChoiceSet:
    """Sample ``size`` finite choices from a utility distribution (§V-E)."""
    if size < 1:
        raise ValueError("a choice set needs at least one finite choice")
    samples: set[float] = set()
    # Re-draw on collisions so the requested cardinality is reached even
    # for small supports (collisions have probability zero anyway for
    # continuous distributions, but floating-point duplicates can occur).
    attempts = 0
    while len(samples) < size and attempts < 100:
        draw = distribution.sample(rng, size=size - len(samples))
        samples.update(float(v) for v in np.atleast_1d(draw))
        attempts += 1
    return ChoiceSet.from_values(sorted(samples))


def quantile_choice_set(distribution: UtilityDistribution, size: int) -> ChoiceSet:
    """Deterministic choice set at evenly spaced quantiles of the distribution.

    Used as the ablation alternative to the paper's random construction.
    For distributions with an analytic mass function, the quantiles are
    found by bisection over the support.
    """
    if size < 1:
        raise ValueError("a choice set needs at least one finite choice")
    values = []
    for k in range(1, size + 1):
        target = k / (size + 1)
        low, high = distribution.lower, distribution.upper
        for _ in range(60):
            mid = (low + high) / 2.0
            if distribution.mass(distribution.lower, mid) < target:
                low = mid
            else:
                high = mid
        values.append((low + high) / 2.0)
    return ChoiceSet.from_values(values)
