"""Bargaining efficiency: expected Nash product and Price of Dishonesty (§V-C6).

The BOSCO service rates an equilibrium by the expected Nash bargaining
product it induces under the joint utility distribution (Eq. 19) and
compares it to the expected Nash product under universal truthfulness.
The *Price of Dishonesty*

``PoD(σ*) = 1 − E[N | σ*] / E[N | σ⊤]``                         (Eq. 20)

is always in ``[0, 1]`` (Theorem 3) and quantifies the efficiency loss
caused by strategic (non-truthful) claiming.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bargaining.distributions import JointUtilityDistribution, UtilityDistribution
from repro.bargaining.game import StrategyProfile
from repro.bargaining.strategy import ThresholdStrategy


def nash_product_value(
    utility_x: float, utility_y: float, claim_x: float, claim_y: float
) -> float:
    """The Nash bargaining product ``N(u_X, u_Y, v_X, v_Y)`` (Eq. 13).

    Zero when the apparent surplus ``v_X + v_Y`` is negative (the
    negotiation is cancelled); otherwise the product of the two parties'
    after-negotiation utilities given the transfer ``(v_X − v_Y)/2``.
    """
    if math.isinf(claim_x) or math.isinf(claim_y) or claim_x + claim_y < 0.0:
        return 0.0
    transfer = (claim_x - claim_y) / 2.0
    return (utility_x - transfer) * (utility_y + transfer)


def expected_nash_product(
    profile: StrategyProfile,
    distribution: JointUtilityDistribution,
) -> float:
    """Expected Nash product ``E[N | σ]`` for a strategy profile (Eq. 19).

    For independent marginals and threshold strategies, the integral
    decomposes over the rectangles formed by the two strategies'
    intervals: on each rectangle the claims are constant, so the double
    integral factorizes into products of interval masses and partial
    means of the marginal distributions.
    """
    return _expected_nash_product_rectangles(
        profile.strategy_x,
        profile.strategy_y,
        distribution.marginal_x,
        distribution.marginal_y,
    )


def _expected_nash_product_rectangles(
    strategy_x: ThresholdStrategy,
    strategy_y: ThresholdStrategy,
    marginal_x: UtilityDistribution,
    marginal_y: UtilityDistribution,
) -> float:
    total = 0.0
    for index_x in range(len(strategy_x.choices)):
        claim_x = strategy_x.choices[index_x]
        if math.isinf(claim_x):
            continue
        low_x, high_x = strategy_x.interval(index_x)
        low_x = max(low_x, marginal_x.lower)
        high_x = min(high_x, marginal_x.upper)
        if high_x <= low_x:
            continue
        mass_x = marginal_x.mass(low_x, high_x)
        mean_x = marginal_x.partial_mean(low_x, high_x)
        for index_y in range(len(strategy_y.choices)):
            claim_y = strategy_y.choices[index_y]
            if math.isinf(claim_y) or claim_x + claim_y < 0.0:
                continue
            low_y, high_y = strategy_y.interval(index_y)
            low_y = max(low_y, marginal_y.lower)
            high_y = min(high_y, marginal_y.upper)
            if high_y <= low_y:
                continue
            mass_y = marginal_y.mass(low_y, high_y)
            mean_y = marginal_y.partial_mean(low_y, high_y)
            transfer = (claim_x - claim_y) / 2.0
            # ∫∫ (u_X − Π)(u_Y + Π) f_X f_Y factorizes because Π is constant
            # on the rectangle.
            total += (mean_x - transfer * mass_x) * (mean_y + transfer * mass_y)
    return total


def expected_truthful_nash_product(
    distribution: JointUtilityDistribution,
    *,
    grid_size: int = 600,
) -> float:
    """Expected Nash product under universal truthfulness, ``E[N | σ⊤]``.

    Under truthfulness the product equals ``((u_X + u_Y)/2)²`` on the
    region ``u_X + u_Y ≥ 0`` and 0 elsewhere.  The integral is evaluated
    by midpoint quadrature on a grid over the joint support, which is
    exact enough (relative error well below 1e-3 for the paper's uniform
    distributions) and distribution-agnostic.
    """
    marginal_x = distribution.marginal_x
    marginal_y = distribution.marginal_y
    xs = np.linspace(marginal_x.lower, marginal_x.upper, grid_size + 1)
    ys = np.linspace(marginal_y.lower, marginal_y.upper, grid_size + 1)
    mid_x = (xs[:-1] + xs[1:]) / 2.0
    mid_y = (ys[:-1] + ys[1:]) / 2.0
    dx = (marginal_x.upper - marginal_x.lower) / grid_size
    dy = (marginal_y.upper - marginal_y.lower) / grid_size
    density_x = np.array([marginal_x.pdf(float(x)) for x in mid_x])
    density_y = np.array([marginal_y.pdf(float(y)) for y in mid_y])
    grid_sum = np.add.outer(mid_x, mid_y)
    payoff = np.where(grid_sum >= 0.0, (grid_sum / 2.0) ** 2, 0.0)
    weights = np.outer(density_x, density_y)
    return float(np.sum(payoff * weights) * dx * dy)


def price_of_dishonesty(
    profile: StrategyProfile,
    distribution: JointUtilityDistribution,
    *,
    truthful_value: float | None = None,
) -> float:
    """Price of Dishonesty ``PoD(σ*)`` of an equilibrium (Eq. 20).

    ``truthful_value`` can be supplied to avoid recomputing
    ``E[N | σ⊤]`` when evaluating many equilibria under the same
    distribution (as Fig. 2 does).  Raises :class:`ValueError` when the
    truthful expectation is zero (the agreement would be consistently
    unviable even under honesty), matching the paper's "undefined"
    clause.
    """
    if truthful_value is None:
        truthful_value = expected_truthful_nash_product(distribution)
    if truthful_value <= 0.0:
        raise ValueError(
            "the Price of Dishonesty is undefined when the truthful expected Nash "
            "product is zero"
        )
    value = expected_nash_product(profile, distribution)
    pod = 1.0 - value / truthful_value
    # Clamp tiny numerical overshoot; Theorem 3 guarantees PoD ∈ [0, 1].
    return min(1.0, max(0.0, pod))
