"""Declarative sweep specifications and their deterministic expansion.

A sweep spec describes a parameter-space exploration over the
reproduction's two workload families:

- **figure shards** — the paper's evaluation figures (Figs. 2–6) at a
  topology scale and seed, sharing one
  :class:`~repro.experiments.context.DiversityContext` per shard;
- **scenario shards** — ``repro simulate`` scenarios with sweepable
  knobs (any public field of the scenario dataclass), also crossed with
  scale and seed.

The grid is the cross product ``scales × seeds`` (× ``scenarios`` for
scenario shards).  Expansion is deterministic: the same spec always
yields the same shard tuple in the same order, and optional random
subsampling is itself seeded.  Shard identity (:meth:`Shard.params`) is
a canonical JSON-safe mapping — the input to the on-disk cache key.

Specs are plain JSON documents::

    {
      "name": "example",
      "scales": ["tiny", {"name": "custom", "num_tier1": 4, ...}],
      "seeds": [1, 2, 3],
      "figures": ["fig3", "fig4"],
      "scenarios": [
        {"scenario": "failure-churn", "duration": 12.0},
        {"scenario": "failure-churn", "duration": 12.0,
         "mean_time_to_failure": 60.0}
      ],
      "sample": {"count": 10, "seed": 7}
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.simulation.scenarios import SCENARIOS, scenario_field_names

#: Figures a sweep can select, in canonical order.
FIGURES: tuple[str, ...] = ("fig2", "fig3", "fig4", "fig5", "fig6")


class SweepSpecError(ValueError):
    """Raised when a sweep spec document is malformed."""


@dataclass(frozen=True)
class ScaleSpec:
    """One topology scale of the sweep's ``scales`` axis."""

    name: str
    num_tier1: int
    num_tier2: int
    num_tier3: int
    num_stubs: int
    sample_size: int
    pair_sample_size: int

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe form (field order fixed by the dataclass)."""
        return dataclasses.asdict(self)

    def topology_kwargs(self) -> dict[str, int]:
        """The topology-generator size knobs of this scale."""
        return {
            "num_tier1": self.num_tier1,
            "num_tier2": self.num_tier2,
            "num_tier3": self.num_tier3,
            "num_stubs": self.num_stubs,
        }


#: Named scales a spec can reference by string.  ``tiny`` is the CI
#: smoke scale; ``full`` matches ``repro experiments --full``.
NAMED_SCALES: dict[str, ScaleSpec] = {
    "tiny": ScaleSpec("tiny", 3, 8, 25, 70, 40, 12),
    "small": ScaleSpec("small", 4, 15, 40, 120, 80, 20),
    "default": ScaleSpec("default", 8, 30, 100, 350, 150, 40),
    "full": ScaleSpec("full", 8, 60, 200, 800, 500, 80),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One ``repro simulate`` configuration of the ``scenarios`` axis.

    ``overrides`` holds sweepable scenario knobs as a sorted tuple of
    ``(field, value)`` pairs, validated against the scenario dataclass's
    public fields.  ``label`` distinguishes configurations of the same
    scenario in shard ids and aggregation groups.
    """

    scenario: str
    label: str
    overrides: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise SweepSpecError(
                f"unknown scenario {self.scenario!r}; "
                f"available: {', '.join(sorted(SCENARIOS))}"
            )
        allowed = scenario_field_names(self.scenario)
        for key, value in self.overrides:
            if key in ("seed",):
                raise SweepSpecError(
                    "scenario overrides cannot set 'seed'; seeds are a sweep axis"
                )
            if key not in allowed:
                raise SweepSpecError(
                    f"scenario {self.scenario!r} has no sweepable field {key!r}; "
                    f"available: {', '.join(sorted(allowed))}"
                )
            # Strings are sweepable too: population spec paths make
            # agent populations a sweep axis.
            if not isinstance(value, (int, float, bool, str)):
                raise SweepSpecError(
                    f"scenario override {key!r} must be a number, bool, "
                    f"or string, got {value!r}"
                )

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe form."""
        return {
            "scenario": self.scenario,
            "label": self.label,
            "overrides": {key: value for key, value in self.overrides},
        }


@dataclass(frozen=True)
class Shard:
    """One unit of sweep work: a grid point of the expanded spec."""

    kind: str  # "figures" | "scenario"
    scale: ScaleSpec
    seed: int
    figures: tuple[str, ...] = ()
    scenario: ScenarioSpec | None = None

    @property
    def shard_id(self) -> str:
        """Human-readable unique id, stable across runs of the same spec."""
        if self.kind == "figures":
            return f"figures/{self.scale.name}/seed{self.seed}"
        assert self.scenario is not None
        return f"scenario/{self.scenario.label}/{self.scale.name}/seed{self.seed}"

    @property
    def group_id(self) -> str:
        """The shard id minus the seed — the aggregation grid point."""
        if self.kind == "figures":
            return f"figures/{self.scale.name}"
        assert self.scenario is not None
        return f"scenario/{self.scenario.label}/{self.scale.name}"

    def params(self) -> dict[str, Any]:
        """Canonical JSON-safe parameter mapping — the cache-key input."""
        record: dict[str, Any] = {
            "kind": self.kind,
            "scale": self.scale.as_dict(),
            "seed": self.seed,
        }
        if self.kind == "figures":
            record["figures"] = list(self.figures)
        else:
            assert self.scenario is not None
            record["scenario"] = self.scenario.as_dict()
        return record


def canonical_json(value: Any) -> str:
    """Deterministic JSON serialization used for hashing spec content."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _parse_scale(entry: Any) -> ScaleSpec:
    if isinstance(entry, str):
        try:
            return NAMED_SCALES[entry]
        except KeyError:
            raise SweepSpecError(
                f"unknown named scale {entry!r}; "
                f"available: {', '.join(sorted(NAMED_SCALES))}"
            ) from None
    if isinstance(entry, Mapping):
        data = dict(entry)
        name = data.pop("name", None)
        if not isinstance(name, str) or not name:
            raise SweepSpecError("inline scales need a non-empty 'name'")
        base = NAMED_SCALES.get(name, NAMED_SCALES["tiny"])
        known = {field.name for field in dataclasses.fields(ScaleSpec)} - {"name"}
        unknown = set(data) - known
        if unknown:
            raise SweepSpecError(
                f"unknown scale field(s) {sorted(unknown)}; allowed: {sorted(known)}"
            )
        values = {field: getattr(base, field) for field in known}
        for key, value in data.items():
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise SweepSpecError(
                    f"scale field {key!r} must be a positive integer, got {value!r}"
                )
            values[key] = value
        return ScaleSpec(name=name, **values)
    raise SweepSpecError(f"scales entries must be names or mappings, got {entry!r}")


def _parse_scenario(entry: Any, position: int) -> ScenarioSpec:
    if not isinstance(entry, Mapping):
        raise SweepSpecError(f"scenarios entries must be mappings, got {entry!r}")
    data = dict(entry)
    name = data.pop("scenario", None)
    if not isinstance(name, str):
        raise SweepSpecError("each scenarios entry needs a 'scenario' name")
    label = data.pop("label", None)
    if label is None:
        label = name if not data else f"{name}#{position}"
    if not isinstance(label, str) or not label:
        raise SweepSpecError("scenario 'label' must be a non-empty string")
    overrides = tuple(sorted(data.items()))
    return ScenarioSpec(scenario=name, label=label, overrides=overrides)


@dataclass(frozen=True)
class SweepSpec:
    """A validated, immutable sweep specification."""

    name: str
    scales: tuple[ScaleSpec, ...]
    seeds: tuple[int, ...]
    figures: tuple[str, ...] = ()
    scenarios: tuple[ScenarioSpec, ...] = ()
    sample_count: int | None = None
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepSpecError("sweep spec needs a non-empty 'name'")
        if not self.scales:
            raise SweepSpecError("sweep spec needs at least one scale")
        if not self.seeds:
            raise SweepSpecError("sweep spec needs at least one seed")
        if not self.figures and not self.scenarios:
            raise SweepSpecError("sweep spec needs 'figures' and/or 'scenarios'")
        if len({scale.name for scale in self.scales}) != len(self.scales):
            raise SweepSpecError("scale names must be unique")
        if len(set(self.seeds)) != len(self.seeds):
            raise SweepSpecError("seeds must be unique")
        labels = [scenario.label for scenario in self.scenarios]
        if len(set(labels)) != len(labels):
            raise SweepSpecError("scenario labels must be unique")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
                raise SweepSpecError(f"seeds must be non-negative integers, got {seed!r}")
        for figure in self.figures:
            if figure not in FIGURES:
                raise SweepSpecError(
                    f"unknown figure {figure!r}; available: {', '.join(FIGURES)}"
                )
        if self.sample_count is not None and self.sample_count < 1:
            raise SweepSpecError(
                f"sample count must be positive, got {self.sample_count}"
            )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Parse and validate a spec document (the JSON file's content)."""
        if not isinstance(data, Mapping):
            raise SweepSpecError(f"sweep spec must be a mapping, got {data!r}")
        unknown = set(data) - {"name", "scales", "seeds", "figures", "scenarios", "sample"}
        if unknown:
            raise SweepSpecError(f"unknown spec field(s): {sorted(unknown)}")
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise SweepSpecError("sweep spec needs a non-empty 'name'")
        for field in ("scales", "seeds", "figures", "scenarios"):
            value = data.get(field, [])
            if not isinstance(value, list):
                raise SweepSpecError(f"'{field}' must be a list, got {value!r}")
        scales = tuple(_parse_scale(entry) for entry in data.get("scales", ()))
        seeds = tuple(data.get("seeds", ()))
        figures_raw = data.get("figures", ())
        for entry in figures_raw:
            if not isinstance(entry, str):
                raise SweepSpecError(f"figures entries must be names, got {entry!r}")
        # Canonical figure order regardless of spec order.
        figures = tuple(f for f in FIGURES if f in set(figures_raw))
        if len(set(figures_raw)) != len(tuple(figures_raw)):
            raise SweepSpecError("figures must be unique")
        if set(figures_raw) - set(figures):
            bad = sorted(set(figures_raw) - set(figures))
            raise SweepSpecError(
                f"unknown figure(s) {bad}; available: {', '.join(FIGURES)}"
            )
        scenarios = tuple(
            _parse_scenario(entry, position)
            for position, entry in enumerate(data.get("scenarios", ()))
        )
        sample = data.get("sample")
        sample_count: int | None = None
        sample_seed = 0
        if sample is not None:
            if not isinstance(sample, Mapping) or "count" not in sample:
                raise SweepSpecError("'sample' must be a mapping with a 'count'")
            sample_count = sample["count"]
            if not isinstance(sample_count, int) or isinstance(sample_count, bool):
                raise SweepSpecError("'sample.count' must be an integer")
            sample_seed = sample.get("seed", 0)
            if not isinstance(sample_seed, int) or isinstance(sample_seed, bool):
                raise SweepSpecError("'sample.seed' must be an integer")
        return cls(
            name=name,
            scales=scales,
            seeds=seeds,
            figures=figures,
            scenarios=scenarios,
            sample_count=sample_count,
            sample_seed=sample_seed,
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "SweepSpec":
        """Load a spec from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise SweepSpecError(f"cannot read sweep spec {path}: {error}") from error
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SweepSpecError(f"sweep spec {path} is not valid JSON: {error}") from error
        return cls.from_mapping(data)

    def canonical(self) -> dict[str, Any]:
        """Canonical JSON-safe form of the whole spec."""
        record: dict[str, Any] = {
            "name": self.name,
            "scales": [scale.as_dict() for scale in self.scales],
            "seeds": list(self.seeds),
            "figures": list(self.figures),
            "scenarios": [scenario.as_dict() for scenario in self.scenarios],
        }
        if self.sample_count is not None:
            record["sample"] = {"count": self.sample_count, "seed": self.sample_seed}
        return record

    def spec_hash(self) -> str:
        """Stable digest of the canonical spec content."""
        return hashlib.sha256(canonical_json(self.canonical()).encode()).hexdigest()

    def expand(self) -> tuple[Shard, ...]:
        """Expand the spec into its deterministic, ordered shard list.

        Order is fixed: all figure shards (scale-major, then seed),
        followed by all scenario shards (scenario-major, then scale,
        then seed).  ``sample`` subsampling draws from the full grid
        with a seeded RNG and preserves grid order.
        """
        shards: list[Shard] = []
        if self.figures:
            for scale in self.scales:
                for seed in self.seeds:
                    shards.append(
                        Shard(kind="figures", scale=scale, seed=seed, figures=self.figures)
                    )
        for scenario in self.scenarios:
            for scale in self.scales:
                for seed in self.seeds:
                    shards.append(
                        Shard(kind="scenario", scale=scale, seed=seed, scenario=scenario)
                    )
        if self.sample_count is not None and self.sample_count < len(shards):
            rng = random.Random(self.sample_seed)
            chosen = sorted(rng.sample(range(len(shards)), self.sample_count))
            shards = [shards[index] for index in chosen]
        return tuple(shards)


def smoke_spec() -> SweepSpec:
    """The built-in CI smoke grid behind ``repro sweep --smoke``.

    2 scales × 3 seeds × 2 scenario configs = 12 scenario shards, plus
    2 × 3 figure shards covering Figs. 3/4 — 18 shards total, all tiny
    enough to finish in CI.
    """
    return SweepSpec.from_mapping(
        {
            "name": "smoke",
            "scales": [
                "tiny",
                {"name": "micro", "num_tier1": 2, "num_tier2": 5, "num_tier3": 12,
                 "num_stubs": 30, "sample_size": 20, "pair_sample_size": 8},
            ],
            "seeds": [1, 2, 3],
            "figures": ["fig3", "fig4"],
            "scenarios": [
                {"scenario": "failure-churn", "label": "churn-base", "duration": 6.0},
                {"scenario": "failure-churn", "label": "churn-fast",
                 "duration": 6.0, "mean_time_to_failure": 40.0,
                 "mean_time_to_repair": 1.0},
            ],
        }
    )
