"""Sharded, resumable sweep execution.

:func:`run_sweep` is the orchestration core behind ``repro sweep``:

1. expand the spec into its deterministic shard list;
2. probe the content-addressed cache — hits are reused verbatim,
   misses become the work list (``--force`` dirties everything);
3. execute missing shards, either in-process or across a
   :class:`~concurrent.futures.ProcessPoolExecutor`, persisting each
   result atomically *as it completes* so a killed run loses at most
   the shards still in flight;
4. merge all shard records in expansion order into the byte-reproducible
   ``sweep_summary.json`` and per-metric CSV tables.

Worker processes never receive pickled compiled arrays: under
``--jobs N`` each figure shard publishes-or-opens its compiled topology
in the memory-mapped artifact store (:mod:`repro.core.artifacts`), so
shards sharing a (scale, seed) — across workers and across runs — map
the same physical pages instead of recompiling; the per-process context
memo in :mod:`repro.experiments.context` additionally lets shards that
land on the same worker reuse the full context.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.envelope import envelope, expect_envelope, require_keys
from repro.sweep.aggregate import build_summary, summary_text, write_outputs
from repro.sweep.cache import SweepCache, code_version, shard_key
from repro.sweep.shard import run_shard
from repro.sweep.spec import Shard, SweepSpec

#: Default locations relative to the working directory.
DEFAULT_CACHE_DIR = ".sweep-cache"
DEFAULT_OUT_DIR = "sweep-results"


@dataclass(frozen=True)
class SweepRunResult:
    """Outcome of one :func:`run_sweep` call."""

    spec: SweepSpec
    summary: dict[str, Any]
    executed: tuple[str, ...]  # shard ids computed this run
    reused: tuple[str, ...]  # shard ids served from the cache
    written: dict[str, Path]  # output files (summary + metric tables)

    @property
    def summary_path(self) -> Path:
        """Path of the written ``sweep_summary.json``."""
        return self.written["summary"]

    def summary_bytes(self) -> bytes:
        """The canonical summary serialization."""
        return summary_text(self.summary).encode("utf-8")

    def report(self) -> str:
        """Short human-readable run report."""
        lines = [
            f"== sweep: {self.spec.name} "
            f"({len(self.executed) + len(self.reused)} shards) ==",
            f"computed: {len(self.executed)}   cached: {len(self.reused)}",
            f"summary:  {self.written['summary']}",
            f"tables:   {len(self.written) - 1} metric CSVs",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope of the whole run outcome."""
        return envelope(
            "sweep_run_result",
            {
                "spec": self.spec.canonical(),
                "summary": self.summary,
                "executed": list(self.executed),
                "reused": list(self.reused),
                "written": {key: str(path) for key, path in self.written.items()},
            },
        )

    @classmethod
    def from_json_dict(cls, data: dict[str, Any]) -> "SweepRunResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "sweep_run_result")
        require_keys(
            payload, "sweep_run_result", ("spec", "summary", "executed", "reused")
        )
        return cls(
            spec=SweepSpec.from_mapping(payload["spec"]),
            summary=payload["summary"],
            executed=tuple(payload["executed"]),
            reused=tuple(payload["reused"]),
            written={key: Path(value) for key, value in payload.get("written", {}).items()},
        )


def _execute_shard(
    shard: Shard, artifact_dir: str | None = None
) -> tuple[dict[str, Any], float]:
    """Worker entry point: run one shard, returning (record, elapsed)."""
    started = time.perf_counter()
    record = run_shard(shard, artifact_dir)
    return record, time.perf_counter() - started


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    out_dir: str | Path = DEFAULT_OUT_DIR,
    force: bool = False,
    progress: Callable[[str], None] | None = None,
    artifact_dir: str | Path | None = None,
) -> SweepRunResult:
    """Run (or resume) a sweep and write its outputs.

    The cache makes this idempotent and interrupt-safe: re-running the
    same spec against the same code recomputes nothing and rewrites a
    byte-identical summary; after a kill, only the shards without a
    completed cache entry run again.  Under ``jobs > 1``, figure shards
    share compiled topologies through the memory-mapped artifact store
    rooted at ``artifact_dir`` (default
    :func:`repro.core.artifacts.default_store_root`); sequential runs
    compile in-process and touch no artifact files.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    shards = spec.expand()
    cache = SweepCache(cache_dir)
    code = code_version()
    keys = {shard: shard_key(shard.params(), code=code) for shard in shards}

    records: dict[Shard, dict[str, Any]] = {}
    pending: list[Shard] = []
    for shard in shards:
        cached = None if force else cache.load(keys[shard])
        if cached is not None:
            records[shard] = cached
        else:
            pending.append(shard)
    reused = tuple(shard.shard_id for shard in shards if shard in records)
    if progress:
        progress(
            f"{len(shards)} shards: {len(reused)} cached, {len(pending)} to compute"
        )

    def _persist(shard: Shard, record: dict[str, Any], elapsed: float) -> None:
        entry = dict(record, elapsed_s=elapsed, code_version=code)
        cache.store(keys[shard], entry)
        records[shard] = entry
        if progress:
            progress(f"done {shard.shard_id} ({elapsed:.2f}s)")

    if pending and jobs == 1:
        for shard in pending:
            record, elapsed = _execute_shard(shard)
            _persist(shard, record, elapsed)
    elif pending:
        from repro.core.artifacts import ArtifactStore

        store_root = str(ArtifactStore(artifact_dir).root)
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as executor:
            futures = {
                executor.submit(_execute_shard, shard, store_root): shard
                for shard in pending
            }
            remaining = set(futures)
            # Persist as results land (not in submission order), so an
            # interrupt preserves every completed shard.
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    record, elapsed = future.result()
                    _persist(futures[future], record, elapsed)

    summary = build_summary(spec, [records[shard] for shard in shards], code=code)
    written = write_outputs(summary, out_dir)
    return SweepRunResult(
        spec=spec,
        summary=summary,
        executed=tuple(shard.shard_id for shard in pending),
        reused=reused,
        written=written,
    )
