"""Deterministic aggregation of shard results into sweep outputs.

The summary merges shard records in the spec's fixed expansion order and
serializes with sorted keys, so for a given spec and code version the
``sweep_summary.json`` bytes are identical no matter how the shards were
scheduled, cached, or resumed.  Per-metric CSV tables reduce each metric
across seeds (mean/min/max per grid point) for spreadsheet/plotting
consumption.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.sweep.spec import SweepSpec

#: Summary document format version.
SUMMARY_FORMAT = 1


def build_summary(
    spec: SweepSpec,
    records: Sequence[Mapping[str, Any]],
    *,
    code: str,
) -> dict[str, Any]:
    """Combine shard records (in expansion order) into the summary doc."""
    return {
        "format": SUMMARY_FORMAT,
        "name": spec.name,
        "spec": spec.canonical(),
        "spec_hash": spec.spec_hash(),
        "code_version": code,
        "num_shards": len(records),
        "shards": [
            {
                "id": record["id"],
                "group": record["group"],
                "params": record["params"],
                "topology_fingerprint": record["topology_fingerprint"],
                "metrics": record["metrics"],
            }
            for record in records
        ],
        "aggregates": _aggregate_metrics(records),
    }


def _aggregate_metrics(
    records: Sequence[Mapping[str, Any]],
) -> dict[str, dict[str, dict[str, Any]]]:
    """metric → grid point (group id) → mean/min/max/count across seeds."""
    samples: dict[str, dict[str, list[float]]] = {}
    for record in records:
        group = record["group"]
        for metric, value in record["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue  # None (undefined metric) stays out of the reduction
            samples.setdefault(metric, {}).setdefault(group, []).append(float(value))
    aggregates: dict[str, dict[str, dict[str, Any]]] = {}
    for metric in sorted(samples):
        aggregates[metric] = {}
        for group in sorted(samples[metric]):
            values = samples[metric][group]
            aggregates[metric][group] = {
                "count": len(values),
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
    return aggregates


def summary_text(summary: Mapping[str, Any]) -> str:
    """The canonical byte-reproducible serialization of a summary."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def _csv_cell(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def metric_table_name(metric: str) -> str:
    """Filesystem-safe CSV file name for one metric."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", metric) + ".csv"


def write_outputs(summary: Mapping[str, Any], out_dir: str | Path) -> dict[str, Path]:
    """Write ``sweep_summary.json`` and the per-metric CSV tables.

    Returns the written paths keyed by logical name (``summary`` plus
    one entry per metric table).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    summary_path = out / "sweep_summary.json"
    summary_path.write_text(summary_text(summary), encoding="utf-8")
    written["summary"] = summary_path
    tables_dir = out / "tables"
    tables_dir.mkdir(parents=True, exist_ok=True)
    # Reproducibility covers the whole directory, not just each file:
    # drop tables of metrics a previous spec produced but this one
    # doesn't, so re-running into the same --out never serves stale CSVs.
    expected = {metric_table_name(metric) for metric in summary["aggregates"]}
    for leftover in tables_dir.glob("*.csv"):
        if leftover.name not in expected:
            leftover.unlink()
    for metric, groups in summary["aggregates"].items():
        lines = ["group,count,mean,min,max"]
        for group, stats in groups.items():  # already sorted at build time
            lines.append(
                ",".join(
                    (
                        group,
                        _csv_cell(stats["count"]),
                        _csv_cell(stats["mean"]),
                        _csv_cell(stats["min"]),
                        _csv_cell(stats["max"]),
                    )
                )
            )
        table_path = tables_dir / metric_table_name(metric)
        table_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        written[metric] = table_path
    return written
