"""Parameter-sweep orchestration: sharded, resumable, byte-reproducible.

This package turns "how do the paper's metrics behave across a grid of
topology scales × seeds × figure selections × simulation-scenario
knobs?" into one declarative spec and one command (``repro sweep``):

- :mod:`repro.sweep.spec` — the spec format, named scales, and
  deterministic grid expansion into shards;
- :mod:`repro.sweep.shard` — executes one shard (all selected figures
  sharing one compiled context, or one scenario configuration);
- :mod:`repro.sweep.cache` — content-addressed on-disk results keyed by
  (format, code version, shard params) for instant resume;
- :mod:`repro.sweep.executor` — process-parallel orchestration with
  atomic per-shard persistence;
- :mod:`repro.sweep.aggregate` — fixed-order merging into
  ``sweep_summary.json`` + per-metric CSV tables.
"""

from repro.sweep.aggregate import build_summary, summary_text, write_outputs
from repro.sweep.cache import SweepCache, code_version, shard_key
from repro.sweep.executor import (
    DEFAULT_CACHE_DIR,
    DEFAULT_OUT_DIR,
    SweepRunResult,
    run_sweep,
)
from repro.sweep.shard import run_shard
from repro.sweep.spec import (
    FIGURES,
    NAMED_SCALES,
    ScaleSpec,
    ScenarioSpec,
    Shard,
    SweepSpec,
    SweepSpecError,
    smoke_spec,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_OUT_DIR",
    "FIGURES",
    "NAMED_SCALES",
    "ScaleSpec",
    "ScenarioSpec",
    "Shard",
    "SweepCache",
    "SweepRunResult",
    "SweepSpec",
    "SweepSpecError",
    "build_summary",
    "code_version",
    "run_shard",
    "run_sweep",
    "shard_key",
    "smoke_spec",
    "summary_text",
    "write_outputs",
]
