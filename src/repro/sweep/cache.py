"""Content-addressed on-disk cache for sweep shard results.

Every shard result is stored as one JSON file named by the SHA-256 of
the canonical triple ``(cache format, code version, shard params)``:

- **code version** — a digest over every source file of the ``repro``
  package, so editing any analysis code invalidates all cached results
  (the on-disk analogue of the in-memory mutation-count staleness
  contract of :mod:`repro.core`);
- **shard params** — the canonical parameter mapping of the shard, so
  changing one grid point's parameters dirties exactly that shard and
  no other.

Writes are atomic (temp file + ``os.replace``), so a sweep killed
mid-run leaves only complete entries behind and a resumed run recomputes
exactly the missing shards.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import repro

from repro.sweep.spec import canonical_json

#: Bump to invalidate every existing cache entry on format changes.
CACHE_FORMAT = 1

_CODE_VERSION: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (memoized per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_dir = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.relative_to(package_dir).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def shard_key(shard_params: dict[str, Any], *, code: str | None = None) -> str:
    """The cache key of one shard: sha256(format, code version, params)."""
    payload = {
        "format": CACHE_FORMAT,
        "code": code if code is not None else code_version(),
        "shard": shard_params,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class SweepCache:
    """A directory of content-addressed shard result files."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """The file path of a cache key's entry."""
        return self.directory / f"{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        """The cached record for ``key``, or ``None`` if absent/corrupt.

        A truncated or hand-edited entry (e.g. from a kill during a
        non-atomic copy) is treated as a miss, never an error: the shard
        is simply recomputed and the entry rewritten.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def store(self, key: str, record: dict[str, Any]) -> Path:
        """Atomically persist ``record`` under ``key`` and return its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        payload = dict(record, key=key)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=self.directory,
            prefix=f".{key[:16]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> tuple[str, ...]:
        """All entry keys currently in the cache directory (sorted)."""
        if not self.directory.is_dir():
            return ()
        return tuple(
            sorted(
                path.stem
                for path in self.directory.glob("*.json")
                if not path.name.startswith(".")
            )
        )
