"""Execution of a single sweep shard.

A shard is one grid point of an expanded :class:`~repro.sweep.spec.SweepSpec`:
either all selected figures at one (scale, seed) — sharing a single
:class:`~repro.experiments.context.DiversityContext` the way the
combined experiment runner does — or one simulation scenario
configuration at one (scale, seed).

:func:`run_shard` returns a JSON-safe record of deterministic metrics:
every value is reproducible from the shard parameters alone, so cached
results merge byte-identically with freshly computed ones.  Wall-clock
timings deliberately live *outside* this record (the executor stores
them in the cache entry, never in the summary).
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.artifacts import ArtifactStore
from repro.experiments.context import DiversityContext, context_for
from repro.experiments.fig2_pod import Fig2Config, run_fig2
from repro.experiments.fig3_paths import PathDiversityConfig, run_fig3
from repro.experiments.fig4_destinations import run_fig4
from repro.experiments.fig5_geodistance import Fig5Config, run_fig5
from repro.experiments.fig6_bandwidth import Fig6Config, run_fig6
from repro.simulation.scenarios import run_scenario, scenario_field_names
from repro.sweep.spec import ScaleSpec, Shard

#: Figures that consume the shared diversity context.
_CONTEXT_FIGURES = frozenset({"fig3", "fig4", "fig5", "fig6"})


def _clean(value: float) -> float | None:
    """NaN/inf → None so records stay strict-JSON serializable."""
    number = float(value)
    return number if math.isfinite(number) else None


def diversity_config(scale: ScaleSpec, seed: int) -> PathDiversityConfig:
    """The Fig. 3–6 configuration of a (scale, seed) grid point."""
    return PathDiversityConfig(
        num_tier1=scale.num_tier1,
        num_tier2=scale.num_tier2,
        num_tier3=scale.num_tier3,
        num_stubs=scale.num_stubs,
        sample_size=scale.sample_size,
        seed=seed,
    )


def _fig2_metrics(
    scale: ScaleSpec, seed: int, ctx: DiversityContext | None
) -> dict[str, Any]:
    # Fig. 2 is a bargaining experiment with no topology: the scale axis
    # only sizes its trial count so tiny sweeps stay tiny (an inline
    # scale with sample_size=1000 reaches the paper's 200 trials).  All
    # trials of a cardinality run through one NegotiationEngine batch,
    # shared with the rest of the shard when a context exists.
    config = Fig2Config(
        choice_counts=(10, 20, 30),
        trials=max(5, scale.sample_size // 5),
        seed=seed,
    )
    result = run_fig2(config, engine=ctx.negotiation if ctx is not None else None)
    return {
        "fig2.best_pod_u1": _clean(result.best_pod("U(1)")),
        "fig2.best_pod_u2": _clean(result.best_pod("U(2)")),
    }


def _fig3_metrics(config: PathDiversityConfig, ctx: DiversityContext) -> dict[str, Any]:
    result = run_fig3(config, context=ctx)
    diversity = result.diversity
    extra = diversity.additional_path_summary()
    return {
        "fig3.num_agreements": result.num_agreements,
        "fig3.grc_mean_paths": _clean(diversity.path_cdf("GRC").mean),
        "fig3.ma_star_mean_paths": _clean(diversity.path_cdf("MA*").mean),
        "fig3.ma_mean_paths": _clean(diversity.path_cdf("MA").mean),
        "fig3.additional_paths_mean": _clean(extra["mean"]),
        "fig3.additional_paths_max": _clean(extra["max"]),
    }


def _fig4_metrics(config: PathDiversityConfig, ctx: DiversityContext) -> dict[str, Any]:
    result = run_fig4(config, context=ctx)
    diversity = result.diversity
    extra = diversity.additional_destination_summary()
    return {
        "fig4.grc_mean_destinations": _clean(diversity.destination_cdf("GRC").mean),
        "fig4.ma_mean_destinations": _clean(diversity.destination_cdf("MA").mean),
        "fig4.additional_destinations_mean": _clean(extra["mean"]),
    }


def _fig5_metrics(
    config: PathDiversityConfig, scale: ScaleSpec, seed: int, ctx: DiversityContext
) -> dict[str, Any]:
    result = run_fig5(
        Fig5Config(
            diversity=config,
            pair_sample_size=scale.pair_sample_size,
            geography_seed=seed,
        ),
        context=ctx,
    )
    analysis = result.geodistance
    reduction = analysis.reduction_cdf()
    return {
        "fig5.pairs_below_grc_min": _clean(analysis.fraction_of_pairs_improving("min", 1)),
        "fig5.pairs_below_grc_median": _clean(
            analysis.fraction_of_pairs_improving("median", 1)
        ),
        "fig5.median_reduction": _clean(reduction.median) if reduction.count else None,
    }


def _fig6_metrics(
    config: PathDiversityConfig, scale: ScaleSpec, seed: int, ctx: DiversityContext
) -> dict[str, Any]:
    result = run_fig6(
        Fig6Config(
            diversity=config,
            pair_sample_size=scale.pair_sample_size,
            sampling_seed=seed,
        ),
        context=ctx,
    )
    analysis = result.bandwidth
    increase = analysis.increase_cdf()
    return {
        "fig6.pairs_above_grc_max": _clean(analysis.fraction_of_pairs_improving("max", 1)),
        "fig6.pairs_above_grc_min": _clean(analysis.fraction_of_pairs_improving("min", 1)),
        "fig6.median_increase": _clean(increase.median) if increase.count else None,
    }


def _run_figures_shard(shard: Shard, artifact_dir: str | None = None) -> dict[str, Any]:
    config = diversity_config(shard.scale, shard.seed)
    metrics: dict[str, Any] = {}
    fingerprint: str | None = None
    ctx: DiversityContext | None = None
    if _CONTEXT_FIGURES & set(shard.figures):
        store = ArtifactStore(artifact_dir) if artifact_dir is not None else None
        ctx = context_for(config, None, store=store)
        fingerprint = ctx.compiled.source_fingerprint
    for figure in shard.figures:  # canonical order fixed by the spec
        if figure == "fig2":
            metrics.update(_fig2_metrics(shard.scale, shard.seed, ctx))
        elif figure == "fig3":
            assert ctx is not None
            metrics.update(_fig3_metrics(config, ctx))
        elif figure == "fig4":
            assert ctx is not None
            metrics.update(_fig4_metrics(config, ctx))
        elif figure == "fig5":
            assert ctx is not None
            metrics.update(_fig5_metrics(config, shard.scale, shard.seed, ctx))
        elif figure == "fig6":
            assert ctx is not None
            metrics.update(_fig6_metrics(config, shard.scale, shard.seed, ctx))
        else:  # pragma: no cover - expansion already validated figure names
            raise ValueError(f"unknown figure {figure!r}")
    return {"metrics": metrics, "topology_fingerprint": fingerprint}


def _run_scenario_shard(shard: Shard) -> dict[str, Any]:
    assert shard.scenario is not None
    overrides = dict(shard.scenario.overrides)
    # The scale axis reaches scenarios through their topology-size
    # fields, where the scenario has them (the Fig. 1 fixture scenarios
    # don't); explicit per-configuration overrides win over the scale.
    allowed = scenario_field_names(shard.scenario.scenario)
    for key, value in shard.scale.topology_kwargs().items():
        if key in allowed and key not in overrides:
            overrides[key] = value
    result = run_scenario(shard.scenario.scenario, seed=shard.seed, **overrides)
    metrics: dict[str, Any] = {
        "events_processed": result.events_processed,
        "trace_records": len(result.trace),
    }
    for kind, count in result.trace.kinds().items():
        metrics[f"records.{kind}"] = count
    for architecture in result.trace.architectures():
        metrics[f"availability.{architecture}"] = _clean(
            result.trace.availability(architecture)
        )
    revenue = result.trace.revenue_by_as()
    if revenue:
        metrics["revenue_total"] = _clean(sum(revenue.values()))
    return {"metrics": metrics, "topology_fingerprint": None}


def run_shard(shard: Shard, artifact_dir: str | None = None) -> dict[str, Any]:
    """Run one shard and return its JSON-safe result record.

    The record contains the shard id/params, the deterministic metrics
    mapping, and (for figure shards) the content fingerprint of the
    topology the metrics were computed on — the cross-process face of
    the :mod:`repro.core` staleness contract.  With an ``artifact_dir``
    (a :class:`~repro.core.artifacts.ArtifactStore` root), figure shards
    publish-or-open their compiled topology there: the first shard of a
    (scale, seed) compiles and publishes, every sibling — in this run or
    any later one — opens the memory-mapped artifact instead.  The
    record is byte-identical either way.
    """
    if shard.kind == "figures":
        result = _run_figures_shard(shard, artifact_dir)
    elif shard.kind == "scenario":
        result = _run_scenario_shard(shard)
    else:
        raise ValueError(f"unknown shard kind {shard.kind!r}")
    return {
        "id": shard.shard_id,
        "group": shard.group_id,
        "params": shard.params(),
        **result,
    }
