"""The one CLI adapter: argparse surface → typed requests → rendering.

Every command-line entry point of the reproduction routes through this
module — ``python -m repro.cli`` (the ``repro`` console script) and
``python -m repro.experiments.runner`` (the historical experiments
alias) share the same argument definitions, the same typed-request
validation, the same :class:`~repro.api.session.Session` execution, and
the same renderers.  A handler is deliberately trivial:

1. build the typed request (construction validates; a
   :class:`~repro.errors.ValidationError` becomes the familiar
   ``repro <command>: error: …`` message with exit code 2);
2. call the session workflow;
3. print the result — ``--format text`` renders the historical
   byte-identical report, ``--format json`` prints the schema-versioned
   envelope.

Nothing else in the codebase parses CLI arguments or formats CLI
output.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from dataclasses import replace

from repro.api.requests import (
    NEGOTIATE_DISTRIBUTIONS,
    DiversityRequest,
    ExperimentsRequest,
    GrcAllRequest,
    NegotiateRequest,
    SimulateRequest,
    SweepRequest,
    TopologyRequest,
)
from repro.api.results import (
    AgentsListResult,
    ScenarioListResult,
    render_agents_list_text,
    render_diversity_text,
    render_experiments_text,
    render_grc_all_text,
    render_negotiate_text,
    render_scenario_list_text,
    render_simulate_text,
    render_sweep_list_text,
    render_sweep_text,
    render_topology_text,
)
from repro.api.session import Session
from repro.errors import ReproError
from repro.simulation.scenarios import SCENARIOS
from repro.sweep import DEFAULT_CACHE_DIR, DEFAULT_OUT_DIR

__all__ = ["build_parser", "dispatch", "main", "run_experiments_command"]


def _add_format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: the classic text report or a schema-versioned "
        "JSON envelope (default: text)",
    )


def _add_experiments_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro experiments`` flags, shared with the runner alias."""
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's trial counts and sample sizes (slower)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed every experiment for an end-to-end reproducible run "
        "(defaults to each experiment's own seed)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Fig. 2 trials per choice-set cardinality (200 = paper scale; "
        "defaults to the run scale's own trial count)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the figure sections in N worker processes; the report is "
        "merged in a fixed order, so seeded output is byte-identical to a "
        "sequential run (default: 1)",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="root of the memory-mapped topology artifact store shared by "
        "--jobs workers (default: .topology-cache, or $REPRO_TOPOLOGY_STORE)",
    )
    _add_format_argument(parser)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Enabling Novel Interconnection Agreements "
        "with Path-Aware Networking Architectures' (DSN 2021)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topology = subparsers.add_parser(
        "topology", help="generate a synthetic AS topology in CAIDA as-rel format"
    )
    topology.add_argument("output", help="path of the topology file to write")
    topology.add_argument("--tier1", type=int, default=8, help="number of tier-1 ASes")
    topology.add_argument("--tier2", type=int, default=60, help="number of tier-2 ASes")
    topology.add_argument("--tier3", type=int, default=200, help="number of tier-3 ASes")
    topology.add_argument("--stubs", type=int, default=800, help="number of stub ASes")
    topology.add_argument("--seed", type=int, default=2021, help="generator seed")
    topology.add_argument(
        "--format",
        choices=("text", "json", "gml"),
        default="text",
        help="text/json select the report format (the file is written as "
        "CAIDA as-rel); gml writes the file in GML and prints the text "
        "report (default: text)",
    )

    diversity = subparsers.add_parser(
        "diversity", help="run the §VI path-diversity analysis"
    )
    diversity.add_argument(
        "--topology",
        help="CAIDA as-rel file to analyze (a synthetic topology is generated "
        "when omitted)",
    )
    diversity.add_argument(
        "--sample-size", type=int, default=200, help="number of ASes to sample"
    )
    diversity.add_argument("--seed", type=int, default=2021, help="sampling seed")
    _add_format_argument(diversity)

    grc_all = subparsers.add_parser(
        "grc-all",
        help="run the all-sources GRC pass (blocked memory, optional sharding)",
    )
    grc_all.add_argument(
        "--topology",
        help="topology file to ingest: CAIDA as-rel (streaming-compiled, the "
        "internet-scale path) or .gml; a synthetic topology is generated "
        "when omitted",
    )
    grc_all.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard the source index space across N worker processes sharing "
        "one memory-mapped artifact; output is byte-identical to a "
        "sequential pass (default: 1)",
    )
    grc_all.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of contiguous source ranges (default: one per job)",
    )
    grc_all.add_argument(
        "--output",
        help="write the per-source asn,paths,destinations table to this CSV",
    )
    grc_all.add_argument(
        "--artifact-dir",
        default=None,
        help="root of the memory-mapped topology artifact store used under "
        "--jobs (default: .topology-cache, or $REPRO_TOPOLOGY_STORE)",
    )
    grc_all.add_argument("--tier1", type=int, default=8, help="number of tier-1 ASes")
    grc_all.add_argument("--tier2", type=int, default=60, help="number of tier-2 ASes")
    grc_all.add_argument("--tier3", type=int, default=200, help="number of tier-3 ASes")
    grc_all.add_argument("--stubs", type=int, default=800, help="number of stub ASes")
    grc_all.add_argument(
        "--seed", type=int, default=2021, help="generator seed (no --topology)"
    )
    _add_format_argument(grc_all)

    experiments = subparsers.add_parser(
        "experiments", help="run the full experiment harness (every figure)"
    )
    _add_experiments_arguments(experiments)

    simulate = subparsers.add_parser(
        "simulate", help="run a discrete-event simulation scenario"
    )
    simulate.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="failure-churn",
        help="canned scenario to run (default: failure-churn)",
    )
    simulate.add_argument(
        "--seed", type=int, default=None, help="simulation seed (default: scenario's)"
    )
    simulate.add_argument(
        "--duration",
        type=float,
        default=None,
        help="virtual-time horizon in hours (default: scenario's)",
    )
    simulate.add_argument(
        "--trace-out",
        help="write the full JSONL metrics trace to this file",
    )
    simulate.add_argument(
        "--population",
        default=None,
        help="JSON population spec mapping behavior profiles onto AS sets "
        "(scenarios with a 'population' field only; see README 'Agents')",
    )
    simulate.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario catalog with parameter schemas and exit",
    )
    _add_format_argument(simulate)

    agents = subparsers.add_parser(
        "agents", help="inspect the heterogeneous-agent behavior registry"
    )
    agents.add_argument(
        "action",
        choices=("list",),
        help="'list' prints every registered behavior profile with its "
        "parameter schema",
    )
    _add_format_argument(agents)

    negotiate = subparsers.add_parser(
        "negotiate", help="run a batched BOSCO negotiation pass"
    )
    negotiate.add_argument(
        "--distribution",
        choices=sorted(NEGOTIATE_DISTRIBUTIONS),
        default="u1",
        help="joint utility distribution from the paper (default: u1)",
    )
    negotiate.add_argument(
        "--num-choices",
        type=int,
        default=50,
        help="choice-set cardinality W per party (default: 50)",
    )
    negotiate.add_argument(
        "--trials",
        type=int,
        default=40,
        help="random choice-set configuration trials (default: 40)",
    )
    negotiate.add_argument(
        "--seed", type=int, default=7, help="trial-draw seed (default: 7)"
    )
    _add_format_argument(negotiate)

    serve = subparsers.add_parser(
        "serve",
        help="serve the session workflows over HTTP with batch coalescing",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8000,
        help="TCP port to bind; 0 picks an ephemeral port and prints it "
        "(default: 8000)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="flush a coalescing group early once it holds this many "
        "negotiation requests (default: 32)",
    )
    serve.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=5.0,
        help="window during which concurrent negotiation requests join one "
        "engine batch; 0 disables coalescing (default: 5.0)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="LRU bound of the fingerprint-keyed result cache; 0 disables "
        "caching (default: 256)",
    )
    serve.add_argument(
        "--session-cache-limit",
        type=int,
        default=None,
        help="LRU bound for each of the warm session's internal caches "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--request-log",
        default=None,
        help="append a structured JSONL record per request to this file",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes accepting on one shared socket; 2+ runs the "
        "pre-fork supervisor with crash restarts (default: 1)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        help="directory for the cross-worker shared state (result cache, "
        "job queue, stats board); default: a private tempdir",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a sharded, resumable parameter sweep"
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec",
        help="JSON sweep spec file (see README 'Sweeps & CI' for the format)",
    )
    source.add_argument(
        "--smoke",
        action="store_true",
        help="run the built-in tiny CI smoke grid instead of a spec file",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run shards in N worker processes (results merge in a fixed "
        "order, so the summary is byte-identical to a sequential run)",
    )
    sweep.add_argument(
        "--out",
        default=DEFAULT_OUT_DIR,
        help=f"directory for sweep_summary.json and the per-metric CSV "
        f"tables (default: {DEFAULT_OUT_DIR})",
    )
    sweep.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shard result cache directory; re-runs and interrupted sweeps "
        f"resume from it (default: {DEFAULT_CACHE_DIR})",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="recompute every shard even when a cached result exists",
    )
    sweep.add_argument(
        "--list",
        action="store_true",
        dest="list_shards",
        help="print the expanded shard list without running anything",
    )
    _add_format_argument(sweep)

    return parser


def _emit(result, render, output_format: str) -> None:
    """Print a result in the selected format."""
    if output_format == "json":
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(render(result))


def _run_topology(session: Session, args: argparse.Namespace) -> int:
    request = TopologyRequest(
        tier1=args.tier1,
        tier2=args.tier2,
        tier3=args.tier3,
        stubs=args.stubs,
        seed=args.seed,
        output=args.output,
        file_format="gml" if args.format == "gml" else "as-rel",
    )
    output_format = "text" if args.format == "gml" else args.format
    _emit(session.topology(request), render_topology_text, output_format)
    return 0


def _run_grc_all(session: Session, args: argparse.Namespace) -> int:
    request = GrcAllRequest(
        topology=args.topology,
        jobs=args.jobs,
        shards=args.shards,
        output=args.output,
        artifact_dir=args.artifact_dir,
        tier1=args.tier1,
        tier2=args.tier2,
        tier3=args.tier3,
        stubs=args.stubs,
        seed=args.seed,
    )
    _emit(session.grc_all(request), render_grc_all_text, args.format)
    return 0


def _run_diversity(session: Session, args: argparse.Namespace) -> int:
    request = DiversityRequest(
        topology=args.topology, sample_size=args.sample_size, seed=args.seed
    )
    _emit(session.diversity(request), render_diversity_text, args.format)
    return 0


def _run_experiments(session: Session, args: argparse.Namespace) -> int:
    request = ExperimentsRequest(
        full=args.full,
        seed=args.seed,
        trials=args.trials,
        jobs=args.jobs,
        artifact_dir=args.artifact_dir,
    )
    _emit(session.experiments(request), render_experiments_text, args.format)
    return 0


def _run_simulate(session: Session, args: argparse.Namespace) -> int:
    if args.list_scenarios:
        _emit(ScenarioListResult.build(), render_scenario_list_text, args.format)
        return 0
    request = SimulateRequest(
        scenario=args.scenario,
        seed=args.seed,
        duration=args.duration,
        trace_out=args.trace_out,
        population=args.population,
    )
    if args.format == "json":
        # The session writes the trace before the envelope is printed,
        # so an emitted envelope's trace_out is always a written file.
        _emit(session.simulate(request), render_simulate_text, args.format)
        return 0
    # Text mode preserves the historical ordering: the summary prints
    # even when the trace file turns out to be unwritable.
    result = session.simulate(replace(request, trace_out=None))
    print(render_simulate_text(result))
    if args.trace_out:
        result.write_trace(args.trace_out)  # OutputError -> exit 1 via dispatch
        print(
            f"trace written to {args.trace_out} "
            f"({result.num_trace_records} records)"
        )
    return 0


def _run_agents(session: Session, args: argparse.Namespace) -> int:
    # Only 'list' exists today; argparse choices already rejected the rest.
    _emit(AgentsListResult.build(), render_agents_list_text, args.format)
    return 0


def _run_sweep(session: Session, args: argparse.Namespace) -> int:
    request = SweepRequest(
        spec=args.spec,
        smoke=args.smoke,
        jobs=args.jobs,
        out=args.out,
        cache_dir=args.cache_dir,
        force=args.force,
        list_shards=args.list_shards,
    )
    result = session.sweep(
        request,
        progress=lambda message: print(f"sweep: {message}", file=sys.stderr),
    )
    render = render_sweep_list_text if args.list_shards else render_sweep_text
    _emit(result, render, args.format)
    return 0


def _run_negotiate(session: Session, args: argparse.Namespace) -> int:
    request = NegotiateRequest(
        distribution=args.distribution,
        num_choices=args.num_choices,
        trials=args.trials,
        seed=args.seed,
    )
    _emit(session.negotiate(request), render_negotiate_text, args.format)
    return 0


def _run_serve(session: Session, args: argparse.Namespace) -> int:
    # Imported lazily so plain CLI commands never pay for (or depend on)
    # the server stack.
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        coalesce_window_ms=args.coalesce_window_ms,
        cache_entries=args.cache_entries,
        request_log=args.request_log,
        workers=args.workers,
        state_dir=args.state_dir,
    )
    if args.session_cache_limit is not None:
        session = Session(cache_limit=args.session_cache_limit)
    return run_server(config, session=session)


_HANDLERS = {
    "topology": _run_topology,
    "diversity": _run_diversity,
    "grc-all": _run_grc_all,
    "experiments": _run_experiments,
    "simulate": _run_simulate,
    "agents": _run_agents,
    "negotiate": _run_negotiate,
    "serve": _run_serve,
    "sweep": _run_sweep,
}


def dispatch(args: argparse.Namespace, *, session: Session | None = None) -> int:
    """Run one parsed command and return the process exit code.

    The :class:`~repro.errors.ReproError` taxonomy maps to stable exit
    codes here (validation → 2, delivery failures → 1), with the same
    ``repro <command>: error: …`` stderr line the CLI always printed.
    """
    handler = _HANDLERS.get(args.command)
    if handler is None:
        print(f"repro: error: unknown command {args.command!r}", file=sys.stderr)
        return 2
    try:
        return handler(session or Session(), args)
    except ReproError as error:
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return error.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return dispatch(args)


def run_experiments_command(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.experiments.runner``.

    The historical standalone runner re-implemented the ``repro
    experiments`` argparse and validation; it is now an alias: same
    flags, same typed-request checks, same session execution, same
    output — only the program name differs.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run every experiment of the paper's evaluation and print "
        "a combined report (alias of 'repro experiments').",
    )
    _add_experiments_arguments(parser)
    args = parser.parse_args(argv)
    args.command = "experiments"
    return dispatch(args)
