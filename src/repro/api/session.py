"""The session façade: one object owning the expensive shared state.

A :class:`Session` is the unit of reuse of the public API.  Construction
is free; state accumulates as workflows run and is keyed by the exact
parameters that produced it, so a repeated call with the same request
reuses instead of rebuilding:

- **Topologies** — synthetic topologies keyed by their generator
  parameters ``(tier1, tier2, tier3, stubs, seed)``; loaded ``as-rel``
  files keyed by path + file stamp (size, mtime), so an edited file is
  re-read, not served stale.
- **Diversity artifacts** — per-topology mutuality-agreement
  enumerations and MA path indexes (the dominant cost of the §VI
  analysis), plus the per-graph compiled
  :class:`~repro.core.PathEngine` that :func:`repro.core.path_engine_for`
  already shares.
- **Experiment contexts** — one
  :class:`~repro.experiments.context.DiversityContext` per
  :class:`~repro.experiments.fig3_paths.PathDiversityConfig`, shared
  across ``experiments()`` calls (sequential runs only: worker
  processes rebuild their own, exactly as ``repro experiments --jobs``
  always has).
- **The negotiation engine** — one shared
  :class:`~repro.bargaining.engine.NegotiationEngine` for every
  batched bargaining evaluation of the session.

Sessions are not thread-safe; use one per thread (state is cheap) or
protect calls externally.  All results are plain values — a session can
be dropped at any time without losing anything but its caches.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import enumerate_mutuality_agreements
from repro.api.requests import (
    DiversityRequest,
    ExperimentsRequest,
    SimulateRequest,
    SweepRequest,
    TopologyRequest,
)
from repro.api.results import (
    DiversityResult,
    DiversityScenarioRow,
    ExperimentsResult,
    SimulateResult,
    SweepListResult,
    SweepResult,
    TopologyResult,
)
from repro.bargaining.engine import NegotiationEngine
from repro.core import PathEngine, path_engine_for
from repro.errors import OutputError, ValidationError
from repro.experiments.context import DiversityContext, context_for
from repro.experiments.runner import RunnerConfig, run_sections
from repro.paths.diversity import analyze_path_diversity
from repro.paths.ma_paths import MAPathIndex, build_ma_path_index
from repro.simulation.scenarios import run_scenario
from repro.sweep import (
    DEFAULT_CACHE_DIR,
    DEFAULT_OUT_DIR,
    SweepSpec,
    SweepSpecError,
    run_sweep,
    smoke_spec,
)
from repro.topology.caida import load_as_rel, save_as_rel
from repro.topology.generator import GeneratedTopology, generate_topology
from repro.topology.graph import ASGraph

#: The conclusion degrees the diversity report lists, in report order.
_DIVERSITY_REPORT_SCENARIOS = ("GRC", "MA* (Top 1)", "MA* (Top 5)", "MA*", "MA")


@dataclass
class _DiversityArtifacts:
    """Everything expensive the diversity analysis derives per topology."""

    graph: ASGraph
    engine: PathEngine
    agreements: list[Agreement]
    index: MAPathIndex


class Session:
    """Reusable execution context for every public workflow."""

    def __init__(self) -> None:
        self._generated: dict[tuple[int, int, int, int, int], GeneratedTopology] = {}
        self._loaded: dict[tuple[str, int, int], ASGraph] = {}
        self._artifacts: dict[object, _DiversityArtifacts] = {}
        self._contexts: dict[object, DiversityContext] = {}
        #: Shared batched-bargaining engine of the session.
        self.negotiation = NegotiationEngine()

    # ------------------------------------------------------------------
    # Shared-state accessors
    # ------------------------------------------------------------------
    def _generated_topology(
        self, key: tuple[int, int, int, int, int]
    ) -> GeneratedTopology:
        """Generate (or reuse) the synthetic topology for a parameter key."""
        topology = self._generated.get(key)
        if topology is None:
            tier1, tier2, tier3, stubs, seed = key
            topology = generate_topology(
                num_tier1=tier1,
                num_tier2=tier2,
                num_tier3=tier3,
                num_stubs=stubs,
                seed=seed,
            )
            self._generated[key] = topology
        return topology

    def _loaded_topology(self, path: str) -> ASGraph:
        """Load (or reuse) an ``as-rel`` file, keyed by path + file stamp."""
        try:
            stat = os.stat(path)
        except OSError as error:
            raise ValidationError(
                f"cannot read topology {path}: {error.strerror or error}"
            ) from error
        key = (os.path.abspath(path), stat.st_size, stat.st_mtime_ns)
        graph = self._loaded.get(key)
        if graph is None:
            graph = load_as_rel(path)
            self._loaded[key] = graph
        return graph

    def _diversity_artifacts(
        self, cache_key: object, graph: ASGraph
    ) -> _DiversityArtifacts:
        """Derive (or reuse) the agreements + MA index + engine of a graph."""
        artifacts = self._artifacts.get(cache_key)
        if artifacts is None or artifacts.graph is not graph:
            agreements = list(enumerate_mutuality_agreements(graph))
            artifacts = _DiversityArtifacts(
                graph=graph,
                engine=path_engine_for(graph),
                agreements=agreements,
                index=build_ma_path_index(agreements),
            )
            self._artifacts[cache_key] = artifacts
        return artifacts

    def context_for(self, config) -> DiversityContext:
        """The session's shared experiment context for a diversity config.

        The context's negotiation engine is the session's own — the
        "one shared NegotiationEngine" seam holds for every workflow,
        so any state the engine grows later is shared session-wide.
        The context is re-bound (not mutated) when it came from the
        per-process build memo, which other sessions may also hold.
        """
        context = context_for(config, self._contexts.get(config))
        if context.negotiation is not self.negotiation:
            context = dataclasses.replace(context, negotiation=self.negotiation)
        self._contexts[config] = context
        return context

    # ------------------------------------------------------------------
    # Workflows
    # ------------------------------------------------------------------
    def topology(self, request: TopologyRequest | None = None) -> TopologyResult:
        """Generate a synthetic topology; optionally write it as ``as-rel``."""
        request = request or TopologyRequest()
        topology = self._generated_topology(request.cache_key())
        graph = topology.graph
        if request.output is not None:
            try:
                save_as_rel(graph, request.output)
            except OSError as error:
                raise OutputError(
                    f"cannot write topology to {request.output}: "
                    f"{error.strerror or error}"
                ) from error
        return TopologyResult(
            tier1=request.tier1,
            tier2=request.tier2,
            tier3=request.tier3,
            stubs=request.stubs,
            seed=request.seed,
            num_ases=len(graph),
            num_transit_links=graph.num_transit_links(),
            num_peering_links=graph.num_peering_links(),
            graph_description=str(graph),
            output=request.output,
        )

    def diversity(self, request: DiversityRequest | None = None) -> DiversityResult:
        """Run the §VI path-diversity analysis on a loaded or generated graph."""
        request = request or DiversityRequest()
        if request.topology is not None:
            graph = self._loaded_topology(request.topology)
            source = "loaded"
            cache_key: object = ("file", os.path.abspath(request.topology))
        else:
            graph = self._generated_topology(request.generation_key()).graph
            source = "generated"
            cache_key = ("generated", request.generation_key())
        artifacts = self._diversity_artifacts(cache_key, graph)
        analysis = analyze_path_diversity(
            graph,
            agreements=artifacts.agreements,
            sample_size=request.sample_size,
            seed=request.seed,
            engine=artifacts.engine,
            index=artifacts.index,
        )
        rows = []
        for scenario in _DIVERSITY_REPORT_SCENARIOS:
            rows.append(
                DiversityScenarioRow(
                    scenario=scenario,
                    mean_paths=analysis.path_cdf(scenario).mean,
                    mean_destinations=analysis.destination_cdf(scenario).mean,
                )
            )
        extra = analysis.additional_path_summary()
        return DiversityResult(
            source=source,
            topology_path=request.topology,
            graph_description=str(graph),
            num_agreements=len(artifacts.agreements),
            sample_size=request.sample_size,
            seed=request.seed,
            rows=tuple(rows),
            additional_paths_mean=extra["mean"],
            additional_paths_max=extra["max"],
        )

    def experiments(
        self, request: ExperimentsRequest | None = None
    ) -> ExperimentsResult:
        """Run the combined Fig. 2–6 harness with structured sections."""
        request = request or ExperimentsRequest()
        config = RunnerConfig(
            full=request.full, seed=request.seed, trials=request.trials
        )
        context = None
        if request.jobs == 1:
            context = self.context_for(config.diversity())
        sections = run_sections(config, jobs=request.jobs, context=context)
        return ExperimentsResult(
            full=request.full,
            seed=request.seed,
            trials=request.trials,
            jobs=request.jobs,
            sections=sections,
        )

    def simulate(self, request: SimulateRequest | None = None) -> SimulateResult:
        """Run a canned discrete-event scenario.

        ``trace_out`` is written after the run completes; a failed write
        raises :class:`~repro.errors.OutputError` (the run's results are
        lost only to callers that don't catch it — the CLI adapter
        prints the summary before attempting the write, preserving the
        historical output ordering).
        """
        request = request or SimulateRequest()
        result = SimulateResult.from_scenario(
            run_scenario(request.scenario, seed=request.seed, duration=request.duration),
            trace_out=request.trace_out,
        )
        if request.trace_out:
            result.write_trace(request.trace_out)
        return result

    def sweep(
        self,
        request: SweepRequest,
        *,
        progress=None,
    ) -> SweepResult | SweepListResult:
        """Run (or ``--list`` expand) a sharded, resumable sweep."""
        try:
            spec = (
                smoke_spec() if request.smoke else SweepSpec.from_json_file(request.spec)
            )
        except SweepSpecError as error:
            raise ValidationError(str(error)) from error
        if request.list_shards:
            shards = spec.expand()
            return SweepListResult(
                name=spec.name, shard_ids=tuple(s.shard_id for s in shards)
            )
        outcome = run_sweep(
            spec,
            jobs=request.jobs,
            cache_dir=request.cache_dir or DEFAULT_CACHE_DIR,
            out_dir=request.out or DEFAULT_OUT_DIR,
            force=request.force,
            progress=progress,
        )
        return SweepResult(
            name=spec.name,
            executed=outcome.executed,
            reused=outcome.reused,
            summary_path=str(outcome.written["summary"]),
            num_tables=len(outcome.written) - 1,
            summary=outcome.summary,
        )
