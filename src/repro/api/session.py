"""The session façade: one object owning the expensive shared state.

A :class:`Session` is the unit of reuse of the public API.  Construction
is free; state accumulates as workflows run and is keyed by the exact
parameters that produced it, so a repeated call with the same request
reuses instead of rebuilding:

- **Topologies** — synthetic topologies keyed by their generator
  parameters ``(tier1, tier2, tier3, stubs, seed)``; loaded ``as-rel``
  files keyed by path + file stamp (size, mtime), so an edited file is
  re-read, not served stale.
- **Diversity artifacts** — per-topology mutuality-agreement
  enumerations and MA path indexes (the dominant cost of the §VI
  analysis), plus the per-graph compiled
  :class:`~repro.core.PathEngine` that :func:`repro.core.path_engine_for`
  already shares.
- **Experiment contexts** — one
  :class:`~repro.experiments.context.DiversityContext` per
  :class:`~repro.experiments.fig3_paths.PathDiversityConfig`, shared
  across ``experiments()`` calls (sequential runs only: worker
  processes rebuild their own, exactly as ``repro experiments --jobs``
  always has).
- **The negotiation engine** — one shared
  :class:`~repro.bargaining.engine.NegotiationEngine` for every
  batched bargaining evaluation of the session.

Sessions are serialized, not parallel: every workflow runs under one
reentrant lock, so a session shared across threads (the ``repro
serve`` executor and its event loop, say) is safe by mutual exclusion —
concurrent callers queue rather than corrupt the caches.  All results
are plain values — a session can be dropped at any time without losing
anything but its caches.

Warm-state growth is reportable and boundable: every cache is a
:class:`~repro.core.caching.BoundedCache` (``cache_limit`` bounds each
one; ``None`` keeps them unbounded), :meth:`Session.cache_stats`
reports size/hit/miss/eviction counters per cache, and a session is a
context manager — :meth:`Session.close` (or leaving the ``with`` block)
drops every cache and marks the session closed, after which workflows
raise :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.agreements.agreement import Agreement
from repro.agreements.mutuality import enumerate_mutuality_agreements
from repro.api.requests import (
    DiversityRequest,
    ExperimentsRequest,
    GrcAllRequest,
    NegotiateRequest,
    SimulateRequest,
    SweepRequest,
    TopologyRequest,
)
from repro.api.results import (
    DiversityResult,
    DiversityScenarioRow,
    ExperimentsResult,
    GrcAllResult,
    NegotiateResult,
    SimulateResult,
    SweepListResult,
    SweepResult,
    TopologyResult,
)
from repro.bargaining.efficiency import expected_truthful_nash_product
from repro.bargaining.engine import NegotiationEngine
from repro.bargaining.mechanism import (
    SolvedCohort,
    draw_trial_pairs,
    solve_trial_cohorts,
)
from repro.core import PathEngine, compile_as_rel_file, compile_topology, path_engine_for
from repro.core.artifacts import ArtifactStore
from repro.core.caching import BoundedCache
from repro.errors import OutputError, ServiceError, ValidationError
from repro.experiments.context import DiversityContext, context_for
from repro.experiments.runner import RunnerConfig, run_sections
from repro.paths.diversity import analyze_path_diversity
from repro.paths.ma_paths import MAPathIndex, build_ma_path_index
from repro.simulation.scenarios import run_scenario
from repro.sweep import (
    DEFAULT_CACHE_DIR,
    DEFAULT_OUT_DIR,
    SweepSpec,
    SweepSpecError,
    run_sweep,
    smoke_spec,
)
from repro.paths.grc_all import plan_ranges, run_grc_all
from repro.topology.caida import CaidaFormatError, load_as_rel, save_as_rel
from repro.topology.generator import GeneratedTopology, generate_topology
from repro.topology.gml import GmlFormatError, load_gml, save_gml
from repro.topology.graph import ASGraph

#: The conclusion degrees the diversity report lists, in report order.
_DIVERSITY_REPORT_SCENARIOS = ("GRC", "MA* (Top 1)", "MA* (Top 5)", "MA*", "MA")


@dataclass
class _DiversityArtifacts:
    """Everything expensive the diversity analysis derives per topology."""

    graph: ASGraph
    engine: PathEngine
    agreements: list[Agreement]
    index: MAPathIndex


class Session:
    """Reusable execution context for every public workflow.

    ``cache_limit`` bounds each internal cache to that many entries
    (LRU eviction); ``None`` keeps them unbounded — the historical
    behavior, right for scripts, while long-lived servers pass a bound
    so warm state cannot grow without limit.
    """

    def __init__(self, *, cache_limit: int | None = None) -> None:
        self._generated: BoundedCache = BoundedCache(cache_limit)
        self._loaded: BoundedCache = BoundedCache(cache_limit)
        self._artifacts: BoundedCache = BoundedCache(cache_limit)
        self._contexts: BoundedCache = BoundedCache(cache_limit)
        self._truthful: BoundedCache = BoundedCache(cache_limit)
        #: Serializes every workflow: concurrent callers queue here.
        self._lock = threading.RLock()
        self._closed = False
        #: Shared batched-bargaining engine of the session.
        self.negotiation = NegotiationEngine()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (workflows now raise)."""
        return self._closed

    def close(self) -> None:
        """Drop every cache and refuse further workflows.

        Idempotent.  Results already returned stay valid — they are
        plain values — but subsequent workflow calls raise
        :class:`~repro.errors.ServiceError`.
        """
        with self._lock:
            self._closed = True
            for cache in self._caches().values():
                cache.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @contextlib.contextmanager
    def _entered(self):
        """The per-workflow guard: one caller at a time, never closed."""
        with self._lock:
            if self._closed:
                raise ServiceError("session is closed")
            yield

    def _caches(self) -> dict[str, BoundedCache]:
        return {
            "generated_topologies": self._generated,
            "loaded_topologies": self._loaded,
            "diversity_artifacts": self._artifacts,
            "experiment_contexts": self._contexts,
            "truthful_nash_products": self._truthful,
        }

    def cache_stats(self) -> dict[str, dict[str, int | None]]:
        """Size/bound/hit/miss/eviction counters, one entry per cache.

        This is what ``repro serve`` surfaces under ``session`` on its
        ``/stats`` endpoint to report (and prove bounded) warm-state
        growth.
        """
        with self._lock:
            return {name: cache.stats() for name, cache in self._caches().items()}

    # ------------------------------------------------------------------
    # Shared-state accessors
    # ------------------------------------------------------------------
    def _generated_topology(
        self, key: tuple[int, int, int, int, int]
    ) -> GeneratedTopology:
        """Generate (or reuse) the synthetic topology for a parameter key."""
        topology = self._generated.get(key)
        if topology is None:
            tier1, tier2, tier3, stubs, seed = key
            topology = generate_topology(
                num_tier1=tier1,
                num_tier2=tier2,
                num_tier3=tier3,
                num_stubs=stubs,
                seed=seed,
            )
            self._generated.put(key, topology)
        return topology

    def _loaded_topology(self, path: str) -> ASGraph:
        """Load (or reuse) a topology file, keyed by path + file stamp.

        The serialization is chosen by suffix: ``.gml`` files parse as
        GML (:mod:`repro.topology.gml`), everything else as CAIDA
        ``as-rel``.
        """
        try:
            stat = os.stat(path)
        except OSError as error:
            raise ValidationError(
                f"cannot read topology {path}: {error.strerror or error}"
            ) from error
        key = (os.path.abspath(path), stat.st_size, stat.st_mtime_ns)
        graph = self._loaded.get(key)
        if graph is None:
            if path.endswith(".gml"):
                try:
                    graph = load_gml(path)
                except GmlFormatError as error:
                    raise ValidationError(
                        f"cannot parse GML topology {path}: {error}"
                    ) from error
            else:
                graph = load_as_rel(path)
            self._loaded.put(key, graph)
        return graph

    def _diversity_artifacts(
        self, cache_key: object, graph: ASGraph
    ) -> _DiversityArtifacts:
        """Derive (or reuse) the agreements + MA index + engine of a graph."""
        artifacts = self._artifacts.get(cache_key)
        if artifacts is None or artifacts.graph is not graph:
            agreements = list(enumerate_mutuality_agreements(graph))
            artifacts = _DiversityArtifacts(
                graph=graph,
                engine=path_engine_for(graph),
                agreements=agreements,
                index=build_ma_path_index(agreements),
            )
            self._artifacts.put(cache_key, artifacts)
        return artifacts

    def _truthful_value(self, distribution_name: str, distribution) -> float:
        """The memoized truthful expected Nash product of a distribution."""
        value = self._truthful.get(distribution_name)
        if value is None:
            value = expected_truthful_nash_product(distribution)
            self._truthful.put(distribution_name, value)
        return value

    def topology_fingerprint(self, path: str) -> str:
        """Content fingerprint of an ``as-rel`` file (via the load cache).

        ``repro serve`` keys cached per-topology results on this digest,
        so an edited file changes the key instead of serving stale
        results.
        """
        with self._entered():
            return self._loaded_topology(path).content_fingerprint()

    def context_for(self, config) -> DiversityContext:
        """The session's shared experiment context for a diversity config.

        The context's negotiation engine is the session's own — the
        "one shared NegotiationEngine" seam holds for every workflow,
        so any state the engine grows later is shared session-wide.
        The context is re-bound (not mutated) when it came from the
        per-process build memo, which other sessions may also hold.
        """
        context = context_for(config, self._contexts.get(config))
        if context.negotiation is not self.negotiation:
            context = dataclasses.replace(context, negotiation=self.negotiation)
        self._contexts.put(config, context)
        return context

    # ------------------------------------------------------------------
    # Workflows
    # ------------------------------------------------------------------
    def topology(self, request: TopologyRequest | None = None) -> TopologyResult:
        """Generate a synthetic topology; optionally write it to a file.

        ``request.file_format`` selects the serialization of the
        written file: CAIDA ``as-rel`` (default) or ``gml``.
        """
        request = request or TopologyRequest()
        with self._entered():
            topology = self._generated_topology(request.cache_key())
        graph = topology.graph
        # The write happens outside the lock: it touches no shared state
        # and a slow disk should not stall concurrent workflows.
        if request.output is not None:
            writer = save_gml if request.file_format == "gml" else save_as_rel
            try:
                writer(graph, request.output)
            except OSError as error:
                raise OutputError(
                    f"cannot write topology to {request.output}: "
                    f"{error.strerror or error}"
                ) from error
        return TopologyResult(
            tier1=request.tier1,
            tier2=request.tier2,
            tier3=request.tier3,
            stubs=request.stubs,
            seed=request.seed,
            num_ases=len(graph),
            num_transit_links=graph.num_transit_links(),
            num_peering_links=graph.num_peering_links(),
            graph_description=str(graph),
            output=request.output,
            file_format=request.file_format,
        )

    def diversity(self, request: DiversityRequest | None = None) -> DiversityResult:
        """Run the §VI path-diversity analysis on a loaded or generated graph."""
        request = request or DiversityRequest()
        with self._entered():
            if request.topology is not None:
                graph = self._loaded_topology(request.topology)
                source = "loaded"
                cache_key: object = ("file", os.path.abspath(request.topology))
            else:
                graph = self._generated_topology(request.generation_key()).graph
                source = "generated"
                cache_key = ("generated", request.generation_key())
            artifacts = self._diversity_artifacts(cache_key, graph)
            # The analysis stays inside the guard: it grows the shared
            # engine's per-source memos.
            analysis = analyze_path_diversity(
                graph,
                agreements=artifacts.agreements,
                sample_size=request.sample_size,
                seed=request.seed,
                engine=artifacts.engine,
                index=artifacts.index,
            )
        rows = []
        for scenario in _DIVERSITY_REPORT_SCENARIOS:
            rows.append(
                DiversityScenarioRow(
                    scenario=scenario,
                    mean_paths=analysis.path_cdf(scenario).mean,
                    mean_destinations=analysis.destination_cdf(scenario).mean,
                )
            )
        extra = analysis.additional_path_summary()
        return DiversityResult(
            source=source,
            topology_path=request.topology,
            graph_description=str(graph),
            num_agreements=len(artifacts.agreements),
            sample_size=request.sample_size,
            seed=request.seed,
            rows=tuple(rows),
            additional_paths_mean=extra["mean"],
            additional_paths_max=extra["max"],
        )

    def experiments(
        self, request: ExperimentsRequest | None = None
    ) -> ExperimentsResult:
        """Run the combined Fig. 2–6 harness with structured sections."""
        request = request or ExperimentsRequest()
        config = RunnerConfig(
            full=request.full, seed=request.seed, trials=request.trials
        )
        with self._entered():
            context = None
            if request.jobs == 1:
                context = self.context_for(config.diversity())
            sections = run_sections(
                config,
                jobs=request.jobs,
                context=context,
                artifact_dir=request.artifact_dir,
            )
        return ExperimentsResult(
            full=request.full,
            seed=request.seed,
            trials=request.trials,
            jobs=request.jobs,
            sections=sections,
        )

    def grc_all(self, request: GrcAllRequest | None = None) -> GrcAllResult:
        """Run the all-sources GRC pass, optionally sharded across processes.

        ``as-rel`` inputs take the streaming compile path — lines to
        compiled arrays, never materializing the dict-of-sets graph —
        which is what keeps a full CAIDA snapshot ingestible.  ``.gml``
        inputs and generated topologies compile from their graph.  With
        ``jobs > 1`` the compiled view is published into the
        memory-mapped artifact store and the source ranges run in
        worker processes; results are byte-identical to ``jobs == 1``.
        """
        request = request or GrcAllRequest()
        with self._entered():
            if request.topology is not None:
                source = "loaded"
                if request.topology.endswith(".gml"):
                    compiled = compile_topology(self._loaded_topology(request.topology))
                else:
                    try:
                        compiled = compile_as_rel_file(request.topology)
                    except OSError as error:
                        raise ValidationError(
                            f"cannot read topology {request.topology}: "
                            f"{error.strerror or error}"
                        ) from error
                    except CaidaFormatError as error:
                        raise ValidationError(
                            f"cannot parse topology {request.topology}: {error}"
                        ) from error
            else:
                source = "generated"
                compiled = compile_topology(
                    self._generated_topology(request.generation_key()).graph
                )
            num_shards = 1
            if request.jobs > 1 and compiled.n > 0:
                store = ArtifactStore(request.artifact_dir)
                artifact_path = store.ensure_compiled(compiled)
                ranges = plan_ranges(
                    compiled.n,
                    request.shards if request.shards is not None else request.jobs,
                )
                num_shards = len(ranges)
                grc_pass = run_grc_all(
                    compiled,
                    jobs=request.jobs,
                    shards=request.shards,
                    artifact_path=artifact_path,
                )
            else:
                grc_pass = run_grc_all(compiled)
        # The CSV write happens outside the lock, like topology output.
        if request.output is not None:
            try:
                grc_pass.write_csv(request.output)
            except OSError as error:
                raise OutputError(
                    f"cannot write per-source table to {request.output}: "
                    f"{error.strerror or error}"
                ) from error
        summary = grc_pass.summary()
        return GrcAllResult(
            source=source,
            topology_path=request.topology,
            fingerprint=grc_pass.fingerprint,
            jobs=request.jobs,
            shards=num_shards,
            num_ases=int(summary["num_ases"]),
            total_paths=int(summary["total_paths"]),
            mean_paths=float(summary["mean_paths"]),
            max_paths=int(summary["max_paths"]),
            mean_destinations=float(summary["mean_destinations"]),
            max_destinations=int(summary["max_destinations"]),
            output=request.output,
        )

    def simulate(self, request: SimulateRequest | None = None) -> SimulateResult:
        """Run a canned discrete-event scenario.

        ``trace_out`` is written after the run completes; a failed write
        raises :class:`~repro.errors.OutputError` (the run's results are
        lost only to callers that don't catch it — the CLI adapter
        prints the summary before attempting the write, preserving the
        historical output ordering).
        """
        request = request or SimulateRequest()
        overrides: dict[str, object] = {}
        if request.population:
            overrides["population"] = request.population
        with self._entered():
            scenario_result = run_scenario(
                request.scenario,
                seed=request.seed,
                duration=request.duration,
                **overrides,
            )
        result = SimulateResult.from_scenario(
            scenario_result, trace_out=request.trace_out
        )
        if request.trace_out:
            result.write_trace(request.trace_out)
        return result

    def sweep(
        self,
        request: SweepRequest,
        *,
        progress=None,
    ) -> SweepResult | SweepListResult:
        """Run (or ``--list`` expand) a sharded, resumable sweep."""
        try:
            spec = (
                smoke_spec() if request.smoke else SweepSpec.from_json_file(request.spec)
            )
        except SweepSpecError as error:
            raise ValidationError(str(error)) from error
        if request.list_shards:
            shards = spec.expand()
            return SweepListResult(
                name=spec.name, shard_ids=tuple(s.shard_id for s in shards)
            )
        with self._entered():
            outcome = run_sweep(
                spec,
                jobs=request.jobs,
                cache_dir=request.cache_dir or DEFAULT_CACHE_DIR,
                out_dir=request.out or DEFAULT_OUT_DIR,
                force=request.force,
                progress=progress,
            )
        return SweepResult(
            name=spec.name,
            executed=outcome.executed,
            reused=outcome.reused,
            summary_path=str(outcome.written["summary"]),
            num_tables=len(outcome.written) - 1,
            summary=outcome.summary,
        )

    def negotiate(self, request: NegotiateRequest | None = None) -> NegotiateResult:
        """Run one batched BOSCO negotiation pass (Fig. 2-style PoD trials)."""
        return self.negotiate_many([request or NegotiateRequest()])[0]

    def negotiate_many(
        self, requests: Sequence[NegotiateRequest]
    ) -> list[NegotiateResult]:
        """Solve several negotiation requests in **one** engine batch.

        All requests must share a coalesce key (same named distribution,
        same choice-set cardinality); each request's trials are drawn
        from its own seeded RNG, all cohorts are packed into a single
        :func:`~repro.bargaining.mechanism.solve_trial_cohorts` call,
        and each result is **bit-identical** to a solo
        :meth:`negotiate` for that request — the engine's methods are
        row-independent.  This is the cross-client coalescing entry
        point ``repro serve`` batches concurrent negotiation requests
        through.
        """
        if not requests:
            return []
        keys = {request.coalesce_key() for request in requests}
        if len(keys) != 1:
            raise ValidationError(
                "negotiate_many requires one coalesce group (same distribution "
                f"and num_choices), got {sorted(keys)}"
            )
        with self._entered():
            distribution = requests[0].joint_distribution()
            truthful = self._truthful_value(requests[0].distribution, distribution)
            cohorts = [
                draw_trial_pairs(
                    distribution,
                    request.num_choices,
                    request.trials,
                    seed=request.seed,
                )
                for request in requests
            ]
            solved = solve_trial_cohorts(
                self.negotiation, distribution, cohorts, truthful_value=truthful
            )
        return [
            _negotiate_result(request, cohort, truthful, self.negotiation)
            for request, cohort in zip(requests, solved)
        ]


def _negotiate_result(
    request: NegotiateRequest,
    cohort: SolvedCohort,
    truthful_value: float,
    engine: NegotiationEngine,
) -> NegotiateResult:
    """Summarize one solved cohort exactly like ``pod_statistics`` would."""
    equilibria = cohort.solution.equilibria
    counts_x, counts_y = engine.equilibrium_choice_counts(equilibria)
    pods: list[float] = []
    choice_counts: list[float] = []
    best: int | None = None
    for trial in range(len(cohort.batch)):
        if not equilibria.converged[trial]:
            continue
        pods.append(float(cohort.solution.pods[trial]))
        choice_counts.append((int(counts_x[trial]) + int(counts_y[trial])) / 2.0)
        if best is None or cohort.solution.pods[trial] < cohort.solution.pods[best]:
            best = trial
    if best is None:
        raise ServiceError(
            f"no negotiation trial converged (distribution {request.distribution}, "
            f"W={request.num_choices}, {request.trials} trials, seed {request.seed})"
        )
    return NegotiateResult(
        distribution=request.distribution,
        num_choices=request.num_choices,
        trials=request.trials,
        seed=request.seed,
        converged_trials=len(pods),
        skipped_trials=request.trials - len(pods),
        min_pod=float(np.min(pods)),
        mean_pod=float(np.mean(pods)),
        max_pod=float(np.max(pods)),
        mean_equilibrium_choices=float(np.mean(choice_counts)),
        best_expected_nash_product=float(cohort.solution.nash_products[best]),
        truthful_nash_product=float(truthful_value),
    )
