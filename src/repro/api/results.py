"""Typed results of the public API, each with a JSON envelope.

Every :class:`~repro.api.session.Session` workflow returns one of these
dataclasses.  They carry *structured* data — numbers as numbers, tables
as headers+rows, CDF series as raw floats — and serialize to the
schema-versioned envelopes of :mod:`repro.envelope` via
``to_json_dict()``/``from_json_dict()``.

The CLI's historical text output is a *pure rendering* of the same
values: the ``render_*_text`` functions below reproduce it byte-for-byte
(golden tests pin this), so ``--format text`` and ``--format json`` are
two views of one result object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.envelope import envelope, expect_envelope, require_keys
from repro.errors import EnvelopeError, OutputError
from repro.experiments.reporting import SectionResult, render_report
from repro.simulation.scenarios import ScenarioResult

__all__ = [
    "TopologyResult",
    "DiversityScenarioRow",
    "DiversityResult",
    "ExperimentsResult",
    "GrcAllResult",
    "SimulateResult",
    "PopulationResult",
    "AgentsListResult",
    "ScenarioListResult",
    "NegotiateResult",
    "SweepResult",
    "SweepListResult",
    "JobStatusResult",
    "JOB_STATES",
    "render_topology_text",
    "render_job_status_text",
    "render_diversity_text",
    "render_experiments_text",
    "render_grc_all_text",
    "render_simulate_text",
    "render_agents_list_text",
    "render_scenario_list_text",
    "render_negotiate_text",
    "render_sweep_text",
    "render_sweep_list_text",
]


@dataclass(frozen=True)
class TopologyResult:
    """Outcome of a topology generation (``Session.topology``)."""

    tier1: int
    tier2: int
    tier3: int
    stubs: int
    seed: int
    num_ases: int
    num_transit_links: int
    num_peering_links: int
    graph_description: str
    output: str | None = None
    file_format: str = "as-rel"

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "topology_result",
            {
                "tier1": self.tier1,
                "tier2": self.tier2,
                "tier3": self.tier3,
                "stubs": self.stubs,
                "seed": self.seed,
                "num_ases": self.num_ases,
                "num_transit_links": self.num_transit_links,
                "num_peering_links": self.num_peering_links,
                "graph_description": self.graph_description,
                "output": self.output,
                "file_format": self.file_format,
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "TopologyResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "topology_result")
        require_keys(
            payload,
            "topology_result",
            (
                "tier1",
                "tier2",
                "tier3",
                "stubs",
                "seed",
                "num_ases",
                "num_transit_links",
                "num_peering_links",
                "graph_description",
            ),
        )
        return cls(
            tier1=int(payload["tier1"]),
            tier2=int(payload["tier2"]),
            tier3=int(payload["tier3"]),
            stubs=int(payload["stubs"]),
            seed=int(payload["seed"]),
            num_ases=int(payload["num_ases"]),
            num_transit_links=int(payload["num_transit_links"]),
            num_peering_links=int(payload["num_peering_links"]),
            graph_description=payload["graph_description"],
            output=payload.get("output"),
            file_format=payload.get("file_format", "as-rel"),
        )


@dataclass(frozen=True)
class DiversityScenarioRow:
    """Per-conclusion-degree headline numbers of the diversity analysis."""

    scenario: str
    mean_paths: float
    mean_destinations: float

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form (always nested inside a diversity result)."""
        return {
            "scenario": self.scenario,
            "mean_paths": self.mean_paths,
            "mean_destinations": self.mean_destinations,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "DiversityScenarioRow":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            scenario=data["scenario"],
            mean_paths=float(data["mean_paths"]),
            mean_destinations=float(data["mean_destinations"]),
        )


@dataclass(frozen=True)
class DiversityResult:
    """Outcome of the §VI diversity analysis (``Session.diversity``)."""

    source: str  # "loaded" | "generated"
    topology_path: str | None
    graph_description: str
    num_agreements: int
    sample_size: int
    seed: int
    rows: tuple[DiversityScenarioRow, ...]
    additional_paths_mean: float
    additional_paths_max: float

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "diversity_result",
            {
                "source": self.source,
                "topology_path": self.topology_path,
                "graph_description": self.graph_description,
                "num_agreements": self.num_agreements,
                "sample_size": self.sample_size,
                "seed": self.seed,
                "rows": [row.to_json_dict() for row in self.rows],
                "additional_paths_mean": self.additional_paths_mean,
                "additional_paths_max": self.additional_paths_max,
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "DiversityResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "diversity_result")
        require_keys(
            payload,
            "diversity_result",
            (
                "source",
                "graph_description",
                "num_agreements",
                "sample_size",
                "seed",
                "rows",
                "additional_paths_mean",
                "additional_paths_max",
            ),
        )
        return cls(
            source=payload["source"],
            topology_path=payload.get("topology_path"),
            graph_description=payload["graph_description"],
            num_agreements=int(payload["num_agreements"]),
            sample_size=int(payload["sample_size"]),
            seed=int(payload["seed"]),
            rows=tuple(
                DiversityScenarioRow.from_json_dict(row) for row in payload["rows"]
            ),
            additional_paths_mean=float(payload["additional_paths_mean"]),
            additional_paths_max=float(payload["additional_paths_max"]),
        )


@dataclass(frozen=True)
class ExperimentsResult:
    """Outcome of the combined harness (``Session.experiments``)."""

    full: bool
    seed: int | None
    trials: int | None
    jobs: int
    sections: tuple[SectionResult, ...]

    def section(self, key: str) -> SectionResult:
        """Look up one section (``stability``, ``fig2`` … ``fig6``)."""
        for entry in self.sections:
            if entry.key == key:
                return entry
        raise KeyError(
            f"no section {key!r}; available: "
            f"{', '.join(entry.key for entry in self.sections)}"
        )

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope (sections nest their own)."""
        return envelope(
            "experiments_result",
            {
                "full": self.full,
                "seed": self.seed,
                "trials": self.trials,
                "jobs": self.jobs,
                "sections": [section.to_json_dict() for section in self.sections],
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentsResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "experiments_result")
        require_keys(payload, "experiments_result", ("sections",))
        return cls(
            full=bool(payload.get("full", False)),
            seed=payload.get("seed"),
            trials=payload.get("trials"),
            jobs=int(payload.get("jobs", 1)),
            sections=tuple(
                SectionResult.from_json_dict(section)
                for section in payload["sections"]
            ),
        )


@dataclass(frozen=True)
class GrcAllResult:
    """Outcome of the all-sources GRC pass (``Session.grc_all``).

    The envelope carries the deterministic aggregate statistics plus
    the run's shape (jobs/shards) and the content fingerprint of the
    topology the pass ran on; the per-source table travels as a CSV
    file (``output``), not inside the envelope, because at internet
    scale it is tens of thousands of rows.
    """

    source: str  # "loaded" | "generated"
    topology_path: str | None
    fingerprint: str
    jobs: int
    shards: int
    num_ases: int
    total_paths: int
    mean_paths: float
    max_paths: int
    mean_destinations: float
    max_destinations: int
    output: str | None = None

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "grc_all_result",
            {
                "source": self.source,
                "topology_path": self.topology_path,
                "fingerprint": self.fingerprint,
                "jobs": self.jobs,
                "shards": self.shards,
                "num_ases": self.num_ases,
                "total_paths": self.total_paths,
                "mean_paths": self.mean_paths,
                "max_paths": self.max_paths,
                "mean_destinations": self.mean_destinations,
                "max_destinations": self.max_destinations,
                "output": self.output,
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "GrcAllResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "grc_all_result")
        require_keys(
            payload,
            "grc_all_result",
            (
                "source",
                "fingerprint",
                "num_ases",
                "total_paths",
                "mean_paths",
                "max_paths",
                "mean_destinations",
                "max_destinations",
            ),
        )
        return cls(
            source=payload["source"],
            topology_path=payload.get("topology_path"),
            fingerprint=payload["fingerprint"],
            jobs=int(payload.get("jobs", 1)),
            shards=int(payload.get("shards", 1)),
            num_ases=int(payload["num_ases"]),
            total_paths=int(payload["total_paths"]),
            mean_paths=float(payload["mean_paths"]),
            max_paths=int(payload["max_paths"]),
            mean_destinations=float(payload["mean_destinations"]),
            max_destinations=int(payload["max_destinations"]),
            output=payload.get("output"),
        )


@dataclass(frozen=True)
class PopulationResult:
    """Per-profile metrics of a heterogeneous population run.

    Built from the ``profile_metrics`` records a population-carrying
    scenario appends to its trace: one row per behavior profile with
    uptake, realized utility, Price of Dishonesty, and default rate.
    """

    name: str
    profiles: tuple[dict[str, Any], ...]

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "population_result",
            {
                "name": self.name,
                "profiles": [dict(row) for row in self.profiles],
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "PopulationResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "population_result")
        require_keys(payload, "population_result", ("name", "profiles"))
        return cls(
            name=payload["name"],
            profiles=tuple(dict(row) for row in payload["profiles"]),
        )

    @classmethod
    def from_scenario(cls, result: ScenarioResult) -> "PopulationResult | None":
        """Extract the per-profile metrics of a run (None if homogeneous)."""
        records = result.trace.of_kind("profile_metrics")
        if not records:
            return None
        return cls(
            name=result.name,
            profiles=tuple(dict(record.data) for record in records),
        )


@dataclass(frozen=True)
class SimulateResult:
    """Outcome of one scenario run (``Session.simulate``).

    The envelope carries the summary-level data (name, seed, horizon,
    counts per record kind, headline lines) — everything the text
    summary renders.  The full in-memory
    :class:`~repro.simulation.scenarios.ScenarioResult` (with its trace)
    rides along for same-process consumers such as ``--trace-out``, but
    is excluded from serialization and equality; use
    ``ScenarioResult.to_json_dict()`` when the whole trace must travel.
    """

    name: str
    seed: int
    duration: float
    events_processed: int
    num_trace_records: int
    kinds: dict[str, int]
    headline: tuple[str, ...]
    trace_out: str | None = None
    #: Per-profile metrics of a heterogeneous population run (None for
    #: the homogeneous scenarios).
    population: PopulationResult | None = None
    scenario_result: ScenarioResult | None = field(
        default=None, compare=False, repr=False
    )

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        payload = {
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "events_processed": self.events_processed,
            "num_trace_records": self.num_trace_records,
            "kinds": dict(self.kinds),
            "headline": list(self.headline),
            "trace_out": self.trace_out,
        }
        if self.population is not None:
            payload["population"] = self.population.to_json_dict()
        return envelope("simulate_result", payload)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SimulateResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "simulate_result")
        require_keys(
            payload,
            "simulate_result",
            ("name", "seed", "duration", "events_processed", "num_trace_records"),
        )
        population_payload = payload.get("population")
        return cls(
            name=payload["name"],
            seed=int(payload["seed"]),
            duration=float(payload["duration"]),
            events_processed=int(payload["events_processed"]),
            num_trace_records=int(payload["num_trace_records"]),
            kinds={str(k): int(v) for k, v in payload.get("kinds", {}).items()},
            headline=tuple(payload.get("headline", ())),
            trace_out=payload.get("trace_out"),
            population=(
                PopulationResult.from_json_dict(population_payload)
                if population_payload
                else None
            ),
        )

    @classmethod
    def from_scenario(
        cls, result: ScenarioResult, *, trace_out: str | None = None
    ) -> "SimulateResult":
        """Build the API result from an engine-level scenario result."""
        return cls(
            name=result.name,
            seed=result.seed,
            duration=result.duration,
            events_processed=result.events_processed,
            num_trace_records=len(result.trace),
            kinds=result.trace.kinds(),
            headline=tuple(result.headline),
            trace_out=trace_out,
            population=PopulationResult.from_scenario(result),
            scenario_result=result,
        )

    def write_trace(self, path: str) -> None:
        """Write the full JSONL metrics trace to ``path``.

        Only available on results that still hold their in-process
        :class:`~repro.simulation.scenarios.ScenarioResult` (not on
        envelope-restored ones).  Raises
        :class:`~repro.errors.OutputError` when the file cannot be
        written.
        """
        if self.scenario_result is None:
            raise ValueError(
                "this result was restored from an envelope and carries no trace"
            )
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.scenario_result.trace_text())
        except OSError as error:
            raise OutputError(
                f"cannot write trace to {path}: {error.strerror}"
            ) from error


@dataclass(frozen=True)
class NegotiateResult:
    """Outcome of one batched negotiation pass (``Session.negotiate``).

    The Fig. 2-style Price-of-Dishonesty statistics over the request's
    random configuration trials, plus the rating of the best (lowest
    PoD) configuration.  Every field is a plain finite number, so the
    envelope is byte-stable and cacheable; the ``repro serve`` result
    cache stores the serialized envelope keyed by the request digest.
    """

    distribution: str
    num_choices: int
    trials: int
    seed: int
    converged_trials: int
    skipped_trials: int
    min_pod: float
    mean_pod: float
    max_pod: float
    mean_equilibrium_choices: float
    best_expected_nash_product: float
    truthful_nash_product: float

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "negotiate_result",
            {
                "distribution": self.distribution,
                "num_choices": self.num_choices,
                "trials": self.trials,
                "seed": self.seed,
                "converged_trials": self.converged_trials,
                "skipped_trials": self.skipped_trials,
                "min_pod": self.min_pod,
                "mean_pod": self.mean_pod,
                "max_pod": self.max_pod,
                "mean_equilibrium_choices": self.mean_equilibrium_choices,
                "best_expected_nash_product": self.best_expected_nash_product,
                "truthful_nash_product": self.truthful_nash_product,
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "NegotiateResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "negotiate_result")
        require_keys(
            payload,
            "negotiate_result",
            (
                "distribution",
                "num_choices",
                "trials",
                "seed",
                "converged_trials",
                "skipped_trials",
                "min_pod",
                "mean_pod",
                "max_pod",
            ),
        )
        return cls(
            distribution=payload["distribution"],
            num_choices=int(payload["num_choices"]),
            trials=int(payload["trials"]),
            seed=int(payload["seed"]),
            converged_trials=int(payload["converged_trials"]),
            skipped_trials=int(payload["skipped_trials"]),
            min_pod=float(payload["min_pod"]),
            mean_pod=float(payload["mean_pod"]),
            max_pod=float(payload["max_pod"]),
            mean_equilibrium_choices=float(
                payload.get("mean_equilibrium_choices", 0.0)
            ),
            best_expected_nash_product=float(
                payload.get("best_expected_nash_product", 0.0)
            ),
            truthful_nash_product=float(payload.get("truthful_nash_product", 0.0)),
        )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of an executed sweep (``Session.sweep``)."""

    name: str
    executed: tuple[str, ...]
    reused: tuple[str, ...]
    summary_path: str
    num_tables: int
    summary: dict[str, Any]

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "sweep_result",
            {
                "name": self.name,
                "executed": list(self.executed),
                "reused": list(self.reused),
                "summary_path": self.summary_path,
                "num_tables": self.num_tables,
                "summary": self.summary,
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "sweep_result")
        require_keys(
            payload, "sweep_result", ("name", "executed", "reused", "summary_path")
        )
        return cls(
            name=payload["name"],
            executed=tuple(payload["executed"]),
            reused=tuple(payload["reused"]),
            summary_path=payload["summary_path"],
            num_tables=int(payload.get("num_tables", 0)),
            summary=dict(payload.get("summary", {})),
        )


@dataclass(frozen=True)
class SweepListResult:
    """Outcome of a ``--list`` sweep expansion (no shard is run)."""

    name: str
    shard_ids: tuple[str, ...]

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "sweep_list_result",
            {"name": self.name, "shard_ids": list(self.shard_ids)},
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepListResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "sweep_list_result")
        require_keys(payload, "sweep_list_result", ("name", "shard_ids"))
        return cls(name=payload["name"], shard_ids=tuple(payload["shard_ids"]))


#: The lifecycle states of an asynchronous job, in order of appearance.
#: ``done``/``failed``/``cancelled`` are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass(frozen=True)
class JobStatusResult:
    """One observation of an asynchronous job (``GET /v1/jobs/<id>``).

    ``progress`` is a small free-form mapping the running workflow
    updates as it goes (sweeps report ``completed``/``total`` shards);
    ``result`` carries the workflow's full result envelope once the
    state is ``done``, and ``error`` an ``error_result`` envelope once
    it is ``failed``.
    """

    job_id: str
    workflow: str
    state: str
    progress: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise EnvelopeError(
                f"unknown job state {self.state!r}; "
                f"known: {', '.join(JOB_STATES)}"
            )

    @property
    def is_terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self.state in ("done", "failed", "cancelled")

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "job_status_result",
            {
                "job_id": self.job_id,
                "workflow": self.workflow,
                "state": self.state,
                "progress": dict(self.progress),
                "result": self.result,
                "error": self.error,
            },
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "JobStatusResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "job_status_result")
        require_keys(
            payload, "job_status_result", ("job_id", "workflow", "state", "progress")
        )
        return cls(
            job_id=payload["job_id"],
            workflow=payload["workflow"],
            state=payload["state"],
            progress=dict(payload["progress"]),
            result=payload.get("result"),
            error=payload.get("error"),
        )


# ----------------------------------------------------------------------
# Pure text renderers: result -> the exact pre-redesign CLI output.
# ----------------------------------------------------------------------
def render_topology_text(result: TopologyResult) -> str:
    """The ``repro topology`` confirmation line."""
    destination = result.output if result.output is not None else "(not written)"
    return (
        f"wrote {result.graph_description} to {destination} "
        f"({result.num_transit_links} transit links, "
        f"{result.num_peering_links} peering links)"
    )


def render_diversity_text(result: DiversityResult) -> str:
    """The ``repro diversity`` report, byte-identical to the original."""
    if result.source == "loaded":
        lines = [f"loaded {result.graph_description} from {result.topology_path}"]
    else:
        lines = [f"generated synthetic topology: {result.graph_description}"]
    lines.append(f"mutuality-based agreements: {result.num_agreements}")
    for row in result.rows:
        lines.append(
            f"{row.scenario:<12} mean length-3 paths = {row.mean_paths:9.0f}   "
            f"mean destinations = {row.mean_destinations:7.0f}"
        )
    lines.append(
        f"additional paths per AS: mean {result.additional_paths_mean:.0f}, "
        f"max {result.additional_paths_max:.0f}"
    )
    return "\n".join(lines)


def render_experiments_text(result: ExperimentsResult) -> str:
    """The combined report text (the historical ``run_all`` string)."""
    return render_report(result.sections)


def render_grc_all_text(result: GrcAllResult) -> str:
    """The ``repro grc-all`` summary report."""
    lines = [
        f"== grc-all: {result.num_ases} ASes, "
        f"{result.jobs} job(s), {result.shards} shard(s) ==",
        f"topology fingerprint: {result.fingerprint}",
        f"total length-3 paths: {result.total_paths}",
        f"paths per source:        mean {result.mean_paths:.2f}, "
        f"max {result.max_paths}",
        f"destinations per source: mean {result.mean_destinations:.2f}, "
        f"max {result.max_destinations}",
    ]
    if result.output is not None:
        lines.append(f"wrote per-source table to {result.output}")
    return "\n".join(lines)


def render_simulate_text(result: SimulateResult) -> str:
    """The scenario summary, byte-identical to ``ScenarioResult.summary``."""
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(result.kinds.items()))
    lines = [
        f"== scenario: {result.name} (seed {result.seed}, "
        f"horizon {result.duration:g}) ==",
        f"events processed: {result.events_processed}",
        f"trace records: {result.num_trace_records} ({kinds})",
        *result.headline,
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class AgentsListResult:
    """The registered behavior profiles (``repro agents list``)."""

    profiles: tuple[dict[str, Any], ...]

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "agents_list_result",
            {"profiles": [dict(row) for row in self.profiles]},
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "AgentsListResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "agents_list_result")
        require_keys(payload, "agents_list_result", ("profiles",))
        return cls(profiles=tuple(dict(row) for row in payload["profiles"]))

    @classmethod
    def build(cls) -> "AgentsListResult":
        """Snapshot the behavior registry."""
        from repro.agents.registry import behavior_catalog

        return cls(profiles=behavior_catalog())


@dataclass(frozen=True)
class ScenarioListResult:
    """The canned scenarios (``repro simulate --list-scenarios``)."""

    scenarios: tuple[dict[str, Any], ...]

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope."""
        return envelope(
            "scenario_list_result",
            {"scenarios": [dict(row) for row in self.scenarios]},
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ScenarioListResult":
        """Inverse of :meth:`to_json_dict`."""
        payload = expect_envelope(data, "scenario_list_result")
        require_keys(payload, "scenario_list_result", ("scenarios",))
        return cls(scenarios=tuple(dict(row) for row in payload["scenarios"]))

    @classmethod
    def build(cls) -> "ScenarioListResult":
        """Snapshot the scenario registry."""
        from repro.simulation.scenarios import scenario_catalog

        return cls(scenarios=scenario_catalog())


def render_agents_list_text(result: AgentsListResult) -> str:
    """The ``repro agents list`` profile catalog."""
    lines = [f"== behavior profiles ({len(result.profiles)}) =="]
    for profile in result.profiles:
        lines.append(f"{profile['profile']}: {profile['description']}")
        for param in profile["parameters"]:
            doc = f"  — {param['doc']}" if param["doc"] else ""
            lines.append(
                f"  {param['name']}: {param['type']} = {param['default']!r}{doc}"
            )
    return "\n".join(lines)


def render_scenario_list_text(result: ScenarioListResult) -> str:
    """The ``repro simulate --list-scenarios`` scenario catalog."""
    lines = [f"== scenarios ({len(result.scenarios)}) =="]
    for scenario in result.scenarios:
        lines.append(f"{scenario['name']}: {scenario['description']}")
        for spec in scenario["fields"]:
            lines.append(
                f"  {spec['name']}: {spec['type']} = {spec['default']!r}"
            )
    return "\n".join(lines)


def render_negotiate_text(result: NegotiateResult) -> str:
    """The ``repro negotiate`` summary report."""
    lines = [
        f"== negotiate: {result.distribution} distribution, "
        f"W={result.num_choices}, {result.trials} trials (seed {result.seed}) ==",
        f"converged: {result.converged_trials}/{result.trials} "
        f"({result.skipped_trials} skipped)",
        f"price of dishonesty: min {result.min_pod:.4f}, "
        f"mean {result.mean_pod:.4f}, max {result.max_pod:.4f}",
        f"mean equilibrium choices: {result.mean_equilibrium_choices:.2f}",
        f"best expected Nash product: {result.best_expected_nash_product:.6f} "
        f"(truthful {result.truthful_nash_product:.6f})",
    ]
    return "\n".join(lines)


def render_sweep_text(result: SweepResult) -> str:
    """The sweep run report, byte-identical to ``SweepRunResult.report``."""
    lines = [
        f"== sweep: {result.name} "
        f"({len(result.executed) + len(result.reused)} shards) ==",
        f"computed: {len(result.executed)}   cached: {len(result.reused)}",
        f"summary:  {result.summary_path}",
        f"tables:   {result.num_tables} metric CSVs",
    ]
    return "\n".join(lines)


def render_sweep_list_text(result: SweepListResult) -> str:
    """The ``repro sweep --list`` output."""
    lines = [*result.shard_ids, f"{len(result.shard_ids)} shards"]
    return "\n".join(lines)


def render_job_status_text(result: JobStatusResult) -> str:
    """One human-readable line per job observation."""
    parts = [f"job {result.job_id}", result.workflow, result.state]
    if result.progress:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(result.progress.items())
        )
        parts.append(f"({rendered})")
    return " ".join(parts)
