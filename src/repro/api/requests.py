"""Typed requests: construction is validation.

Every workflow of the public API takes a frozen request dataclass.  The
constructors centralize the parameter checks that used to be scattered
across CLI handlers (``_check_seed``, the ``--jobs``/``--trials``/
``--duration`` guards), so a Python-API caller is rejected with exactly
the same :class:`~repro.errors.ValidationError` message a CLI user sees
(the CLI adapter only adds its ``repro <command>: error:`` prefix).

Field names deliberately mirror the CLI flags; the error messages spell
the flag (``--seed must be non-negative``) because the CLI is the
surface most humans meet first, and one canonical message beats two
near-duplicates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclasses_field, fields
from typing import Any, Mapping

from repro.bargaining.distributions import (
    JointUtilityDistribution,
    paper_distribution_u1,
    paper_distribution_u2,
)
from repro.envelope import envelope, expect_envelope
from repro.errors import ValidationError
from repro.simulation.scenarios import SCENARIOS, scenario_field_names

__all__ = [
    "TopologyRequest",
    "DiversityRequest",
    "ExperimentsRequest",
    "GrcAllRequest",
    "SimulateRequest",
    "NegotiateRequest",
    "SweepRequest",
    "JobRequest",
    "JOB_WORKFLOWS",
    "build_workflow_request",
    "NEGOTIATE_DISTRIBUTIONS",
    "TOPOLOGY_FILE_FORMATS",
]

#: On-disk topology serializations ``repro topology``/``grc-all`` speak.
TOPOLOGY_FILE_FORMATS = ("as-rel", "gml")

#: The named joint utility distributions a negotiation can run under.
NEGOTIATE_DISTRIBUTIONS = {
    "u1": paper_distribution_u1,
    "u2": paper_distribution_u2,
}


def _check_seed(seed: int | None) -> None:
    """Seeds feed ``np.random.default_rng``, which rejects negatives."""
    if seed is not None and seed < 0:
        raise ValidationError(f"--seed must be non-negative, got {seed}")


def _check_positive(name: str, value: int | None) -> None:
    if value is not None and value < 1:
        raise ValidationError(f"--{name} must be a positive integer, got {value}")


def _check_non_negative(name: str, value: int) -> None:
    if value < 0:
        raise ValidationError(f"--{name} must be non-negative, got {value}")


class _JsonRequest:
    """Envelope mixin shared by the flat (scalar-field) request types."""

    #: Overridden per request class.
    kind: str = ""

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope of the request."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        return envelope(self.kind, payload)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "_JsonRequest":
        """Inverse of :meth:`to_json_dict` (re-validating on the way in)."""
        payload = expect_envelope(data, cls.kind)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"unknown {cls.kind} field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class TopologyRequest(_JsonRequest):
    """Generate a synthetic AS topology (``repro topology``).

    ``output`` is the optional topology file path to write; API callers
    that only want the in-memory topology omit it.  ``file_format``
    selects the serialization of that file: CAIDA ``as-rel`` (the
    default) or ``gml`` for interchange with networkx/igraph-based
    tooling.
    """

    kind = "topology_request"

    tier1: int = 8
    tier2: int = 60
    tier3: int = 200
    stubs: int = 800
    seed: int = 2021
    output: str | None = None
    file_format: str = "as-rel"

    def __post_init__(self) -> None:
        for name in ("tier1", "tier2", "tier3", "stubs"):
            _check_non_negative(name, getattr(self, name))
        _check_seed(self.seed)
        if self.file_format not in TOPOLOGY_FILE_FORMATS:
            raise ValidationError(
                f"unknown topology file format {self.file_format!r}; "
                f"available: {', '.join(TOPOLOGY_FILE_FORMATS)}"
            )

    def cache_key(self) -> tuple[int, int, int, int, int]:
        """The session cache key of the generated topology."""
        return (self.tier1, self.tier2, self.tier3, self.stubs, self.seed)


@dataclass(frozen=True)
class DiversityRequest(_JsonRequest):
    """Run the §VI path-diversity analysis (``repro diversity``).

    ``topology`` selects a CAIDA ``as-rel`` file to analyze; when
    omitted a synthetic topology is generated from the tier knobs
    (the CLI only exposes the default sizes; the API exposes them all,
    which is also what the session benchmark scales with).
    """

    kind = "diversity_request"

    topology: str | None = None
    sample_size: int = 200
    seed: int = 2021
    tier1: int = 8
    tier2: int = 60
    tier3: int = 200
    stubs: int = 800

    def __post_init__(self) -> None:
        _check_positive("sample-size", self.sample_size)
        _check_seed(self.seed)
        for name in ("tier1", "tier2", "tier3", "stubs"):
            _check_non_negative(name, getattr(self, name))

    def generation_key(self) -> tuple[int, int, int, int, int]:
        """The session cache key of the generated topology (no file)."""
        return (self.tier1, self.tier2, self.tier3, self.stubs, self.seed)


@dataclass(frozen=True)
class ExperimentsRequest(_JsonRequest):
    """Run the combined experiment harness (``repro experiments``).

    ``artifact_dir`` roots the memory-mapped topology artifact store
    that ``--jobs`` workers share (``None`` → the default store,
    honoring ``REPRO_TOPOLOGY_STORE``); sequential runs never touch it.
    """

    kind = "experiments_request"

    full: bool = False
    seed: int | None = None
    trials: int | None = None
    jobs: int = 1
    artifact_dir: str | None = None

    def __post_init__(self) -> None:
        _check_seed(self.seed)
        _check_positive("jobs", self.jobs)
        _check_positive("trials", self.trials)


@dataclass(frozen=True)
class GrcAllRequest(_JsonRequest):
    """Run the all-sources GRC pass (``repro grc-all``).

    ``topology`` selects the input file — CAIDA ``as-rel`` (ingested via
    the streaming compiler, never materializing the dict graph) or
    ``.gml``; when omitted a synthetic topology is generated from the
    tier knobs.  ``jobs > 1`` shards the source index space across
    worker processes that share one memory-mapped artifact;
    ``shards`` overrides the default one-range-per-job split.
    ``output`` writes the per-source CSV table.
    """

    kind = "grc_all_request"

    topology: str | None = None
    jobs: int = 1
    shards: int | None = None
    output: str | None = None
    artifact_dir: str | None = None
    tier1: int = 8
    tier2: int = 60
    tier3: int = 200
    stubs: int = 800
    seed: int = 2021

    def __post_init__(self) -> None:
        _check_positive("jobs", self.jobs)
        _check_positive("shards", self.shards)
        _check_seed(self.seed)
        for name in ("tier1", "tier2", "tier3", "stubs"):
            _check_non_negative(name, getattr(self, name))

    def generation_key(self) -> tuple[int, int, int, int, int]:
        """The session cache key of the generated topology (no file)."""
        return (self.tier1, self.tier2, self.tier3, self.stubs, self.seed)


@dataclass(frozen=True)
class SimulateRequest(_JsonRequest):
    """Run a canned discrete-event scenario (``repro simulate``)."""

    kind = "simulate_request"

    scenario: str = "failure-churn"
    seed: int | None = None
    duration: float | None = None
    trace_out: str | None = None
    #: Path of a population spec JSON — only meaningful for scenarios
    #: with a ``population`` field (``marketplace-heterogeneous``).
    population: str | None = None

    def __post_init__(self) -> None:
        # Checked in the order the CLI historically reported them.
        if self.duration is not None and not (
            math.isfinite(self.duration) and self.duration >= 0.0
        ):
            raise ValidationError(
                f"--duration must be a non-negative finite number of hours, "
                f"got {self.duration:g}"
            )
        _check_seed(self.seed)
        if self.scenario not in SCENARIOS:
            raise ValidationError(
                f"unknown scenario {self.scenario!r}; "
                f"available: {', '.join(sorted(SCENARIOS))}"
            )
        if self.population is not None:
            if not self.population:
                raise ValidationError("--population must be a non-empty file path")
            supported = sorted(
                name
                for name in SCENARIOS
                if "population" in scenario_field_names(name)
            )
            if "population" not in scenario_field_names(self.scenario):
                raise ValidationError(
                    f"--population is not supported by scenario "
                    f"{self.scenario!r}; scenarios with populations: "
                    f"{', '.join(supported)}"
                )


@dataclass(frozen=True)
class NegotiateRequest(_JsonRequest):
    """Run a batched BOSCO negotiation pass (``repro negotiate``).

    The Fig. 2 workload as a service unit: ``trials`` random choice-set
    configuration trials at cardinality ``num_choices`` under one of
    the paper's named joint utility distributions, rated by the Price
    of Dishonesty.  Requests sharing ``(distribution, num_choices)``
    form one *coalescing group*: the ``repro serve`` scheduler may pack
    any number of them into a single engine batch without changing any
    request's result.
    """

    kind = "negotiate_request"

    distribution: str = "u1"
    num_choices: int = 50
    trials: int = 40
    seed: int = 7

    def __post_init__(self) -> None:
        if self.distribution not in NEGOTIATE_DISTRIBUTIONS:
            raise ValidationError(
                f"unknown distribution {self.distribution!r}; "
                f"available: {', '.join(sorted(NEGOTIATE_DISTRIBUTIONS))}"
            )
        _check_positive("num-choices", self.num_choices)
        _check_positive("trials", self.trials)
        _check_seed(self.seed)

    def joint_distribution(self) -> JointUtilityDistribution:
        """The named distribution, materialized."""
        return NEGOTIATE_DISTRIBUTIONS[self.distribution]()

    def coalesce_key(self) -> tuple[str, int]:
        """The group key under which requests may share one game batch.

        Everything that constrains :class:`~repro.bargaining.engine.GameBatch`
        packing: the joint distribution and the choice-set cardinality.
        ``trials`` and ``seed`` deliberately stay out — cohorts of
        different sizes and seeds pack fine.
        """
        return (self.distribution, self.num_choices)


#: Workflow name → typed request class, the single registry both the
#: async job API (``POST /v1/jobs``) and :func:`build_workflow_request`
#: dispatch on.  Names match the CLI subcommands.
JOB_WORKFLOWS: dict[str, type[_JsonRequest]] = {}


def build_workflow_request(workflow: str, document: Mapping[str, Any]) -> Any:
    """Build (and validate) the typed request of a named workflow.

    ``document`` is either the request's full JSON envelope or a bare
    payload mapping (field name → value); both forms reject unknown
    fields and run the constructor's parameter checks, so a caller of
    the job API gets exactly the same :class:`ValidationError` messages
    as a direct caller of the workflow.
    """
    try:
        request_type = JOB_WORKFLOWS[workflow]
    except KeyError:
        raise ValidationError(
            f"unknown workflow {workflow!r}; "
            f"available: {', '.join(sorted(JOB_WORKFLOWS))}"
        ) from None
    if not isinstance(document, Mapping):
        raise ValidationError(
            f"workflow request must be a JSON object, "
            f"got {type(document).__name__}"
        )
    if "kind" in document or "schema_version" in document:
        return request_type.from_json_dict(document)
    known = {f.name for f in fields(request_type)}
    unknown = set(document) - known
    if unknown:
        raise ValidationError(
            f"unknown {request_type.kind} field(s): {', '.join(sorted(unknown))}"
        )
    return request_type(**document)


@dataclass(frozen=True)
class JobRequest(_JsonRequest):
    """Submit a workflow for asynchronous execution (``POST /v1/jobs``).

    ``workflow`` names the workflow to run (a :data:`JOB_WORKFLOWS`
    key); ``request`` carries that workflow's request as a JSON object
    — either its full envelope or a bare payload.  Construction
    validates the inner request eagerly, so a malformed submission is
    rejected at ``POST`` time with a ``400`` instead of surfacing later
    as a failed job.
    """

    kind = "job_request"

    workflow: str = ""
    request: Mapping[str, Any] = dataclasses_field(default_factory=dict)

    def __post_init__(self) -> None:
        self.typed_request()

    def typed_request(self) -> Any:
        """The validated typed request the job will execute."""
        return build_workflow_request(self.workflow, self.request)

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON envelope of the submission."""
        return envelope(
            self.kind, {"workflow": self.workflow, "request": dict(self.request)}
        )


@dataclass(frozen=True)
class SweepRequest(_JsonRequest):
    """Run (or list) a sharded parameter sweep (``repro sweep``).

    Exactly one of ``spec`` (a JSON spec file path) and ``smoke`` (the
    built-in CI grid) selects the sweep.
    """

    kind = "sweep_request"

    spec: str | None = None
    smoke: bool = False
    jobs: int = 1
    out: str | None = None
    cache_dir: str | None = None
    force: bool = False
    list_shards: bool = False

    def __post_init__(self) -> None:
        _check_positive("jobs", self.jobs)
        if self.smoke == (self.spec is not None):
            raise ValidationError(
                "exactly one of 'spec' and 'smoke' must select the sweep"
            )


# Populated here, after every request class exists; the names match the
# CLI subcommands so `{"workflow": "grc-all", ...}` reads like the
# command line it replaces.
JOB_WORKFLOWS.update(
    {
        "topology": TopologyRequest,
        "diversity": DiversityRequest,
        "experiments": ExperimentsRequest,
        "grc-all": GrcAllRequest,
        "simulate": SimulateRequest,
        "negotiate": NegotiateRequest,
        "sweep": SweepRequest,
    }
)
