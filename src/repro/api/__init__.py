"""`repro.api` — the typed public surface of the reproduction.

One import gives a downstream consumer everything the CLI offers,
programmatically and with structure instead of strings:

- :class:`Session` — the entry point.  A session owns the expensive
  shared state (generated/loaded topologies keyed by their parameters,
  compiled path engines, mutuality-agreement enumerations and path
  indexes, the shared experiment context, one
  :class:`~repro.bargaining.engine.NegotiationEngine`) and reuses it
  across calls, so repeated programmatic calls are much faster than
  rebuilding per call (see ``benchmarks/bench_api_session.py``).
- Typed request dataclasses (:mod:`repro.api.requests`) — construction
  *is* validation: a bad value raises
  :class:`~repro.errors.ValidationError` with the same message a CLI
  user sees, before any work runs.
- Typed result dataclasses (:mod:`repro.api.results`) — every workflow
  returns structured data with a schema-versioned
  ``to_json_dict()``/``from_json_dict()`` JSON envelope, and the CLI's
  text output is a pure rendering of the same value.
- The :class:`~repro.errors.ReproError` taxonomy with its stable exit
  codes (:func:`~repro.errors.exit_code_for`).

A typical lifecycle::

    from repro.api import DiversityRequest, ExperimentsRequest, Session

    session = Session()
    diversity = session.diversity(DiversityRequest(sample_size=100, seed=1))
    experiments = session.experiments(ExperimentsRequest(seed=7))
    payload = experiments.to_json_dict()   # schema-versioned envelope

``repro.cli`` is a thin adapter over this package, and
``python -m repro.api.validate`` checks envelope files in CI.
"""

from repro.api.adapter import main
from repro.api.requests import (
    JOB_WORKFLOWS,
    DiversityRequest,
    ExperimentsRequest,
    GrcAllRequest,
    JobRequest,
    NegotiateRequest,
    SimulateRequest,
    SweepRequest,
    TopologyRequest,
    build_workflow_request,
)
from repro.api.results import (
    AgentsListResult,
    DiversityResult,
    DiversityScenarioRow,
    ExperimentsResult,
    GrcAllResult,
    JobStatusResult,
    NegotiateResult,
    PopulationResult,
    ScenarioListResult,
    SimulateResult,
    SweepListResult,
    SweepResult,
    TopologyResult,
)
from repro.api.session import Session
from repro.envelope import SCHEMA_VERSION
from repro.errors import (
    EnvelopeError,
    OutputError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    ValidationError,
    exit_code_for,
    http_status_for,
)
from repro.experiments.reporting import (
    PaperComparison,
    SectionResult,
    SectionSeries,
    SectionTable,
)

__all__ = [
    "SCHEMA_VERSION",
    "Session",
    "main",
    # requests
    "TopologyRequest",
    "DiversityRequest",
    "ExperimentsRequest",
    "GrcAllRequest",
    "SimulateRequest",
    "NegotiateRequest",
    "SweepRequest",
    "JobRequest",
    "JOB_WORKFLOWS",
    "build_workflow_request",
    # results
    "TopologyResult",
    "DiversityResult",
    "DiversityScenarioRow",
    "ExperimentsResult",
    "GrcAllResult",
    "SectionResult",
    "SectionTable",
    "SectionSeries",
    "PaperComparison",
    "SimulateResult",
    "PopulationResult",
    "AgentsListResult",
    "ScenarioListResult",
    "NegotiateResult",
    "SweepResult",
    "SweepListResult",
    "JobStatusResult",
    # errors
    "ReproError",
    "ValidationError",
    "OutputError",
    "EnvelopeError",
    "ServiceError",
    "ServiceUnavailableError",
    "exit_code_for",
    "http_status_for",
]
