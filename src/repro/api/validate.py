"""Envelope checker: ``python -m repro.api.validate file.json [...]``.

CI runs the JSON-emitting CLI paths (``repro experiments --format
json``, ``repro simulate --format json``) and feeds the output files to
this module, which enforces the envelope contract without re-running
anything:

- the document is a JSON object with the current integer
  ``schema_version`` and a known ``kind``;
- the kind's required payload keys are present;
- every number anywhere in the payload is finite (``NaN``/``Infinity``
  would not survive strict JSON parsers downstream).

Exit codes: 0 when every file validates, 1 when any file fails, 2 on
usage errors.  The module is also importable:
:func:`validate_envelope` returns the list of problems for one decoded
document.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.envelope import SCHEMA_VERSION

__all__ = ["REQUIRED_KEYS", "validate_envelope", "main"]

#: Required payload keys per envelope kind.
REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "topology_request": (),
    "diversity_request": (),
    "experiments_request": (),
    "grc_all_request": (),
    "simulate_request": (),
    "negotiate_request": (),
    "sweep_request": (),
    "topology_result": (
        "num_ases",
        "num_transit_links",
        "num_peering_links",
        "graph_description",
    ),
    "diversity_result": ("source", "graph_description", "num_agreements", "rows"),
    "experiments_result": ("sections",),
    "grc_all_result": (
        "source",
        "fingerprint",
        "num_ases",
        "total_paths",
        "mean_paths",
        "max_paths",
        "mean_destinations",
        "max_destinations",
    ),
    "section_result": ("key", "title", "metrics"),
    "simulate_result": (
        "name",
        "seed",
        "duration",
        "events_processed",
        "num_trace_records",
    ),
    "sweep_result": ("name", "executed", "reused", "summary_path"),
    "sweep_list_result": ("name", "shard_ids"),
    "population_result": ("name", "profiles"),
    "agents_list_result": ("profiles",),
    "scenario_list_result": ("scenarios",),
    "scenario_result": ("name", "seed", "duration", "events_processed", "trace"),
    "sweep_run_result": ("spec", "summary", "executed", "reused"),
    "negotiate_result": (
        "distribution",
        "num_choices",
        "trials",
        "seed",
        "converged_trials",
        "skipped_trials",
        "min_pod",
        "mean_pod",
        "max_pod",
    ),
    "error_result": ("error", "exit_code", "http_status"),
    "job_request": ("workflow", "request"),
    "job_status_result": ("job_id", "workflow", "state", "progress"),
    "serve_stats": ("requests_total", "result_cache", "coalescing", "session"),
    "serve_health": ("status",),
    "serve_log_record": ("method", "path", "status", "latency_ms"),
}


def _non_finite_paths(value: Any, path: str) -> list[str]:
    """JSON paths of every non-finite number inside a decoded document."""
    problems: list[str] = []
    if isinstance(value, bool):
        return problems
    if isinstance(value, (int, float)):
        if not math.isfinite(value):
            problems.append(path)
    elif isinstance(value, dict):
        for key, entry in value.items():
            problems.extend(_non_finite_paths(entry, f"{path}.{key}"))
    elif isinstance(value, list):
        for index, entry in enumerate(value):
            problems.extend(_non_finite_paths(entry, f"{path}[{index}]"))
    return problems


def validate_envelope(data: Any) -> list[str]:
    """Problems with one decoded envelope document (empty list = valid)."""
    if not isinstance(data, dict):
        return [f"envelope must be a JSON object, got {type(data).__name__}"]
    problems: list[str] = []
    version = data.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append(f"schema_version must be an integer, got {version!r}")
    elif version != SCHEMA_VERSION:
        problems.append(
            f"unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append(f"kind must be a non-empty string, got {kind!r}")
    elif kind not in REQUIRED_KEYS:
        problems.append(
            f"unknown kind {kind!r}; known: {', '.join(sorted(REQUIRED_KEYS))}"
        )
    else:
        missing = [key for key in REQUIRED_KEYS[kind] if key not in data]
        if missing:
            problems.append(
                f"kind {kind!r} is missing required key(s): {', '.join(missing)}"
            )
        # Nested envelopes (sections inside an experiments result) are
        # checked recursively, so one top-level validation covers the
        # whole document.
        if kind == "experiments_result":
            for index, section in enumerate(data.get("sections", ())):
                for problem in validate_envelope(section):
                    problems.append(f"sections[{index}]: {problem}")
    problems.extend(_non_finite_paths(data, "$"))
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    """Validate envelope files; print a line per file; return the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.validate",
        description="Validate schema-versioned JSON envelope files.",
    )
    parser.add_argument("files", nargs="+", help="envelope JSON files to check")
    args = parser.parse_args(argv)

    failures = 0
    for name in args.files:
        path = Path(name)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            print(f"FAIL {name}: cannot read: {error.strerror or error}")
            failures += 1
            continue
        except json.JSONDecodeError as error:
            print(f"FAIL {name}: not valid JSON: {error}")
            failures += 1
            continue
        problems = validate_envelope(data)
        if problems:
            failures += 1
            print(f"FAIL {name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            kind = data.get("kind")
            print(f"ok   {name}: {kind} (schema_version {data.get('schema_version')})")
    if failures:
        print(f"\n{failures} of {len(args.files)} file(s) failed validation")
        return 1
    print(f"\nall {len(args.files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
