#!/usr/bin/env python3
"""SCION-style path discovery and end-host path selection.

Shows the PAN substrate end to end: core beaconing discovers up-, core-,
and down-segments; a path server combines them into end-to-end paths; a
mutuality-based agreement adds a shortcut segment that the path server
starts offering; and the end host selects among the available paths by
latency or bandwidth before packets are forwarded along the embedded
path.

Run with::

    python examples/scion_path_construction.py
"""

from __future__ import annotations

from repro.agreements import figure1_mutuality_agreement
from repro.routing import (
    BeaconingProcess,
    ForwardingEngine,
    Packet,
    PathAwareNetwork,
    PathServer,
)
from repro.topology import (
    AS_B,
    AS_D,
    AS_H,
    AS_I,
    FIGURE1_NAMES,
    degree_gravity_capacities,
    figure1_topology,
)
from repro.topology.geography import SyntheticGeographyGenerator


def names(path: tuple[int, ...]) -> str:
    return "".join(FIGURE1_NAMES[asn] for asn in path)


def main() -> None:
    graph = figure1_topology()
    print(f"Topology: {graph}")

    print("\n1. Core beaconing (path discovery)")
    store = BeaconingProcess(graph).run()
    for asn in (AS_D, AS_H, AS_I):
        segments = ", ".join(sorted(names(s) for s in store.down_segments_of(asn)))
        print(f"   down-segments of {FIGURE1_NAMES[asn]}: {segments}")

    print("\n2. Path construction under GRC-only authorization")
    network = PathAwareNetwork(graph)
    network.authorize_grc_segments()
    server = PathServer(graph=graph, store=store, network=network)
    for destination in (AS_I, AS_B):
        paths = server.lookup(AS_H, destination)
        print(
            f"   {FIGURE1_NAMES[AS_H]} → {FIGURE1_NAMES[destination]}: "
            + ", ".join(names(p) for p in paths)
        )

    print("\n3. Deploying the mutuality-based agreement adds shortcut segments")
    agreement = figure1_mutuality_agreement(graph)
    network.apply_agreement(agreement)
    print(f"   agreement: {agreement.notation(FIGURE1_NAMES)}")
    for source, destination in ((AS_D, AS_B), (AS_H, AS_B)):
        paths = server.lookup(source, destination)
        print(
            f"   {FIGURE1_NAMES[source]} → {FIGURE1_NAMES[destination]}: "
            + ", ".join(names(p) for p in paths)
        )

    print("\n4. End-host path selection and forwarding")
    embedding = SyntheticGeographyGenerator(seed=2).embed(graph)
    capacities = degree_gravity_capacities(graph)
    engine = ForwardingEngine(network)
    for metric in ("hops", "latency", "bandwidth"):
        path = network.select_path(
            AS_D, AS_B, metric=metric, embedding=embedding, capacities=capacities
        )
        result = engine.forward(Packet(path=path))
        print(
            f"   metric={metric:<9} selected {names(path)}  "
            f"delivered={result.delivered} hops={result.hops}"
        )


if __name__ == "__main__":
    main()
