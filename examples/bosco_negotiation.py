#!/usr/bin/env python3
"""Automated agreement negotiation with the BOSCO mechanism (§V).

Two ASes want to conclude a mutuality-based agreement but will not
reveal their true agreement utilities.  The BOSCO service estimates
utility distributions, constructs choice sets, publishes an equilibrium
of the induced bargaining game, and settles the cash compensation from
the committed claims.  The script also reproduces a single point of
Fig. 2 (the Price of Dishonesty for one choice-set size).

Run with::

    python examples/bosco_negotiation.py
"""

from __future__ import annotations

import numpy as np

from repro.bargaining import BoscoService, paper_distribution_u1


def main() -> None:
    distribution = paper_distribution_u1()
    service = BoscoService(distribution, seed=42)

    print("Configuring the BOSCO service (choice-set construction, §V-E)...")
    information = service.configure(num_choices=40, trials=20)
    print(f"  choices per party: {len(information.choices_x.finite_values)}")
    print(f"  expected Nash product of the equilibrium: {information.expected_nash_product:.4f}")
    print(
        "  truthful expected Nash product:           "
        f"{service.truthful_expected_nash_product:.4f}"
    )
    print(f"  Price of Dishonesty: {information.price_of_dishonesty:.1%}")
    print(f"  parties can verify the equilibrium: {information.verify_equilibrium()}")
    played_x = information.equilibrium.strategy_x.equilibrium_choice_indices()
    print(f"  choices actually played by party X in equilibrium: {len(played_x)}")
    print()

    print("One negotiation with private true utilities u_X = 0.62, u_Y = -0.18:")
    outcome = BoscoService.negotiate(information, 0.62, -0.18)
    print(f"  claims committed: v_X = {outcome.claim_x:+.3f}, v_Y = {outcome.claim_y:+.3f}")
    print(f"  concluded: {outcome.concluded}")
    if outcome.concluded:
        print(f"  cash compensation X→Y: {outcome.transfer_x_to_y:+.3f}")
        print(
            f"  after-negotiation utilities: ū_X = {outcome.post_utility_x:+.3f}, "
            f"ū_Y = {outcome.post_utility_y:+.3f}"
        )
    print()

    print("Monte-Carlo check of the §V-D properties over 2,000 negotiations:")
    rng = np.random.default_rng(7)
    samples = distribution.sample(rng, size=2000)
    concluded = 0
    violations = 0
    for true_x, true_y in samples:
        result = BoscoService.negotiate(information, float(true_x), float(true_y))
        if result.post_utility_x < -1e-9 or result.post_utility_y < -1e-9:
            violations += 1
        if result.concluded:
            concluded += 1
            if true_x + true_y < -1e-9:
                violations += 1
    print(f"  negotiations concluded: {concluded} / {len(samples)}")
    print(f"  individual-rationality or soundness violations: {violations}")
    print()

    print("A single Fig. 2 data point (min / mean PoD over random choice sets):")
    statistics = service.pod_statistics(num_choices=40, trials=25)
    print(
        f"  W = 40: min PoD = {statistics['min']:.3f}, mean PoD = {statistics['mean']:.3f} "
        f"(paper reports ≈0.10 minimum around W = 50)"
    )


if __name__ == "__main__":
    main()
