#!/usr/bin/env python3
"""An automated marketplace for mutuality-based agreements.

Combines all layers of the library into the workflow the paper
envisions: every peering link of a topology is a potential
mutuality-based agreement; each candidate is evaluated economically
under a synthetic traffic scenario, negotiated through cash
compensation, and — when concluded — deployed into the path-aware
network, whose path diversity grows as agreements accumulate.

Run with::

    python examples/agreement_marketplace.py
"""

from __future__ import annotations

import numpy as np

from repro.agreements import (
    AgreementScenario,
    SegmentTraffic,
    enumerate_mutuality_agreements,
)
from repro.economics import ENDHOSTS, FlowVector, default_business_models
from repro.optimization import negotiate_cash_agreement
from repro.paths import build_ma_path_index, grc_length3_paths
from repro.routing import PathAwareNetwork
from repro.topology import generate_topology


def synthetic_scenario(agreement, graph, rng) -> AgreementScenario:
    """A randomized but structured traffic expectation for one agreement.

    Rerouted volume scales with how much provider traffic the beneficiary
    could plausibly shift (proportional to its degree); attracted traffic
    is a fraction of that, capped by a demand limit.
    """
    segments = []
    rerouted_per_party: dict[int, dict[int, float]] = {
        party: {} for party in agreement.parties
    }
    for segment in agreement.all_segments():
        beneficiary_degree = graph.degree(segment.beneficiary)
        rerouted = float(rng.uniform(0.0, 1.0) * min(beneficiary_degree, 10))
        attracted = float(rng.uniform(0.0, 0.5) * rerouted)
        provider_candidates = sorted(graph.providers(segment.beneficiary))
        previous = provider_candidates[0] if provider_candidates else None
        if previous is not None:
            per_provider = rerouted_per_party[segment.beneficiary]
            per_provider[previous] = per_provider.get(previous, 0.0) + rerouted
        segments.append(
            SegmentTraffic(
                segment=segment,
                rerouted={previous: rerouted},
                attracted={ENDHOSTS: attracted},
                attracted_limits={ENDHOSTS: attracted * 2.0},
            )
        )
    # Baselines that actually carry the traffic the parties plan to reroute
    # (plus headroom for traffic that keeps using the provider).
    baseline = {}
    for party in agreement.parties:
        flows = {ENDHOSTS: 20.0}
        for provider, volume in rerouted_per_party[party].items():
            flows[provider] = volume * 1.5 + 10.0
        baseline[party] = FlowVector(flows)
    return AgreementScenario(agreement=agreement, segments=segments, baseline=baseline)


def main() -> None:
    rng = np.random.default_rng(11)
    topology = generate_topology(
        num_tier1=5, num_tier2=18, num_tier3=60, num_stubs=160, seed=5
    )
    graph = topology.graph
    businesses = default_business_models(graph)
    print(f"Topology: {graph}")

    candidates = list(enumerate_mutuality_agreements(graph))
    print(f"Candidate mutuality-based agreements: {len(candidates)}")

    network = PathAwareNetwork(graph)
    network.authorize_grc_segments()
    grc_segments = network.num_authorized_segments()

    concluded = []
    total_transfer = 0.0
    for agreement in candidates:
        scenario = synthetic_scenario(agreement, graph, rng)
        negotiation = negotiate_cash_agreement(scenario, businesses)
        if not negotiation.concluded:
            continue
        network.apply_agreement(agreement)
        concluded.append((agreement, negotiation))
        total_transfer += abs(negotiation.transfer_x_to_y)

    print(f"Concluded agreements: {len(concluded)} / {len(candidates)}")
    print(f"Total |cash compensation| exchanged: {total_transfer:.1f}")
    print(
        f"Authorized transit segments: {grc_segments} under the GRC → "
        f"{network.num_authorized_segments()} after deployment"
    )
    print()

    index = build_ma_path_index([agreement for agreement, _ in concluded])
    sample = sorted(graph.ases)[:: max(1, len(graph) // 10)][:10]
    print("Path diversity for a few ASes (GRC paths → +new MA paths):")
    for asn in sample:
        grc_count = len(grc_length3_paths(graph, asn))
        ma_count = len(index.all_paths(asn) - grc_length3_paths(graph, asn))
        print(f"  AS {asn:>4}: {grc_count:6d} → +{ma_count}")

    best = max(concluded, key=lambda item: item[1].joint_surplus)
    agreement, negotiation = best
    print()
    print("Most valuable agreement:")
    print(f"  {agreement.notation()}")
    print(
        f"  joint surplus = {negotiation.joint_surplus:.2f}, "
        f"transfer = {negotiation.transfer_x_to_y:+.2f}"
    )


if __name__ == "__main__":
    main()
