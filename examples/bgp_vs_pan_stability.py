#!/usr/bin/env python3
"""BGP instability vs. PAN stability for GRC-violating policies (§II).

The script shows the three stability results the paper builds its
argument on:

1. DISAGREE (two ASes preferring routes through each other) converges
   under BGP, but the stable state depends on message timing — a "BGP
   wedgie".
2. BAD GADGET (three such ASes around a destination) oscillates forever.
3. In a path-aware network, the same GRC-violating paths are simply
   authorized segments: packets carry their path in the header, so
   forwarding is loop-free and oblivious to other ASes' choices.

Run with::

    python examples/bgp_vs_pan_stability.py
"""

from __future__ import annotations

from repro.agreements import figure1_mutuality_agreement
from repro.routing import (
    ForwardingEngine,
    Packet,
    PathAwareNetwork,
    analyze_gadget,
    analyze_grc,
)
from repro.topology import (
    AS_A,
    AS_B,
    AS_D,
    AS_E,
    FIGURE1_NAMES,
    bad_gadget_topology,
    disagree_topology,
    figure1_topology,
)


def describe(report, expectation: str) -> None:
    print(f"  converged under every schedule: {report.always_converged}")
    print(f"  persistent oscillation detected: {report.any_oscillation}")
    print(f"  distinct stable outcomes across schedules: {report.distinct_stable_states}")
    print(f"  paper: {expectation}")
    print()


def main() -> None:
    print("== BGP with GRC-conforming policies (baseline) ==")
    describe(
        analyze_grc(figure1_topology(), AS_A, num_schedules=6),
        "always converges to a unique stable state (Gao–Rexford theorem)",
    )

    print("== DISAGREE under BGP ==")
    describe(
        analyze_gadget(disagree_topology(), num_schedules=8),
        "converges, but non-deterministically (BGP wedgie)",
    )

    print("== BAD GADGET under BGP ==")
    describe(
        analyze_gadget(bad_gadget_topology(), num_schedules=6),
        "persistent route oscillations",
    )

    print("== The same GRC-violating paths in a path-aware network ==")
    graph = figure1_topology()
    network = PathAwareNetwork(graph)
    network.authorize_grc_segments()
    agreement = figure1_mutuality_agreement(graph)
    added = network.apply_agreement(agreement)
    print(f"  agreement {agreement.notation(FIGURE1_NAMES)} authorizes {added} new segments")

    engine = ForwardingEngine(network)
    paths = [
        (AS_D, AS_E, AS_B),   # D uses E's provider B (GRC violation)
        (AS_E, AS_D, AS_A),   # E uses D's provider A (GRC violation)
        (AS_B, AS_E, AS_D),   # indirect gainer B reaches D over E
    ]
    for path in paths:
        result = engine.forward(Packet(path=path))
        names = "".join(FIGURE1_NAMES[asn] for asn in path)
        print(
            f"  packet along {names}: delivered = {result.delivered}, "
            f"hops = {result.hops}, "
            f"loop-free = {len(set(result.traversed)) == len(result.traversed)}"
        )
    print(
        "  Forwarding only consults the path in the packet header and the\n"
        "  transit AS's own authorization — no global convergence is needed,\n"
        "  so the Gao–Rexford conditions are not required for stability."
    )


if __name__ == "__main__":
    main()
