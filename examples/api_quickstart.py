#!/usr/bin/env python3
"""Quickstart for the typed public API: one warm session, four workflows.

The script drives topology generation, the §VI diversity analysis, the
combined Fig. 2–6 experiment harness, and a discrete-event simulation
scenario through a single :class:`repro.api.Session`, demonstrating:

1. construction is validation — a bad request raises
   :class:`repro.api.ValidationError` before any work runs;
2. warm reuse — the second diversity call with the same parameters is
   served from the session's caches (topology, mutuality-agreement
   enumeration, MA path index, compiled path engine) and is typically
   well over 2x faster (``benchmarks/bench_api_session.py`` asserts
   this);
3. structured results — every workflow returns typed dataclasses whose
   ``to_json_dict()`` produces a schema-versioned JSON envelope that
   round-trips through ``from_json_dict()``;
4. text is a rendering — the classic CLI reports are pure functions of
   the same result values.

Run with::

    python examples/api_quickstart.py

(The experiments step runs the real reduced-scale harness and takes
around a minute; everything else is seconds.)
"""

from __future__ import annotations

import json
import time

from repro.api import (
    DiversityRequest,
    ExperimentsRequest,
    Session,
    SimulateRequest,
    SimulateResult,
    TopologyRequest,
    ValidationError,
)
from repro.api.results import render_simulate_text

#: Small synthetic topology knobs shared by the topology/diversity steps.
TINY = dict(tier1=3, tier2=10, tier3=40, stubs=120)


def main() -> None:
    session = Session()

    # ------------------------------------------------------------------
    # 0. Requests validate on construction — same errors as the CLI.
    # ------------------------------------------------------------------
    try:
        ExperimentsRequest(jobs=0)
    except ValidationError as error:
        print(f"rejected up front (exit code {error.exit_code}): {error}")
    print()

    # ------------------------------------------------------------------
    # 1. Topology: generate once; the session caches it by parameters.
    # ------------------------------------------------------------------
    topology = session.topology(TopologyRequest(seed=3, **TINY))
    print(f"topology: {topology.graph_description}")
    print(
        f"  {topology.num_transit_links} transit links, "
        f"{topology.num_peering_links} peering links"
    )
    print()

    # ------------------------------------------------------------------
    # 2. Diversity: the same tier knobs reuse the cached topology; a
    #    repeated call also reuses agreements + MA index + path engine.
    # ------------------------------------------------------------------
    request = DiversityRequest(sample_size=25, seed=3, **TINY)
    started = time.perf_counter()
    diversity = session.diversity(request)
    cold = time.perf_counter() - started
    started = time.perf_counter()
    session.diversity(request)
    warm = time.perf_counter() - started
    print(
        f"diversity: {diversity.num_agreements} mutuality agreements, "
        f"{len(diversity.rows)} conclusion degrees"
    )
    for row in diversity.rows:
        print(
            f"  {row.scenario:<12} mean paths {row.mean_paths:8.0f}   "
            f"mean destinations {row.mean_destinations:6.0f}"
        )
    print(f"  first call {cold * 1e3:.0f}ms, warm repeat {warm * 1e3:.0f}ms")
    print()

    # ------------------------------------------------------------------
    # 3. Experiments: structured sections instead of one text blob.
    # ------------------------------------------------------------------
    print("experiments: running the reduced-scale harness (~a minute)...")
    experiments = session.experiments(ExperimentsRequest(seed=7, trials=3))
    for section in experiments.sections:
        headline = next(iter(section.metrics.items()), None)
        print(f"  [{section.key}] {section.title}  metrics e.g. {headline}")
    fig3 = experiments.section("fig3")
    print(f"  fig3 additional paths/AS: {fig3.metrics['additional_paths_mean']:.0f}")
    print()

    # ------------------------------------------------------------------
    # 4. Simulate: the JSON envelope round-trips; text is a rendering.
    # ------------------------------------------------------------------
    simulate = session.simulate(
        SimulateRequest(scenario="flash-crowd", seed=4, duration=30.0)
    )
    envelope = simulate.to_json_dict()
    restored = SimulateResult.from_json_dict(json.loads(json.dumps(envelope)))
    assert restored == simulate
    print("simulate envelope keys:", ", ".join(sorted(envelope)))
    print()
    print(render_simulate_text(simulate))


if __name__ == "__main__":
    main()
