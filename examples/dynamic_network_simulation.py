#!/usr/bin/env python3
"""Discrete-event simulation of dynamic networks and agreement lifecycles.

The static analyses elsewhere in this repository answer *whether* a
configuration is stable or an agreement is beneficial; the simulation
engine answers how the system behaves *over time*:

1. ``failure-churn`` — links fail and recover on a seeded schedule.
   BGP pairs go dark while reconvergence is pending; PAN sources fail
   over instantly among the paths discovered by periodic beaconing.
2. ``marketplace`` — mutuality agreements are BOSCO-negotiated,
   metered under diurnal traffic, billed at term end, and renegotiated.
3. ``flash-crowd`` — a demand spike hits the Fig. 1 D–E agreement and
   inflates its 95th-percentile bill far beyond the mean demand.

Run with::

    python examples/dynamic_network_simulation.py
"""

from __future__ import annotations

from repro.simulation import (
    DeterministicFailureSchedule,
    DynamicNetwork,
    FailureInjector,
    SimulationEngine,
    run_scenario,
)
from repro.topology import AS_D, AS_E, figure1_topology


def canned_scenarios() -> None:
    """Run the three canned scenarios and print their summaries."""
    for name in ("failure-churn", "marketplace", "flash-crowd"):
        result = run_scenario(name)
        print(result.summary())
        print()


def custom_schedule() -> None:
    """A hand-built simulation: fail and restore one Fig. 1 link."""
    print("== custom run: the Fig. 1 D-E peering link flaps ==")
    engine = SimulationEngine(seed=1)
    network = DynamicNetwork(figure1_topology())
    schedule = DeterministicFailureSchedule.of(
        (2.0, "down", AS_D, AS_E),
        (5.0, "up", AS_D, AS_E),
    )
    engine.add_process(
        FailureInjector(network=network, schedule=schedule, horizon=10.0)
    )
    engine.run(until=10.0)
    for record in engine.trace.records:
        print(f"  t={record.time:4.1f}  {record.kind}  {record.data}")
    print()


def main() -> None:
    canned_scenarios()
    custom_schedule()


if __name__ == "__main__":
    main()
