#!/usr/bin/env python3
"""Path-diversity study on a synthetic Internet-like topology (§VI).

Regenerates, at a reduced scale, the data behind Figs. 3–6: the number of
length-3 paths and nearby destinations per AS under different degrees of
MA conclusion, and the geodistance / bandwidth quality of the new paths.

Run with::

    python examples/path_diversity_analysis.py
"""

from __future__ import annotations

from repro.agreements import enumerate_mutuality_agreements
from repro.paths import (
    analyze_bandwidth,
    analyze_geodistance,
    analyze_path_diversity,
)
from repro.topology import degree_gravity_capacities, generate_topology
from repro.topology.geography import SyntheticGeographyGenerator


def main() -> None:
    print("Generating a synthetic Internet-like AS topology ...")
    topology = generate_topology(
        num_tier1=6, num_tier2=25, num_tier3=80, num_stubs=250, seed=2021
    )
    graph = topology.graph
    print(f"  {graph}")

    agreements = list(enumerate_mutuality_agreements(graph))
    print(f"  possible mutuality-based agreements (one per peering link): {len(agreements)}")
    print()

    print("Fig. 3 / Fig. 4 — paths and destinations per AS (sample of 120 ASes):")
    diversity = analyze_path_diversity(
        graph, agreements=agreements, sample_size=120, seed=1
    )
    for scenario in ("GRC", "MA* (Top 1)", "MA* (Top 5)", "MA*", "MA"):
        paths = diversity.path_cdf(scenario)
        destinations = diversity.destination_cdf(scenario)
        print(
            f"  {scenario:<12} mean paths = {paths.mean:7.0f}   "
            f"mean destinations = {destinations.mean:6.0f}"
        )
    extra_paths = diversity.additional_path_summary()
    extra_destinations = diversity.additional_destination_summary()
    print(
        f"  additional paths per AS: mean = {extra_paths['mean']:.0f}, "
        f"max = {extra_paths['max']:.0f}"
    )
    print(
        f"  additional destinations per AS: mean = {extra_destinations['mean']:.0f}, "
        f"max = {extra_destinations['max']:.0f}"
    )
    print()

    print("Fig. 5 — geodistance of the additional MA paths (sample of 40 source ASes):")
    embedding = SyntheticGeographyGenerator(seed=3).embed(graph)
    geodistance = analyze_geodistance(
        graph, embedding, agreements=agreements, sample_size=40, seed=2
    )
    for condition in ("max", "median", "min"):
        fraction = geodistance.fraction_of_pairs_improving(condition, 1)
        print(f"  pairs with ≥1 MA path shorter than the GRC {condition}: {fraction:.0%}")
    reduction = geodistance.reduction_cdf()
    if reduction.count:
        print(
            f"  median relative geodistance reduction among benefiting pairs: "
            f"{reduction.median:.0%} (paper: ≈24%)"
        )
    print()

    print("Fig. 6 — bandwidth of the additional MA paths (degree-gravity capacities):")
    capacities = degree_gravity_capacities(graph)
    bandwidth = analyze_bandwidth(
        graph, capacities, agreements=agreements, sample_size=40, seed=2
    )
    fraction = bandwidth.fraction_of_pairs_improving("max", 1)
    print(
        f"  pairs with ≥1 MA path above the GRC maximum bandwidth: "
        f"{fraction:.0%} (paper: ≈35%)"
    )
    increase = bandwidth.increase_cdf()
    if increase.count:
        print(
            f"  median relative bandwidth increase among benefiting pairs: "
            f"{increase.median:.0%} (paper: ≈150%)"
        )


if __name__ == "__main__":
    main()
