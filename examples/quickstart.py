#!/usr/bin/env python3
"""Quickstart: evaluate and qualify the paper's Fig. 1 mutuality agreement.

The script walks through the core API end to end:

1. build the Fig. 1 example topology,
2. attach a business model (pricing + internal cost) to every AS,
3. construct the mutuality-based agreement ``a = [D(↑{A}); E(↑{B},→{F})]``
   of §III-B2 and a traffic scenario for it,
4. compute both parties' agreement utilities (Eqs. 3–7),
5. qualify the agreement with the two methods of §IV — flow-volume
   targets and cash compensation — and compare the outcomes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.agreements import (
    AgreementScenario,
    SegmentTraffic,
    figure1_mutuality_agreement,
    joint_utilities,
)
from repro.agreements.agreement import PathSegment
from repro.economics import ENDHOSTS, FlowVector, default_business_models
from repro.optimization import compare_methods
from repro.topology import (
    AS_A,
    AS_B,
    AS_D,
    AS_E,
    AS_F,
    AS_H,
    AS_I,
    FIGURE1_NAMES,
    figure1_topology,
)


def build_scenario() -> AgreementScenario:
    """Traffic expectations for the Fig. 1 agreement.

    D expects to reroute provider traffic over E and to attract new
    customer traffic onto the better paths; E mostly carries D's traffic
    towards its own provider B, which costs it money.
    """
    agreement = figure1_mutuality_agreement()
    baseline_d = FlowVector({AS_A: 30.0, AS_H: 20.0, ENDHOSTS: 10.0, AS_E: 5.0})
    baseline_e = FlowVector({AS_B: 25.0, AS_I: 15.0, ENDHOSTS: 10.0, AS_D: 5.0})
    segments = [
        SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
            rerouted={AS_A: 10.0},
            attracted={ENDHOSTS: 5.0, AS_H: 3.0},
            attracted_limits={ENDHOSTS: 8.0, AS_H: 5.0},
        ),
        SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_F),
            rerouted={AS_A: 4.0},
            attracted={AS_H: 2.0},
        ),
        SegmentTraffic(
            segment=PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A),
            rerouted={AS_B: 8.0},
            attracted={ENDHOSTS: 4.0, AS_I: 2.0},
        ),
    ]
    return AgreementScenario(
        agreement=agreement,
        segments=segments,
        baseline={AS_D: baseline_d, AS_E: baseline_e},
    )


def main() -> None:
    graph = figure1_topology()
    businesses = default_business_models(
        graph, transit_unit_price=1.0, endhost_unit_price=1.5, internal_unit_cost=0.1
    )
    scenario = build_scenario()
    agreement = scenario.agreement

    print("Topology:", graph)
    print("Agreement:", agreement.notation(FIGURE1_NAMES))
    print("GRC-conforming (possible under BGP):", agreement.is_grc_conforming(graph))
    print()

    utilities = joint_utilities(scenario, businesses)
    print("Raw agreement utilities (no qualification):")
    for party, value in utilities.items():
        print(f"  u_{FIGURE1_NAMES[party]} = {value:+.2f}")
    print(f"  joint surplus = {sum(utilities.values()):+.2f}")
    print()

    comparison = compare_methods(scenario, businesses, restarts=4, seed=1)

    cash = comparison.cash
    print("Cash compensation (§IV-B):")
    print(f"  concluded: {cash.concluded}")
    print(f"  transfer D→E: {cash.transfer_x_to_y:+.2f}")
    print(
        f"  post-transfer utilities: u_D = {cash.post_utility_x:+.2f}, "
        f"u_E = {cash.post_utility_y:+.2f}"
    )
    print()

    flow = comparison.flow_volume
    print("Flow-volume targets (§IV-A):")
    print(f"  concluded: {flow.concluded}")
    for target in flow.targets:
        names = "".join(FIGURE1_NAMES[asn] for asn in target.path)
        print(
            f"  segment {names}: allowance = {target.total_allowance:.1f} "
            f"(rerouted {target.rerouted_volume:.1f} + attracted {target.attracted_volume:.1f})"
        )
    print(
        f"  utilities at the optimum: u_D = {flow.utility_x:+.2f}, "
        f"u_E = {flow.utility_y:+.2f}"
    )
    print()
    print(
        "Comparison (§IV-C): cash joint utility = "
        f"{comparison.cash_joint_utility:+.2f}, flow-volume joint utility = "
        f"{comparison.flow_volume_joint_utility:+.2f}"
    )


if __name__ == "__main__":
    main()
