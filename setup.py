"""Setuptools shim.

The offline build environment has no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) are unavailable.  With
this ``setup.py`` present and no ``[build-system]`` table in
``pyproject.toml``, ``pip install -e .`` falls back to the legacy
``setup.py develop`` code path, which works offline.  All project
metadata (PEP 621, including the ``repro`` console script) lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
