"""Benchmark: warm `repro.api.Session` reuse vs. cold per-call construction.

The workload is the repeated-programmatic-call pattern the API session
exists for: the §VI diversity analysis plus a batched Fig. 2-style
negotiation pass, invoked several times with the same parameters.  The
*cold* baseline constructs a fresh :class:`repro.api.Session` for every
call — which is exactly what the pre-API surface forced on callers:
regenerate the topology, re-enumerate the mutuality agreements, rebuild
the MA path index and the compiled path engine each time.  The *warm*
contender makes the same calls through one session, which serves all of
that from its caches and only re-runs the per-call analysis.

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``):

- ``tiny`` — CI smoke scale.
- ``default`` — the reduced experiment scale.
- ``full`` — the ``repro experiments --full`` diversity scale.

At every scale the benchmark *asserts* the ≥ 2× reuse speedup the
session is contracted to deliver (the real margin is far larger: the
warm path skips topology generation and MA enumeration entirely).
Results are emitted to ``BENCH_api_session.json`` via ``_emit``.
"""

from __future__ import annotations

import os
import time

from _emit import emit

from repro.api import DiversityRequest, Session
from repro.bargaining.mechanism import BoscoService
from repro.bargaining.distributions import paper_distribution_u1

_SCALES = {
    # tiny is still CI-fast, but large enough that the cold rebuild
    # dominates the fixed per-call negotiation floor — the 2x assertion
    # then has real headroom on noisy shared runners.
    "tiny": dict(tier1=3, tier2=10, tier3=40, stubs=120, sample_size=20),
    "default": dict(tier1=8, tier2=40, tier3=120, stubs=400, sample_size=60),
    "full": dict(tier1=8, tier2=60, tier3=200, stubs=800, sample_size=100),
}

#: The contracted minimum warm-over-cold speedup, at every scale.
MIN_REUSE_SPEEDUP = 2.0

#: Calls per measurement (the first warm call pays the build once).
CALLS = 3


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


def _request(scale: dict) -> DiversityRequest:
    return DiversityRequest(
        tier1=scale["tier1"],
        tier2=scale["tier2"],
        tier3=scale["tier3"],
        stubs=scale["stubs"],
        sample_size=scale["sample_size"],
        seed=2021,
    )


def _negotiate(session: Session) -> None:
    """A small batched negotiation pass sharing the session's engine."""
    service = BoscoService(
        paper_distribution_u1(), seed=7, engine=session.negotiation
    )
    service.pod_statistics(10, trials=10)


def _one_call(session: Session, request: DiversityRequest):
    result = session.diversity(request)
    _negotiate(session)
    return result


def test_session_reuse_speedup(paper_scale):
    scale_name = _scale_name(paper_scale)
    scale = _SCALES[scale_name]
    request = _request(scale)

    # Cold: a fresh session per call rebuilds every shared artifact.
    cold_times = []
    cold_result = None
    for _ in range(CALLS):
        started = time.perf_counter()
        cold_result = _one_call(Session(), request)
        cold_times.append(time.perf_counter() - started)

    # Warm: one session; the first call builds, the rest reuse.
    session = Session()
    warm_result = _one_call(session, request)  # pays the build once
    warm_times = []
    for _ in range(CALLS):
        started = time.perf_counter()
        warm_result = _one_call(session, request)
        warm_times.append(time.perf_counter() - started)

    # Reuse must not change results.
    assert warm_result == cold_result

    cold = min(cold_times)
    warm = min(warm_times)
    speedup = cold / warm if warm > 0.0 else float("inf")
    emit(
        "api_session",
        wall_time_s=warm,
        operations=CALLS,
        scale={"name": scale_name, "seed": 2021, **scale},
        extra={
            "cold_wall_time_s": cold,
            "speedup": speedup,
        },
    )
    print(
        f"\n[{scale_name}] diversity+negotiation call: cold {cold:.3f}s, "
        f"warm-session {warm:.3f}s, reuse speedup {speedup:.1f}x"
    )

    assert speedup >= MIN_REUSE_SPEEDUP, (
        f"warm-session reuse regressed: {speedup:.1f}x < "
        f"{MIN_REUSE_SPEEDUP:.0f}x at {scale_name} scale"
    )
