"""Micro-benchmarks of the substrate layers.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths the experiments rely on: topology generation, GRC path
enumeration, MA enumeration and indexing, geodistance evaluation, BGP
convergence, and BOSCO equilibrium computation.  Each test emits its
mean round time to ``BENCH_substrates_<name>.json`` (see ``_emit``) so
CI can track the trajectory of every substrate, not just the headline
benches.
"""

from __future__ import annotations

import numpy as np
import pytest

from _emit import emit_from_benchmark

from repro.agreements import enumerate_mutuality_agreements
from repro.bargaining import BargainingGame, paper_distribution_u1, random_choice_set
from repro.paths import build_ma_path_index, grc_length3_paths
from repro.routing import BGPSimulator
from repro.routing.policies import gao_rexford_policies
from repro.topology import generate_topology
from repro.topology.geography import SyntheticGeographyGenerator

_SCALE = dict(num_tier1=4, num_tier2=15, num_tier3=40, num_stubs=120, seed=77)


@pytest.fixture(scope="module")
def bench_topology():
    return generate_topology(**_SCALE)


def test_topology_generation(benchmark):
    result = benchmark(generate_topology, **_SCALE)
    assert len(result.graph) == 179
    emit_from_benchmark(
        benchmark,
        "substrates_topology_generation",
        operations=len(result.graph),
        scale=dict(_SCALE),
    )


def test_grc_path_enumeration(benchmark, bench_topology):
    graph = bench_topology.graph
    sources = sorted(graph.ases)[:50]

    def enumerate_all() -> int:
        return sum(len(grc_length3_paths(graph, source)) for source in sources)

    total = benchmark(enumerate_all)
    assert total > 0
    emit_from_benchmark(
        benchmark,
        "substrates_grc_path_enumeration",
        operations=len(sources),
        scale=dict(_SCALE),
        extra={"total_paths": total},
    )


def test_ma_enumeration_and_indexing(benchmark, bench_topology):
    graph = bench_topology.graph

    def enumerate_and_index() -> int:
        agreements = list(enumerate_mutuality_agreements(graph))
        index = build_ma_path_index(agreements)
        return sum(len(index.direct_paths(asn)) for asn in list(graph)[:50])

    total = benchmark(enumerate_and_index)
    assert total > 0
    emit_from_benchmark(
        benchmark,
        "substrates_ma_enumeration_and_indexing",
        operations=len(graph),
        scale=dict(_SCALE),
    )


def test_geodistance_evaluation(benchmark, bench_topology):
    graph = bench_topology.graph
    embedding = SyntheticGeographyGenerator(seed=5).embed(graph)
    source = sorted(graph.ases)[10]
    paths = list(grc_length3_paths(graph, source))[:200]

    def evaluate() -> float:
        return sum(embedding.path_geodistance(path) for path in paths)

    total = benchmark(evaluate)
    assert total > 0.0
    emit_from_benchmark(
        benchmark,
        "substrates_geodistance_evaluation",
        operations=len(paths),
        scale=dict(_SCALE),
    )


def test_bgp_convergence(benchmark, bench_topology):
    graph = bench_topology.graph
    destination = sorted(graph.tier1_ases())[0]

    def converge() -> bool:
        simulator = BGPSimulator(
            graph=graph, destination=destination, policies=gao_rexford_policies(graph)
        )
        return simulator.run(max_rounds=200).converged

    assert benchmark(converge)
    emit_from_benchmark(
        benchmark,
        "substrates_bgp_convergence",
        operations=len(graph),
        scale=dict(_SCALE),
    )


def test_bosco_equilibrium_computation(benchmark):
    num_choices = 40
    distribution = paper_distribution_u1()
    rng = np.random.default_rng(13)
    choices_x = random_choice_set(distribution.marginal_x, num_choices, rng)
    choices_y = random_choice_set(distribution.marginal_y, num_choices, rng)
    game = BargainingGame(
        distribution_x=distribution.marginal_x,
        distribution_y=distribution.marginal_y,
        choices_x=choices_x,
        choices_y=choices_y,
    )

    profile = benchmark(game.find_equilibrium)
    assert game.is_equilibrium(profile)
    emit_from_benchmark(
        benchmark,
        "substrates_bosco_equilibrium",
        operations=num_choices * num_choices,
        scale={"num_choices": num_choices, "seed": 13},
    )
