"""Benchmark: §II — BGP stability gadgets vs. PAN forwarding.

Not a numbered figure, but the stability argument the paper's whole
construction rests on: DISAGREE converges non-deterministically under
BGP, BAD GADGET oscillates, and the same GRC-violating paths are
perfectly stable in a PAN because packets carry their path.
"""

from __future__ import annotations

from repro.agreements import enumerate_mutuality_agreements
from repro.routing import (
    ForwardingEngine,
    Packet,
    PathAwareNetwork,
    analyze_gadget,
    analyze_grc,
)
from repro.paths import build_ma_path_index
from repro.topology import bad_gadget_topology, disagree_topology, generate_topology


def test_bgp_gadget_analysis(benchmark):
    """Time the gadget analysis and assert the §II behaviours."""

    def analyze():
        return (
            analyze_gadget(disagree_topology(), num_schedules=8),
            analyze_gadget(bad_gadget_topology(), num_schedules=8),
        )

    disagree, bad = benchmark(analyze)

    print()
    print("== §II — BGP stability gadgets ==")
    print(
        f"DISAGREE: always converged = {disagree.always_converged}, "
        f"distinct stable states = {disagree.distinct_stable_states}"
    )
    print(
        f"BAD GADGET: oscillation detected = {bad.any_oscillation}, "
        f"always converged = {bad.always_converged}"
    )

    assert disagree.always_converged
    assert disagree.distinct_stable_states >= 2
    assert bad.any_oscillation
    assert not bad.always_converged


def test_grc_bgp_convergence_on_synthetic_topology(benchmark):
    """GRC policies converge on a realistic topology (Gao–Rexford theorem)."""
    topology = generate_topology(
        num_tier1=4, num_tier2=12, num_tier3=30, num_stubs=80, seed=23
    )
    destination = sorted(topology.graph.tier1_ases())[0]

    report = benchmark.pedantic(
        analyze_grc,
        args=(topology.graph, destination),
        kwargs={"num_schedules": 2},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"GRC policies on {topology.graph}: always converged = {report.always_converged}"
    )
    assert report.always_converged
    assert not report.any_oscillation


def test_pan_forwarding_throughput(benchmark):
    """Forward a batch of packets over GRC + MA authorized segments."""
    topology = generate_topology(
        num_tier1=4, num_tier2=12, num_tier3=30, num_stubs=80, seed=23
    )
    graph = topology.graph
    network = PathAwareNetwork(graph)
    network.authorize_grc_segments()
    agreements = list(enumerate_mutuality_agreements(graph))
    for agreement in agreements:
        network.apply_agreement(agreement)
    index = build_ma_path_index(agreements)
    engine = ForwardingEngine(network)

    paths = []
    for source in list(graph)[:50]:
        paths.extend(list(index.all_paths(source))[:10])

    def forward_batch() -> float:
        packets = [Packet(path=path) for path in paths]
        return engine.delivery_ratio(packets)

    ratio = benchmark(forward_batch)
    print()
    print(f"PAN forwarding: {len(paths)} MA paths, delivery ratio = {ratio:.2f}")
    assert ratio == 1.0
